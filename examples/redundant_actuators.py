"""Figure 1: redundant actuators with tuplespace failover.

Reproduces the paper's four-step fault-tolerance protocol (Sec. 2.1):

1. the control agent writes a start tuple and waits for its removal;
2. the actuator agents race to take it — exactly one becomes operating,
   the rest become backups;
3. the operating actuator writes a state tuple every tick;
4. each backup takes its upstream heartbeat every tick; a failed take
   triggers the recovery procedure.

A failure is injected into the operating actuator at t = 10 s; watch the
backup promote itself about one tick later.

Run:  python examples/redundant_actuators.py
"""

from repro.core import SimClock, TupleSpace
from repro.core.agents import ActuatorAgent, ControlAgent
from repro.des import Simulator

GROUP = "conveyor-drive"
TICK = 1.0
FAIL_AT = 10.0
N_ACTUATORS = 3


def main():
    sim = Simulator(seed=1)
    space = TupleSpace(clock=SimClock(sim), name="factory-space")

    control = ControlAgent(sim, space, group=GROUP)
    actuators = [
        ActuatorAgent(
            sim, space, group=GROUP, rank=i, tick=TICK,
            fail_at=FAIL_AT if i == 0 else None,
        )
        for i in range(N_ACTUATORS)
    ]
    control.start()
    for actuator in actuators:
        actuator.start()

    sim.run(until=25.0)

    print(f"control loop started at t={control.control_started_at:.2f}s "
          "(start tuple was taken)\n")
    print("actuator role timelines:")
    for actuator in actuators:
        timeline = " -> ".join(
            f"{role}@{t:.2f}s" for t, role in actuator.history
        )
        status = "FAILED" if actuator.failed else "alive"
        print(f"  {actuator.name:24s} [{status:6s}] {timeline} "
              f"(ticks executed: {actuator.ticks_executed})")

    operating = [a for a in actuators if not a.failed
                 and a.state == ActuatorAgent.OPERATING]
    assert len(operating) == 1, "exactly one live actuator must operate"
    promoted = operating[0]
    promotion_time = promoted.history[-1][0]
    print(f"\nfailure injected at t={FAIL_AT}s; {promoted.name} recovered "
          f"the actuator program at t={promotion_time:.2f}s "
          f"({promotion_time - FAIL_AT:.2f}s of outage).")


if __name__ == "__main__":
    main()
