"""Visualise bus activity with the NS-2-style trace (ASCII timeline).

Enables tracing on a Figure 6 validation run and renders the TpWIRE
frame activity as density strips — the quick-look post-processing an
NS-2 user would do on a trace file.

Run:  python examples/bus_activity_timeline.py
"""

from repro.analysis.timeline import activity_timeline, event_summary
from repro.cosim import ValidationScenario
from repro.des import TraceRecorder


def main():
    scenario = ValidationScenario(cbr_rate=4.0)
    scenario.sim.trace = TraceRecorder()     # switch tracing on
    result = scenario.run(12)

    records = scenario.sim.trace.records
    end = result.elapsed_seconds
    print(f"traced {len(records)} events over {end:.2f} s of simulated "
          f"time ({result.total_frames} TpWIRE frames)\n")

    print("bus frame activity (TX frames, 64 buckets):")
    print(" ", activity_timeline(
        [r for r in records if r.kind == "tpwire-tx"],
        0.0, end, buckets=64, label="tx",
    ))
    print(" ", activity_timeline(
        [r for r in records if r.kind == "tpwire-rx"],
        0.0, end, buckets=64, label="rx",
    ))

    summary = event_summary(records)
    print("\nevent summary (code, kind) -> count:")
    for (code, kind), count in sorted(summary["by_code_kind"].items()):
        print(f"  ({code}, {kind:10s}) -> {count}")


if __name__ == "__main__":
    main()
