"""The paper's actual use case: explore the bus design before building it.

Walks the rapid-prototyping flow of Sections 4-5:

1. validate the cheap packet-level TpWIRE model against the bit-level
   reference (Table 3) and derive the scaling factor;
2. estimate the tuplespace write+take time on the deployed 1-wire bus
   under increasing CBR load, finding the Out-of-Time threshold
   (Table 4, left column);
3. evaluate the proposed 2-wire upgrade on the same workload (Table 4,
   right column) — the estimate that "gave enough information to plan
   the complete development of the bus and the tuplespace".

Run:  python examples/bus_design_exploration.py        (~1 minute)
"""

from repro.analysis import Table
from repro.cosim import (
    CaseStudyConfig,
    CaseStudyScenario,
    derive_scaling_factor,
    run_validation_suite,
)


def step1_validate_model():
    print("step 1: validate the NS-2-analog model (Table 3)")
    points = run_validation_suite([5, 15])
    table = Table(["packets", "hw s", "model s", "frames hw/model", "error"])
    for p in points:
        table.add_row(
            p.n_packets, p.reference_seconds, p.model_seconds,
            f"{p.reference.total_frames}/{p.model.total_frames}",
            f"{p.timing_error:.1%}",
        )
    print(table.render())
    factor = derive_scaling_factor(points)
    print(f"  scaling factor (hw/model): {factor:.3f} -> the cheap model "
          "is trustworthy for exploration\n")
    return factor


def step2_estimate_one_wire():
    print("step 2: estimate the deployed 1-wire bus (Table 4, left)")
    results = {}
    for cbr in (0.0, 0.3, 1.0):
        config = CaseStudyConfig(wires=1, cbr_rate_bytes_per_s=cbr)
        results[cbr] = CaseStudyScenario(config).run(max_sim_time=4000.0)
        print(f"  CBR {cbr:3} B/s -> {results[cbr].cell()}")
    assert results[1.0].out_of_time
    print("  => the 1-wire bus cannot carry the tuplespace at 1 B/s of "
          "background traffic (lease 160 s)\n")


def step3_evaluate_two_wire():
    print("step 3: evaluate the proposed 2-wire upgrade (Table 4, right)")
    for cbr in (0.0, 0.3, 1.0):
        config = CaseStudyConfig(wires=2, cbr_rate_bytes_per_s=cbr)
        result = CaseStudyScenario(config).run(max_sim_time=4000.0)
        print(f"  CBR {cbr:3} B/s -> {result.cell()}")
    print("  => the 2-wire bus stays within the lease across the whole "
          "traffic range: worth building.")


if __name__ == "__main__":
    step1_validate_model()
    step2_estimate_one_wire()
    step3_evaluate_two_wire()
