"""Full co-simulation (Figure 5): firmware on the board ISS performs a
tuplespace write through every layer of the paper's architecture.

    firmware (stack-machine ISS)          <- the "C++ client"
      | comm ports / gdb-RSP-inspectable  <- Sec. 4.3's gdb link
    SC1 bridge (shared-memory channels)
      | TpWIRE 1-wire bus, master-relayed <- the NS-2-analog bus model
    SC2 bridge
      | socket wrapper + RMI proxy        <- Figure 4
    SpaceServer (JavaSpaces analog)

The firmware streams a pre-marshalled WRITE request byte-by-byte out of
its comm port, then *parses the wire-protocol response header* to know
how many reply bytes to read back.  A gdb-style client inspects the board
afterwards, exactly how the SC1 bridge controls the client in the paper.

Run:  python examples/cosim_board_client.py
"""

import struct

from repro.board import GdbClient, TheseusBoard, firmware
from repro.core import (
    LindaTuple,
    Message,
    MessageType,
    SimClock,
    SpaceServer,
    StreamParser,
    TupleSpace,
    TupleTemplate,
    XmlCodec,
    encode_message,
)
from repro.core.server import SimTimers
from repro.cosim import ServerTimingModel, SimServerHost, build_bus_system
from repro.des import Simulator
from repro.hw import ClientBridge, ServerBridge

CLIENT_NODE, SERVER_NODE = 1, 3


def main():
    sim = Simulator(seed=2)
    system = build_bus_system(sim, [CLIENT_NODE, SERVER_NODE], bit_rate=9600.0)
    codec = XmlCodec()
    space = TupleSpace(clock=SimClock(sim), name="javaspace")
    server = SpaceServer(space, codec, timers=SimTimers(sim))
    SimServerHost(
        sim, server, ServerBridge(sim, system.endpoint(SERVER_NODE)),
        ServerTimingModel(),
    )
    bridge = ClientBridge(sim, system.endpoint(CLIENT_NODE), SERVER_NODE)

    # "Compile" the client: marshal the WRITE request and bake it into
    # board memory next to the firmware.
    entry = LindaTuple("actuator-command", "valve-7", "open")
    request = encode_message(
        Message(MessageType.WRITE, 1, {"lease": 3600}, entry), codec
    )
    blob, symbols = firmware.space_client_program(request, max_response=128)
    board = TheseusBoard(sim, instructions_per_second=200_000.0)
    board.connect_bridge(bridge)
    board.load_firmware(blob)

    print(f"request: {len(request)} wire bytes; firmware: {len(blob)} bytes "
          f"at {board.ips:.0f} instr/s")
    system.start()
    board.start()

    def until_halted():
        while not board.halted:
            yield sim.timeout(0.5)
        system.stop()
        sim.stop()

    sim.spawn(until_halted())
    sim.run(until=600.0)

    assert board.halted, "firmware did not finish"
    print(f"\nboard halted at t={sim.now:.2f}s of simulated time")
    print(f"bus carried {system.bus.tx_frames} TX frames")
    stored = space.read_if_exists(TupleTemplate("actuator-command", str, str))
    print(f"space now holds {len(space)} item(s); stored: {stored}")

    # Inspect the board over the gdb-RSP stub, as SC1 does in the paper.
    gdb = GdbClient(board.stub)
    registers = gdb.read_registers()
    total = struct.unpack("<i", gdb.read_memory(symbols["total"], 4))[0]
    raw = gdb.read_memory(symbols["response"], total)
    reply = StreamParser(codec).feed(raw)[0]
    print(f"\nvia gdb stub: pc={registers['pc']:#x}, "
          f"cycles={registers['cycles']}")
    print(f"response read from board memory: {reply.msg_type.name} "
          f"(request {reply.request_id}), lease id "
          f"{reply.param_int('lease_id')}")


if __name__ == "__main__":
    main()
