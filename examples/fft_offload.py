"""Sec. 2.1 scalability: FFT offload through the tuplespace.

Low-performance producer nodes (no FPU) post vectors into the space as
``("fft-request", id, samples)`` tuples; high-performance consumer nodes
(with FPU) take requests, compute the spectrum and answer with
``("fft-result", id, magnitudes)``.  Communication is anonymous and
asynchronous, so scaling the consumer pool scales the system — the
paper's motivating example, measured here directly.

Run:  python examples/fft_offload.py
"""

from repro.core import SimClock, TupleSpace
from repro.core.agents import ConsumerAgent, ProducerAgent
from repro.des import Simulator

N_PRODUCERS = 6
JOBS_PER_PRODUCER = 5
SERVICE_TIME = 0.5  # seconds of FPU time per FFT


def run_pool(n_consumers: int) -> float:
    sim = Simulator(seed=11)
    space = TupleSpace(clock=SimClock(sim), name="offload-space")
    producers = [
        ProducerAgent(sim, space, producer_id=i, n_jobs=JOBS_PER_PRODUCER,
                      samples_per_job=16, interval=0.05)
        for i in range(N_PRODUCERS)
    ]
    consumers = [
        ConsumerAgent(sim, space, consumer_id=i, service_time=SERVICE_TIME)
        for i in range(n_consumers)
    ]
    for agent in producers + consumers:
        agent.start()
    sim.run(until=600.0)

    unfinished = [p for p in producers if p.completed != JOBS_PER_PRODUCER]
    assert not unfinished, f"jobs stuck: {unfinished}"
    times = [t for p in producers for t in p.response_times]
    return sum(times) / len(times)


def main():
    print(f"{N_PRODUCERS} producers x {JOBS_PER_PRODUCER} FFT jobs, "
          f"{SERVICE_TIME}s service time per job\n")
    print("consumers | mean job response time")
    print("----------+-----------------------")
    baseline = None
    for n_consumers in (1, 2, 4, 8):
        mean_response = run_pool(n_consumers)
        if baseline is None:
            baseline = mean_response
        print(f"{n_consumers:9d} | {mean_response:6.2f} s  "
              f"({baseline / mean_response:.1f}x)")
    print("\nPerformance scales with the number of consumers (Sec. 2.1), "
          "flooring at the single-job service time.")


if __name__ == "__main__":
    main()
