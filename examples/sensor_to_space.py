"""Sensors to tuplespace: the paper's factory-automation loop, end to end.

A smart board (Slave 1) carries an SPI thermometer behind its system
register set (Sec. 3.1 lists SPI among the system registers).  Its local
firmware samples the sensor each second and publishes a leased
``SensorReading`` entry to the JavaSpaces server on Slave 3 — every byte
crossing the 1-wire TpWIRE bus through the master relay.  A monitoring
agent subscribed with ``notify`` raises an alarm the moment a reading
crosses the threshold, and commands an output latch in response.

Run:  python examples/sensor_to_space.py        (~30 s of wall time)
"""

from repro.core import (
    Entry,
    SimClock,
    SimSpaceClient,
    SpaceServer,
    TupleSpace,
    XmlCodec,
)
from repro.core.server import SimTimers
from repro.cosim import ServerTimingModel, SimServerHost, build_bus_system
from repro.des import Simulator
from repro.hw import ClientBridge, ServerBridge
from repro.tpwire import OutputShiftRegister, TemperatureSensor
from repro.tpwire.registers import SystemRegister

SENSOR_NODE, SERVER_NODE = 1, 3
ALARM_THRESHOLD_C = 30.0
COOLER_PIN = 2


class SensorReading(Entry):
    def __init__(self, sensor=None, celsius=None, tick=None):
        self.sensor = sensor
        self.celsius = celsius
        self.tick = tick


def main():
    sim = Simulator(seed=4)
    system = build_bus_system(
        sim, [SENSOR_NODE, SERVER_NODE], bit_rate=9600.0
    )
    codec = XmlCodec()
    codec.register(SensorReading)

    # Server side.
    space = TupleSpace(clock=SimClock(sim), name="factory-space")
    server = SpaceServer(space, codec, timers=SimTimers(sim))
    SimServerHost(
        sim, server, ServerBridge(sim, system.endpoint(SERVER_NODE)),
        ServerTimingModel(),
    )

    # Sensor board: SPI thermometer + cooler latch on local firmware,
    # space client over the bus.
    thermometer = TemperatureSensor(temperature_c=22.0)
    cooler = OutputShiftRegister()
    bridge = ClientBridge(sim, system.endpoint(SENSOR_NODE), SERVER_NODE)
    client = SimSpaceClient(
        sim, bridge.to_bus, bridge.from_bus, codec, name="sensor-board"
    )

    def sample_spi() -> float:
        """Local firmware SPI access (no bus frames: it is our own bus)."""
        thermometer.transfer(TemperatureSensor.SAMPLE)
        return thermometer.transfer(0x00) / 2.0

    def sensor_firmware():
        tick = 0
        while tick < 12:
            celsius = sample_spi()
            yield from client.op_write(
                SensorReading("oven-1", celsius, tick), lease=30.0
            )
            print(f"[{sim.now:7.2f}s] board published "
                  f"{celsius:5.1f} degC (tick {tick})")
            tick += 1
            yield sim.timeout(1.0)
        sim.stop()

    def heat_ramp():
        """The physical process: the oven heats up, then the cooler acts."""
        while True:
            if cooler.pin(COOLER_PIN):
                thermometer.temperature_c -= 3.0
            else:
                thermometer.temperature_c += 1.5
            yield sim.timeout(1.0)

    # Monitoring agent on the server side: a notify-driven thermostat
    # with hysteresis, actuating the cooler latch.
    alarms = []
    HYSTERESIS_C = 6.0

    def on_reading(event):
        reading = event.item
        if reading.celsius >= ALARM_THRESHOLD_C and not cooler.pin(COOLER_PIN):
            alarms.append((sim.now, reading))
            print(f"[{sim.now:7.2f}s] ALARM: {reading.sensor} at "
                  f"{reading.celsius:.1f} degC -> cooler ON")
            cooler.transfer(1 << COOLER_PIN)
        elif (reading.celsius <= ALARM_THRESHOLD_C - HYSTERESIS_C
              and cooler.pin(COOLER_PIN)):
            print(f"[{sim.now:7.2f}s] {reading.sensor} back to "
                  f"{reading.celsius:.1f} degC -> cooler off")
            cooler.transfer(0)

    space.notify(SensorReading(sensor="oven-1"), on_reading)

    system.start()
    sim.spawn(sensor_firmware())
    sim.spawn(heat_ramp())
    sim.run(until=600.0)

    print(f"\nspace holds {len(space)} live readings (30 s leases expire)")
    assert alarms, "the ramp must have crossed the threshold"
    alarm_time, reading = alarms[0]
    print(f"alarm fired at t={alarm_time:.2f}s on tick {reading.tick}; "
          f"cooler pin {COOLER_PIN} is "
          f"{'ON' if cooler.pin(COOLER_PIN) else 'off'}")
    print(f"final oven temperature: {thermometer.temperature_c:.1f} degC")


if __name__ == "__main__":
    main()
