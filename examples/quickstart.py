"""Quickstart: the tuplespace middleware in five minutes.

Covers the Linda/JavaSpaces primitives of Section 2 — write / read / take,
associative matching, leases, subscribe/notify, transactions — first on a
local space, then through the wire protocol exactly as a remote (non-Java)
client would use it.

Run:  python examples/quickstart.py
"""

import io

from repro.core import (
    ANY,
    Entry,
    LindaTuple,
    ManualClock,
    SpaceClient,
    SpaceJournal,
    SpaceServer,
    Transaction,
    TupleSpace,
    TupleTemplate,
    XmlCodec,
    recover_space,
)
from repro.core.transports import LocalConnection


class SensorReading(Entry):
    """A typed entry: plain class, keyword fields, None = wildcard."""

    def __init__(self, sensor=None, value=None, tick=None):
        self.sensor = sensor
        self.value = value
        self.tick = tick


def local_space_basics():
    print("== local space: Linda tuples ==")
    clock = ManualClock()
    space = TupleSpace(clock=clock, name="demo")

    # Tuples are associatively addressed: match by value, by type, or ANY.
    space.write(LindaTuple("temperature", "cell-1", 21.5))
    space.write(LindaTuple("temperature", "cell-2", 23.0))
    space.write(LindaTuple("pressure", "cell-1", 3.2))

    reading = space.read_if_exists(TupleTemplate("temperature", ANY, float))
    print("read (non-destructive):", reading)

    taken = space.take_if_exists(TupleTemplate("temperature", "cell-2", ANY))
    print("take (destructive):   ", taken)
    print("items left:", len(space))

    print("\n== leases ==")
    space.write(LindaTuple("alarm", "overheat"), lease=30.0)
    clock.advance(31.0)
    expired = space.read_if_exists(TupleTemplate("alarm", ANY))
    print("after 31 s, a 30 s-leased tuple is", expired)

    print("\n== notify ==")
    events = []
    space.notify(TupleTemplate("alarm", ANY), events.append)
    space.write(LindaTuple("alarm", "pressure-spike"))
    print("notification:", events[0].item, "(seq", events[0].sequence, ")")

    print("\n== transactions ==")
    space.write(LindaTuple("job", "pending", 42))
    with Transaction(space) as txn:
        job = space.take_if_exists(
            TupleTemplate("job", "pending", int), txn=txn
        )
        space.write(LindaTuple("job", "active", job[2]), txn=txn)
    print("atomically moved:", space.read_if_exists(
        TupleTemplate("job", "active", int)
    ))


def remote_client_over_wire_protocol():
    print("\n== remote client: XML wire protocol (Sec. 4.2) ==")
    codec = XmlCodec()
    codec.register(SensorReading)
    space = TupleSpace(clock=ManualClock(), name="server-space")
    server = SpaceServer(space, codec)
    client = SpaceClient(LocalConnection(server), codec)

    ack = client.write(SensorReading("t7", 19.5, 1), lease=120.0)
    print("WRITE acknowledged, lease id", ack["lease_id"],
          "granted", ack["granted"], "s")

    # Templates are entries with None wildcards (JavaSpaces matching).
    got = client.take_if_exists(SensorReading(sensor="t7"))
    print("TAKE over the wire:", got)
    print("server handled", server.requests_handled, "requests")


def persistent_message_store():
    print("\n== persistence: the 'persistent message store' of Sec. 2 ==")
    clock = ManualClock()
    codec = XmlCodec()
    space = TupleSpace(clock=clock)
    journal_file = io.StringIO()           # a real file in deployments
    SpaceJournal(space, journal_file, codec)

    space.write(LindaTuple("recipe", "anodize", 3), lease=300.0)
    space.write(LindaTuple("recipe", "polish", 1))
    space.take_if_exists(TupleTemplate("recipe", "polish", ANY))
    clock.advance(60.0)

    # ... crash ... recover into a fresh space from the journal:
    restored = TupleSpace(clock=clock)
    count = recover_space(
        restored, io.StringIO(journal_file.getvalue()), codec
    )
    survivor = restored.read_if_exists(TupleTemplate("recipe", ANY, ANY))
    print(f"recovered {count} entry with its remaining lease: {survivor}")


if __name__ == "__main__":
    local_space_basics()
    remote_client_over_wire_protocol()
    persistent_message_store()
    print("\nquickstart done.")
