"""Command-line front end: regenerate the paper's results.

Usage::

    python -m repro table3              # NS2-TpWIRE validation + factor
    python -m repro table4 [--quick]    # the tuplespace impact table
    python -m repro fullstack           # methodology validation
    python -m repro all [--quick]       # everything above
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import Table
from repro.cosim import (
    CaseStudyConfig,
    CaseStudyScenario,
    derive_scaling_factor,
    run_validation_suite,
)


def cmd_table3(args) -> int:
    workloads = [5, 15] if args.quick else [5, 15, 30]
    print("Table 3 — Validation NS2-TpWIRE "
          "(hw = bit-level PHY, ns2 = packet-level model)")
    points = run_validation_suite(workloads)
    table = Table(["packets", "frames hw/ns2", "hw s", "ns2 s", "error"])
    for point in points:
        table.add_row(
            point.n_packets,
            f"{point.reference.total_frames}/{point.model.total_frames}",
            point.reference_seconds,
            point.model_seconds,
            f"{point.timing_error:.2%}",
        )
    print(table.render())
    print(f"scaling factor (hw/ns2): {derive_scaling_factor(points):.4f}")
    return 0


def cmd_table4(args) -> int:
    rates = [0.0, 1.0] if args.quick else [0.0, 0.3, 1.0]
    wire_counts = [1] if args.quick else [1, 2]
    print("Table 4 — tuplespace write+take over TpWIRE (lease 160 s)")
    table = Table(["CBR"] + [f"{w}-wire" for w in wire_counts])
    cells = {}
    for wires in wire_counts:
        for cbr in rates:
            config = CaseStudyConfig(wires=wires, cbr_rate_bytes_per_s=cbr)
            cells[(wires, cbr)] = CaseStudyScenario(config).run(
                max_sim_time=4000.0
            )
    for cbr in rates:
        table.add_row(
            f"{cbr} B/s",
            *[cells[(w, cbr)].cell() for w in wire_counts],
        )
    print(table.render())
    return 0


def cmd_fullstack(args) -> int:
    print("Methodology validation — micro scaling factor vs full stack")
    factor = derive_scaling_factor(run_validation_suite([5, 15]))
    bit = CaseStudyScenario(
        CaseStudyConfig(bit_level=True)
    ).run(max_sim_time=4000.0)
    packet = CaseStudyScenario(CaseStudyConfig()).run(max_sim_time=4000.0)
    ratio = bit.elapsed_seconds / packet.elapsed_seconds
    table = Table(["quantity", "value"])
    table.add_row("Table 3 scaling factor", f"{factor:.4f}")
    table.add_row("bit-level full stack", f"{bit.elapsed_seconds:.1f} s")
    table.add_row("packet-level full stack", f"{packet.elapsed_seconds:.1f} s")
    table.add_row("full-stack ratio", f"{ratio:.4f}")
    table.add_row("prediction error", f"{abs(ratio - factor):.4f}")
    print(table.render())
    return 0


def cmd_all(args) -> int:
    for command in (cmd_table3, cmd_table4, cmd_fullstack):
        command(args)
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the results of 'Estimation of Bus "
                    "Performance for a Tuplespace in an Embedded "
                    "Architecture' (DATE 2003).",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--quick", action="store_true",
        help="smaller workloads (seconds instead of minutes)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table3", parents=[common],
                   help="NS2-TpWIRE validation (Table 3)")
    sub.add_parser("table4", parents=[common],
                   help="tuplespace impact (Table 4)")
    sub.add_parser("fullstack", parents=[common],
                   help="methodology validation")
    sub.add_parser("all", parents=[common], help="everything above")
    return parser


_COMMANDS = {
    "table3": cmd_table3,
    "table4": cmd_table4,
    "fullstack": cmd_fullstack,
    "all": cmd_all,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
