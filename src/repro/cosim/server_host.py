"""The simulated space-server host behind the SC2 bridge.

In the paper (Figures 4 and 5) the JavaSpaces server runs on a host
reached through the SC2 SystemC node: bytes leave the bus, cross UNIX
sockets into the Java/socket wrapper, hop over RMI into the SpaceServer,
and the response retraces the path.  :class:`SimServerHost` is that whole
host: it feeds inbound bus bytes through the wire-protocol parser, invokes
the real :class:`~repro.core.server.SpaceServer` through a real RMI proxy,
and charges a :class:`ServerTimingModel` for parsing and marshalling —
then ships responses back over the bridge in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.protocol import Message, StreamParser, encode_message
from repro.core.rmi import Registry
from repro.core.server import SpaceServer
from repro.des.resource import Store
from repro.hw.bridge import ServerBridge


@dataclass(frozen=True)
class ServerTimingModel:
    """Host-side processing costs (XML parse, dispatch, marshalling)."""

    parse_seconds_per_byte: float = 0.0
    build_seconds_per_byte: float = 0.0
    request_overhead: float = 0.0

    def parse_time(self, nbytes: int) -> float:
        return self.request_overhead + nbytes * self.parse_seconds_per_byte

    def build_time(self, nbytes: int) -> float:
        return nbytes * self.build_seconds_per_byte


class _BridgeSession:
    """Per-client session: queues responses for ordered, timed sending."""

    def __init__(self, host: "SimServerHost", node_id: int):
        self.host = host
        self.node_id = node_id
        self.outgoing: Store = Store(host.sim)
        self._sender = host.sim.spawn(
            self._send_loop(), name=f"server-session{node_id}"
        )

    def send(self, message: Message) -> None:
        wire = encode_message(message, self.host.server.codec)
        self.outgoing.put(wire)

    def _send_loop(self) -> Generator:
        while True:
            wire = yield self.outgoing.get()
            build_time = self.host.timing.build_time(len(wire))
            if build_time > 0:
                yield self.host.sim.timeout(build_time)
            self.host.bridge.send_to(self.node_id, wire)
            self.host.bytes_sent += len(wire)


class SimServerHost:
    """The space-server host process behind an SC2 bridge."""

    def __init__(
        self,
        sim,
        server: SpaceServer,
        bridge: ServerBridge,
        timing: ServerTimingModel = ServerTimingModel(),
        name: str = "server-host",
    ):
        self.sim = sim
        self.server = server
        self.bridge = bridge
        self.timing = timing
        self.name = name
        # The paper keeps RMI between the socket wrapper and the server;
        # requests therefore go through a real proxy here as well.
        registry = Registry()
        registry.bind("SpaceServer", server, exposed=["handle"])
        self._proxy = registry.lookup("SpaceServer")
        self._parsers: dict[int, StreamParser] = {}
        self._sessions: dict[int, _BridgeSession] = {}
        self._inbound: Store = Store(sim)
        self.bytes_received = 0
        self.bytes_sent = 0
        self.requests_dispatched = 0
        bridge.deliver = self._on_bus_bytes
        self._worker = sim.spawn(self._dispatch_loop(), name=f"{name}.dispatch")

    # -- inbound path -----------------------------------------------------------

    def _on_bus_bytes(self, src: int, data: bytes) -> None:
        self.bytes_received += len(data)
        self._inbound.put((src, data))

    def _dispatch_loop(self) -> Generator:
        while True:
            src, data = yield self._inbound.get()
            parse_time = self.timing.parse_time(len(data))
            if parse_time > 0:
                yield self.sim.timeout(parse_time)
            parser = self._parsers.setdefault(
                src, StreamParser(self.server.codec)
            )
            session = self._sessions.get(src)
            if session is None:
                session = _BridgeSession(self, src)
                self._sessions[src] = session
            for message in parser.feed(data):
                self.requests_dispatched += 1
                self._proxy.handle(session, message)
