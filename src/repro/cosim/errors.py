"""Error hierarchy of the co-simulation layer.

:class:`CaseStudyIncompleteError` subclasses :class:`RuntimeError` so
pre-hierarchy callers catching ``RuntimeError`` keep working.
"""


class CosimError(Exception):
    """Base class for co-simulation errors."""


class CaseStudyIncompleteError(CosimError, RuntimeError):
    """A case study hit its simulated-time budget before finishing."""
