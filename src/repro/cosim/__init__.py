"""Co-simulation assembly (Figure 5 of the paper).

Puts the layers together: the TpWIRE bus model (packet-level NS-2 analog
or bit-level hardware analog), the master's relay firmware, the SC1/SC2
bridges, the board-side space client and the JavaSpaces server — and the
canned experiment scenarios of Section 5.
"""

from repro.cosim.environment import BusSystem, build_bus_system
from repro.cosim.errors import CosimError, CaseStudyIncompleteError
from repro.cosim.server_host import SimServerHost, ServerTimingModel
from repro.cosim.scenarios import (
    ValidationScenario,
    ValidationResult,
    CaseStudyConfig,
    CaseStudyScenario,
    CaseStudyResult,
    MachineParameters,
    make_case_study_codec,
)
from repro.cosim.calibration import (
    ValidationPoint,
    run_validation_suite,
    derive_scaling_factor,
)
from repro.cosim.ethernet import (
    EthernetCaseStudy,
    EthernetConfig,
    EthernetResult,
)

__all__ = [
    "BusSystem",
    "CosimError",
    "CaseStudyIncompleteError",
    "build_bus_system",
    "SimServerHost",
    "ServerTimingModel",
    "ValidationScenario",
    "ValidationResult",
    "CaseStudyConfig",
    "CaseStudyScenario",
    "CaseStudyResult",
    "MachineParameters",
    "make_case_study_codec",
    "ValidationPoint",
    "run_validation_suite",
    "derive_scaling_factor",
    "EthernetCaseStudy",
    "EthernetConfig",
    "EthernetResult",
]
