"""The TCP/Ethernet alternative of Sec. 4.3, made measurable.

Runs the identical tuplespace workload of the Figure 7 case study —
same client, same server, same XML entries — over a switched Ethernet
star instead of the TpWIRE daisy chain, so the paper's qualitative
trade-off ("several advantages, mainly because of its natural software
abstraction ... [but] the cost of such a connection may be too high")
becomes a quantitative one: seconds saved vs. active devices required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.server import SimTimers, SpaceServer
from repro.core.sim_client import ClientTimingModel, SimSpaceClient
from repro.core.space import TupleSpace
from repro.core.clock import SimClock
from repro.cosim.scenarios import (
    MachineParameters,
    default_entry,
    make_case_study_codec,
)
from repro.cosim.errors import CaseStudyIncompleteError
from repro.cosim.server_host import ServerTimingModel
from repro.core.protocol import Message, StreamParser, encode_message
from repro.core.rmi import Registry
from repro.des import Simulator
from repro.des.resource import Store
from repro.hw.shared_memory import SharedMemoryChannel
from repro.net.stream import build_switched_star


@dataclass
class EthernetConfig:
    """Knobs of the Ethernet variant of the case study."""

    bandwidth_bps: float = 10_000_000.0  #: 10BASE-T per link
    link_delay: float = 50e-6
    lease_seconds: float = 160.0
    take_timeout: float = 10.0
    seed: int = 1
    client_timing: ClientTimingModel = field(
        default_factory=lambda: ClientTimingModel(
            build_seconds_per_byte=0.004,
            parse_seconds_per_byte=0.002,
            request_overhead=0.3,
        )
    )
    server_timing: ServerTimingModel = field(
        default_factory=lambda: ServerTimingModel(
            parse_seconds_per_byte=0.002,
            build_seconds_per_byte=0.001,
            request_overhead=0.1,
        )
    )


@dataclass
class EthernetResult:
    elapsed_seconds: float
    completed: bool
    switch_packets: int
    wire_bytes: int
    active_devices: int  #: infrastructure the TpWIRE solution avoids


class EthernetCaseStudy:
    """Write+take over the switched network (same endpoints as Fig. 7)."""

    def __init__(self, config: Optional[EthernetConfig] = None):
        self.config = config if config is not None else EthernetConfig()
        cfg = self.config
        self.sim = Simulator(seed=cfg.seed)
        self.switch, self.agents = build_switched_star(
            self.sim, ["client", "server"],
            bandwidth_bps=cfg.bandwidth_bps, delay=cfg.link_delay,
        )
        self.codec = make_case_study_codec()
        self.space = TupleSpace(clock=SimClock(self.sim), name="javaspace")
        self.server = SpaceServer(
            self.space, self.codec, timers=SimTimers(self.sim)
        )
        registry = Registry()
        registry.bind("SpaceServer", self.server, exposed=["handle"])
        self._proxy = registry.lookup("SpaceServer")

        # Server side: bytes off the wire -> parser -> server; replies
        # pace through the server timing model before hitting the wire.
        self._server_parser = StreamParser(self.codec)
        self._server_out: Store = Store(self.sim)
        self.agents["server"].on_data = self._server_rx
        self.sim.spawn(self._server_tx_loop(), name="eth-server-tx")
        self._server_in: Store = Store(self.sim)
        self.sim.spawn(self._server_rx_loop(), name="eth-server-rx")

        # Client side: the same SimSpaceClient, fed by channel adapters.
        self._client_tx = SharedMemoryChannel(self.sim, name="eth.client.tx")
        self._client_rx = SharedMemoryChannel(self.sim, name="eth.client.rx")
        self.agents["client"].on_data = (
            lambda src, data: self._client_rx.write(data)
        )
        self.sim.spawn(self._client_tx_loop(), name="eth-client-tx")
        self.client = SimSpaceClient(
            self.sim, self._client_tx, self._client_rx, self.codec,
            timing=cfg.client_timing, name="eth-client",
        )
        self.wire_bytes = 0
        self._result: Optional[EthernetResult] = None

    # -- plumbing -----------------------------------------------------------

    def _client_tx_loop(self):
        while True:
            yield self._client_tx.wait_readable()
            data = self._client_tx.read()
            if data:
                self.wire_bytes += self.agents["client"].send_stream(
                    "server", data
                )

    def _server_rx(self, src: str, data: bytes) -> None:
        self._server_in.put((src, data))

    def _server_rx_loop(self):
        timing = self.config.server_timing
        while True:
            src, data = yield self._server_in.get()
            parse_time = timing.parse_time(len(data))
            if parse_time > 0:
                yield self.sim.timeout(parse_time)
            for message in self._server_parser.feed(data):
                self._proxy.handle(_QueueSession(self._server_out, self.codec), message)

    def _server_tx_loop(self):
        timing = self.config.server_timing
        while True:
            wire = yield self._server_out.get()
            build_time = timing.build_time(len(wire))
            if build_time > 0:
                yield self.sim.timeout(build_time)
            self.wire_bytes += self.agents["server"].send_stream(
                "client", wire
            )

    # -- the measured operation ------------------------------------------------

    def _client_program(self):
        cfg = self.config
        start = self.sim.now
        entry = default_entry()
        yield from self.client.op_write(
            entry, lease=cfg.lease_seconds, created_at=start
        )
        template = MachineParameters(
            machine_id=entry.machine_id,
            recipe=entry.recipe,
            firmware=entry.firmware,
            tool_slot=entry.tool_slot,
        )
        taken = yield from self.client.op_take(
            template, timeout=cfg.take_timeout
        )
        self._result = EthernetResult(
            elapsed_seconds=self.sim.now - start,
            completed=taken is not None,
            switch_packets=self.switch.forwarded_packets,
            wire_bytes=self.wire_bytes,
            active_devices=1,  # the switch TpWIRE does without
        )
        self.sim.stop()

    def run(self, max_sim_time: float = 600.0) -> EthernetResult:
        self.sim.spawn(self._client_program(), name="eth-client-program")
        self.sim.run(until=max_sim_time)
        if self._result is None:
            raise CaseStudyIncompleteError("Ethernet case study did not finish")
        return self._result


class _QueueSession:
    """Server session queuing encoded replies for the paced TX loop."""

    def __init__(self, out: Store, codec):
        self._out = out
        self._codec = codec

    def send(self, message: Message) -> None:
        self._out.put(encode_message(message, self._codec))
