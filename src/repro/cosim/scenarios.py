"""The paper's experiment scenarios (Figures 6 and 7, Tables 3 and 4).

* :class:`ValidationScenario` — Figure 6: a CBR generator on Slave1 sends
  byte packets to a receiver on Slave2; elapsed time and frame counts are
  the rows of Table 3 (run it over both bus fidelities and compare).
* :class:`CaseStudyScenario` — Figure 7: a C++ client on Slave1 performs
  a write-entry followed by a take against the JavaSpaces server on
  Slave3 while a CBR source on Slave2 loads the bus towards a receiver on
  Slave4; completion time vs. CBR rate and wire count is Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.entry import Entry
from repro.core.server import SimTimers, SpaceServer
from repro.core.sim_client import ClientTimingModel, SimSpaceClient
from repro.core.space import TupleSpace
from repro.core.clock import SimClock
from repro.core.xmlcodec import XmlCodec
from repro.cosim.environment import BusSystem, build_bus_system
from repro.cosim.errors import CaseStudyIncompleteError
from repro.cosim.server_host import ServerTimingModel, SimServerHost
from repro.des import Simulator, TimingWheelScheduler
from repro.hw.bridge import ClientBridge, ServerBridge
from repro.net.traffic import CBRSource
from repro.net.tpwire_agent import TpwireAgent, TpwireSink
from repro.tpwire.timing import BusTiming, WireMode
from repro.tpwire.transport import PollStrategy


def _make_scheduler(scheduler, bit_rate: float):
    """Resolve a scenario ``scheduler`` knob into a queue for :class:`Simulator`.

    ``None`` or ``"heap"`` selects the default binary heap; ``"wheel"``
    builds a :class:`TimingWheelScheduler` on the bus timing's tick grid
    (half a bit period, so every fixed TpWIRE delay schedules on the
    level-0 fast path).  An already-constructed scheduler object is
    passed through unchanged.
    """
    if scheduler is None or scheduler == "heap":
        return None
    if scheduler == "wheel":
        return TimingWheelScheduler.for_timing(BusTiming(bit_rate=bit_rate))
    return scheduler


# -- Figure 6: validation topology ------------------------------------------


@dataclass
class ValidationResult:
    """One Table 3 row (for one bus model)."""

    elapsed_seconds: float
    bytes_delivered: int
    packets_delivered: int
    tx_frames: int
    rx_frames: int

    @property
    def total_frames(self) -> int:
        return self.tx_frames + self.rx_frames


class ValidationScenario:
    """Figure 6: Master, CBR on Slave1 -> Receiver on Slave2."""

    CBR_NODE = 1
    RECEIVER_NODE = 2

    def __init__(
        self,
        bit_rate: float = 2400.0,
        bit_level: bool = False,
        packet_size: int = 1,
        cbr_rate: float = 8.0,
        seed: int = 1,
        obs=None,
        scheduler=None,
    ):
        self.obs = obs
        self.sim = Simulator(
            scheduler=_make_scheduler(scheduler, bit_rate), seed=seed, obs=obs
        )
        self.system: BusSystem = build_bus_system(
            self.sim,
            [self.CBR_NODE, self.RECEIVER_NODE],
            bit_rate=bit_rate,
            bit_level=bit_level,
            obs=obs,
        )
        self.agent = TpwireAgent(
            self.sim, self.system.endpoint(self.CBR_NODE), name="cbr-agent"
        )
        self.sink = TpwireSink(
            self.sim, self.system.endpoint(self.RECEIVER_NODE), name="receiver"
        )
        self.agent.connect(self.sink)
        self.cbr = CBRSource(
            self.sim, self.agent, rate_bytes_per_s=cbr_rate,
            packet_size=packet_size,
        )

    def run(self, n_packets: int, max_sim_time: float = 3600.0) -> ValidationResult:
        """Generate ``n_packets`` and run until all are delivered."""
        if n_packets < 1:
            raise ValueError("need at least one packet")
        self.system.start()
        self.cbr.start()
        start = self.sim.now

        def monitor():
            while self.sink.received_packets < n_packets:
                yield self.sim.timeout(0.05)
            self.cbr.stop()
            self.system.stop()
            self.sim.stop()

        self.sim.spawn(monitor())
        self.sim.run(until=start + max_sim_time)
        elapsed = (
            self.sink.last_rx_time - start
            if self.sink.last_rx_time is not None
            else self.sim.now - start
        )
        result = ValidationResult(
            elapsed_seconds=elapsed,
            bytes_delivered=self.sink.received_bytes,
            packets_delivered=self.sink.received_packets,
            tx_frames=self.system.bus.tx_frames,
            rx_frames=self.system.bus.rx_frames,
        )
        if self.obs is not None:
            metrics = self.obs.metrics
            metrics.counter("scenario.packets_delivered").inc(
                result.packets_delivered
            )
            metrics.counter("scenario.bytes_delivered").inc(
                result.bytes_delivered
            )
            self.obs.tracer.event(
                "scenario", "done",
                packets=result.packets_delivered, frames=result.total_frames,
            )
        return result


# -- Figure 7: case study ---------------------------------------------------------


class MachineParameters(Entry):
    """A representative factory-automation parameter block.

    Stands in for the entries the paper's client exchanges: a realistic
    machine configuration whose XML encoding is a few hundred bytes —
    the size regime that makes a write+take take minutes over TpWIRE.
    """

    def __init__(
        self,
        machine_id=None,
        recipe=None,
        axis_positions=None,
        axis_speeds=None,
        temperature=None,
        tool_slot=None,
        firmware=None,
        checksum=None,
    ):
        self.machine_id = machine_id
        self.recipe = recipe
        self.axis_positions = axis_positions
        self.axis_speeds = axis_speeds
        self.temperature = temperature
        self.tool_slot = tool_slot
        self.firmware = firmware
        self.checksum = checksum


def default_entry() -> MachineParameters:
    """The entry written/taken in the Table 4 experiment."""
    return MachineParameters(
        machine_id="cell-7/axis-drive-3",
        recipe="anodize-std-2003",
        axis_positions=[12.5, -3.25, 100.0, 0.0, 45.125, 7.75],
        axis_speeds=[250.0, 250.0, 400.0, 100.0, 180.0, 90.0],
        temperature=36.8,
        tool_slot=14,
        firmware="tpicu-scm20-1.4.2",
        checksum=0x5A3C,
    )


def make_case_study_codec() -> XmlCodec:
    codec = XmlCodec()
    codec.register(MachineParameters)
    return codec


@dataclass
class CaseStudyConfig:
    """Knobs of the Figure 7 / Table 4 experiment."""

    wires: int = 1
    mode: Optional[WireMode] = None
    #: Calibrated so the 1-wire baseline lands in the paper's regime
    #: (write+take ~ 2.5 minutes, Out-of-Time between 0.3 and 1 B/s CBR).
    bit_rate: float = 2100.0
    cbr_rate_bytes_per_s: float = 0.0
    cbr_packet_size: int = 1
    lease_seconds: float = 160.0
    take_timeout: float = 10.0
    think_time: float = 0.0
    seed: int = 1
    #: the master drains each mailbox it visits (store-and-forward relay)
    max_messages_per_visit: int = 64
    #: firmware what-ifs: DMA burst delivery and INT-driven discovery
    use_dma: bool = False
    poll_strategy: PollStrategy = PollStrategy.ROUND_ROBIN
    #: per-frame RX corruption probability (0 = clean line); the master's
    #: retries absorb transient errors at the cost of time
    rx_error_probability: float = 0.0
    #: run the whole case study over the bit-level PHY instead of the
    #: packet-level model (slow; the full-stack validation experiment)
    bit_level: bool = False
    #: pending-event queue: ``None``/"heap" or "wheel" (see _make_scheduler)
    scheduler: Optional[str] = None
    #: board-side marshalling costs (the client runs under an ISS)
    client_timing: ClientTimingModel = field(
        default_factory=lambda: ClientTimingModel(
            build_seconds_per_byte=0.004,
            parse_seconds_per_byte=0.002,
            request_overhead=0.3,
        )
    )
    #: host-side costs (socket wrapper + RMI + XML parse in the JVM)
    server_timing: ServerTimingModel = field(
        default_factory=lambda: ServerTimingModel(
            parse_seconds_per_byte=0.002,
            build_seconds_per_byte=0.001,
            request_overhead=0.1,
        )
    )


@dataclass
class CaseStudyResult:
    """One Table 4 cell."""

    elapsed_seconds: float
    completed: bool              #: the take returned the entry
    out_of_time: bool            #: lease expired before the take
    write_ack_seconds: float     #: time until the write was acknowledged
    cbr_bytes_delivered: int
    bus_tx_frames: int
    bus_utilization: float

    def cell(self) -> str:
        """Table-4-style cell text."""
        if self.out_of_time:
            return "Out of Time"
        return f"{self.elapsed_seconds:.0f}s"


class CaseStudyScenario:
    """Figure 7: client@S1, CBR@S2, space server@S3, receiver@S4."""

    CLIENT_NODE = 1
    CBR_NODE = 2
    SERVER_NODE = 3
    RECEIVER_NODE = 4

    def __init__(self, config: Optional[CaseStudyConfig] = None, obs=None):
        self.config = config if config is not None else CaseStudyConfig()
        cfg = self.config
        self.obs = obs
        self.sim = Simulator(
            scheduler=_make_scheduler(cfg.scheduler, cfg.bit_rate),
            seed=cfg.seed,
            obs=obs,
        )
        error_model = None
        if cfg.rx_error_probability > 0:
            from repro.tpwire.bus import BitErrorModel
            error_model = BitErrorModel(
                self.sim, p_rx=cfg.rx_error_probability
            )
        self.system = build_bus_system(
            self.sim,
            [self.CLIENT_NODE, self.CBR_NODE, self.SERVER_NODE, self.RECEIVER_NODE],
            wires=cfg.wires,
            mode=cfg.mode,
            bit_rate=cfg.bit_rate,
            max_messages_per_visit=cfg.max_messages_per_visit,
            use_dma=cfg.use_dma,
            poll_strategy=cfg.poll_strategy,
            error_model=error_model,
            bit_level=cfg.bit_level,
            obs=obs,
        )
        self.codec = make_case_study_codec()

        # Server side (SC2): tuplespace on simulated time + bridge + host.
        self.space = TupleSpace(
            clock=SimClock(self.sim), name="javaspace", obs=obs
        )
        self.server = SpaceServer(
            self.space, self.codec, timers=SimTimers(self.sim), obs=obs
        )
        self.server_bridge = ServerBridge(
            self.sim, self.system.endpoint(self.SERVER_NODE)
        )
        self.server_host = SimServerHost(
            self.sim, self.server, self.server_bridge, cfg.server_timing
        )

        # Client side (SC1): bridge + the board's space client.
        self.client_bridge = ClientBridge(
            self.sim, self.system.endpoint(self.CLIENT_NODE), self.SERVER_NODE
        )
        self.client = SimSpaceClient(
            self.sim,
            self.client_bridge.to_bus,
            self.client_bridge.from_bus,
            self.codec,
            timing=cfg.client_timing,
            name="board-client",
        )

        # Cross traffic: CBR on Slave2 towards the receiver on Slave4.
        self.cbr_agent = TpwireAgent(
            self.sim, self.system.endpoint(self.CBR_NODE), name="cbr-agent"
        )
        self.cbr_sink = TpwireSink(
            self.sim, self.system.endpoint(self.RECEIVER_NODE), name="receiver"
        )
        self.cbr_agent.connect(self.cbr_sink)
        self.cbr = CBRSource(
            self.sim, self.cbr_agent,
            rate_bytes_per_s=cfg.cbr_rate_bytes_per_s,
            packet_size=cfg.cbr_packet_size,
        )

        self._result: Optional[CaseStudyResult] = None

    # -- the client program (write entry, then take it back) ---------------------

    def _client_program(self):
        cfg = self.config
        obs = self.obs
        start = self.sim.now
        entry = default_entry()
        # The entry's lifetime counts from its creation on the board
        # (created_at): the take succeeds "only if the entry lifetime is
        # not out-of-date" relative to that moment.
        write_span = obs.tracer.begin("client", "write") if obs is not None else None
        yield from self.client.op_write(
            entry, lease=cfg.lease_seconds, created_at=start
        )
        write_ack_at = self.sim.now
        if obs is not None:
            write_span.end()
            obs.metrics.histogram("client.write_seconds").observe(
                write_ack_at - start
            )
        if cfg.think_time > 0:
            yield self.sim.timeout(cfg.think_time)
        # The client addresses the block it wrote: the template pins the
        # identifying fields (a realistic, several-hundred-byte template).
        template = MachineParameters(
            machine_id=entry.machine_id,
            recipe=entry.recipe,
            firmware=entry.firmware,
            tool_slot=entry.tool_slot,
        )
        take_span = obs.tracer.begin("client", "take") if obs is not None else None
        take_started = self.sim.now
        taken = yield from self.client.op_take(template, timeout=cfg.take_timeout)
        elapsed = self.sim.now - start
        if obs is not None:
            take_span.end(completed=taken is not None)
            obs.metrics.histogram("client.take_seconds").observe(
                self.sim.now - take_started
            )
        # The bit-level PHY has no line-utilization monitor.
        utilization_monitor = getattr(self.system.bus, "utilization", None)
        self._result = CaseStudyResult(
            elapsed_seconds=elapsed,
            completed=taken is not None,
            out_of_time=taken is None,
            write_ack_seconds=write_ack_at - start,
            cbr_bytes_delivered=self.cbr_sink.received_bytes,
            bus_tx_frames=self.system.bus.tx_frames,
            bus_utilization=(
                utilization_monitor.time_average()
                if utilization_monitor is not None
                else float("nan")
            ),
        )
        self.cbr.stop()
        self.system.stop()
        self.sim.stop()

    def run(self, max_sim_time: float = 1200.0) -> CaseStudyResult:
        self.system.start()
        self.cbr.start()
        self.sim.spawn(self._client_program(), name="client-program")
        self.sim.run(until=max_sim_time)
        if self._result is None:
            raise CaseStudyIncompleteError(
                f"case study did not finish within {max_sim_time}s of "
                "simulated time"
            )
        return self._result
