"""Table 3: validation of the packet-level model against the bit-level one.

The paper measures elapsed seconds for a given number of frames on the
real TpICU/SCM bus and on the NS-2 model, then derives a scaling factor
that tells "how close to reality is the NS-2-TpWIRE model".  Here the
bit-level PHY plays the hardware's role; the packet-level model is the
NS-2 analog; both run the identical workload (the Figure 6 scenario).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import relative_error, scaling_factor
from repro.cosim.scenarios import ValidationResult, ValidationScenario


@dataclass(frozen=True)
class ValidationPoint:
    """One Table 3 row: the same workload on both models."""

    n_packets: int
    reference: ValidationResult   #: bit-level ("TpICU/SCM") measurement
    model: ValidationResult       #: packet-level ("NS-2") measurement

    @property
    def reference_seconds(self) -> float:
        return self.reference.elapsed_seconds

    @property
    def model_seconds(self) -> float:
        return self.model.elapsed_seconds

    @property
    def frame_count_matches(self) -> bool:
        return self.reference.total_frames == self.model.total_frames

    @property
    def timing_error(self) -> float:
        return relative_error(self.reference_seconds, self.model_seconds)


def run_validation_suite(
    packet_counts: list[int],
    bit_rate: float = 2400.0,
    cbr_rate: float = 8.0,
    seed: int = 1,
) -> list[ValidationPoint]:
    """Run the Figure 6 workload at each size on both bus models."""
    points = []
    for n_packets in packet_counts:
        reference = ValidationScenario(
            bit_rate=bit_rate, bit_level=True, cbr_rate=cbr_rate, seed=seed
        ).run(n_packets)
        model = ValidationScenario(
            bit_rate=bit_rate, bit_level=False, cbr_rate=cbr_rate, seed=seed
        ).run(n_packets)
        points.append(ValidationPoint(n_packets, reference, model))
    return points


def derive_scaling_factor(points: list[ValidationPoint]) -> float:
    """The Table 3 scaling factor: model seconds -> hardware seconds."""
    return scaling_factor(
        [p.reference_seconds for p in points],
        [p.model_seconds for p in points],
    )
