"""Bus-system assembly: bus + master + slaves + mailboxes + poller.

One call builds a complete TpWIRE deployment in either fidelity:

* ``bit_level=False`` — the packet-level NS-2-analog model
  (:class:`repro.tpwire.bus.TpwireBus`), used for the Figure 7 case study;
* ``bit_level=True`` — the delta-cycle PHY
  (:class:`repro.hw.tpwire_phy.BitLevelTpwireBus`), the hardware reference
  of the Table 3 validation.

Everything above the bus (master, mailboxes, transport, poller, agents,
bridges) is identical between the two, which is what makes the validation
comparison meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.des import Simulator
from repro.hw import HwKernel
from repro.hw.tpwire_phy import BitLevelTpwireBus, PhyTiming
from repro.tpwire import (
    BitErrorModel,
    BusTiming,
    MailboxDevice,
    MasterPoller,
    PollStrategy,
    TpwireMaster,
    TpwireSlave,
    WireMode,
)
from repro.tpwire.nwire import timing_for
from repro.tpwire.transport import TransportEndpoint, TransportFabric


@dataclass
class BusSystem:
    """A fully wired TpWIRE deployment."""

    sim: Simulator
    timing: BusTiming
    bus: object                     #: TpwireBus or BitLevelTpwireBus
    master: TpwireMaster
    fabric: TransportFabric
    slaves: dict[int, TpwireSlave] = field(default_factory=dict)
    mailboxes: dict[int, MailboxDevice] = field(default_factory=dict)
    endpoints: dict[int, TransportEndpoint] = field(default_factory=dict)
    poller: Optional[MasterPoller] = None
    kernel: Optional[HwKernel] = None

    def endpoint(self, node_id: int) -> TransportEndpoint:
        return self.endpoints[node_id]

    def start(self) -> None:
        if self.poller is not None:
            self.poller.start()

    def stop(self) -> None:
        if self.poller is not None:
            self.poller.stop()


def build_bus_system(
    sim: Simulator,
    slave_ids: list[int],
    wires: int = 1,
    bit_rate: float = 2400.0,
    mode: Optional[WireMode] = None,
    bit_level: bool = False,
    error_model: Optional[BitErrorModel] = None,
    max_payload: int = 32,
    max_messages_per_visit: int = 64,
    max_retries: int = 3,
    phy_timing: Optional[PhyTiming] = None,
    use_dma: bool = False,
    poll_strategy: PollStrategy = PollStrategy.ROUND_ROBIN,
    obs=None,
) -> BusSystem:
    """Build a bus, its slaves with mailbox transports, and the poller.

    ``obs`` (a :class:`repro.obs.Observability`) threads through to the
    packet-level bus, the master and every slave; the bit-level PHY has
    no packet hooks, so only master/slave instrumentation applies there.
    """
    if not slave_ids:
        raise ValueError("need at least one slave id")
    timing = timing_for(wires, bit_rate=bit_rate, mode=mode)
    kernel = None
    if bit_level:
        if error_model is not None:
            raise ValueError(
                "frame error injection is a packet-level model feature"
            )
        kernel = HwKernel(sim)
        phy = phy_timing if phy_timing is not None else PhyTiming(bit_rate=bit_rate)
        bus = BitLevelTpwireBus(sim, kernel, phy)
    else:
        from repro.tpwire.bus import TpwireBus
        bus = TpwireBus(sim, timing, error_model, obs=obs)

    fabric = TransportFabric()
    system = BusSystem(
        sim=sim,
        timing=timing,
        bus=bus,
        master=None,  # set below
        fabric=fabric,
        kernel=kernel,
    )
    for node_id in slave_ids:
        slave = TpwireSlave(sim, node_id, timing, obs=obs)
        mailbox = MailboxDevice()
        slave.attach_device(mailbox)
        bus.attach_slave(slave)
        endpoint = TransportEndpoint(
            sim, fabric, mailbox, node_id, max_payload=max_payload
        )
        system.slaves[node_id] = slave
        system.mailboxes[node_id] = mailbox
        system.endpoints[node_id] = endpoint
    if bit_level:
        bus.finalize()
    master = TpwireMaster(sim, bus, max_retries=max_retries, obs=obs)
    system.master = master
    system.poller = MasterPoller(
        sim, master, fabric, list(slave_ids),
        max_messages_per_visit=max_messages_per_visit,
        use_dma=use_dma,
        strategy=poll_strategy,
    )
    return system
