"""Transport-layer chaos for the synchronous client path.

The socket-flavoured stack (:class:`repro.core.client.SpaceClient` over a
connection) lives outside the DES — its time source is the client's
injected :class:`~repro.core.clock.Clock`.  Chaos here is therefore
clock-window based: a :class:`ChaosHost` owns a real
:class:`~repro.core.server.SpaceServer` plus the fault plan, and every
:class:`ChaosConnection` it hands out consults the host's clock on each
``send_bytes``/``recv_bytes``:

* during a ``CRASH_RESTART`` window the host is *down*: live connections
  observe an abrupt close (``recv`` returns empty with ``closed`` set,
  ``send`` raises), new connects are refused.  The space engine object
  survives — the crash is fail-stop of the front-end, so reconnecting
  after the window sees all previously acknowledged state (durability of
  the engine itself is ROADMAP item 5);
* during a ``DROP_DELAY_DUP`` window each request/response independently
  gets dropped, duplicated, or (responses) held until a later clock time,
  drawn from the plan stream ``chaos.<scope>.wire`` — so a run is
  replayable bit-for-bit given the same plan and clock schedule.

Under a :class:`~repro.core.clock.ManualClock` the client's own polling
``sleep`` advances time, which is what moves the run through fault
windows deterministically.
"""

from __future__ import annotations

from typing import Optional

from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.core.errors import ConnectionClosedError
from repro.core.transports import LocalConnection


class ChaosHost:
    """A space-server front end whose availability follows a fault plan."""

    def __init__(
        self,
        server,
        plan: FaultPlan,
        clock,
        scope: str = "server",
        server_factory=None,
    ):
        """``server_factory`` (optional, zero-argument, returns a fresh
        :class:`~repro.core.server.SpaceServer` over the *same* space)
        models a full front-end restart: after each crash window the next
        connect builds a new server, which has forgotten its lease-id
        table — the case lease re-acquisition exists for.  Without it the
        same server object survives the crash (process kept its memory).
        """
        self.server = server if server is not None else server_factory()
        self.server_factory = server_factory
        self.plan = plan
        self.clock = clock
        self.scope = scope
        self._generation = 0
        self.front_end_restarts = 0
        self._crash_windows = tuple(
            spec for spec in plan.of_kind(FaultKind.CRASH_RESTART)
            if spec.scope == scope
        )
        self._wire_windows = tuple(
            spec for spec in plan.of_kind(FaultKind.DROP_DELAY_DUP)
            if spec.scope == scope
        )
        self._wire_rng = plan.stream(f"chaos.{scope}.wire")
        # -- message-overhead accounting (the chaos bench reads these)
        self.connects = 0
        self.refused_connects = 0
        self.requests_dropped = 0
        self.requests_duplicated = 0
        self.responses_dropped = 0
        self.responses_duplicated = 0
        self.responses_delayed = 0

    # -- availability --------------------------------------------------------

    def down_at(self, now: float) -> bool:
        return any(spec.active_at(now) for spec in self._crash_windows)

    def next_up_time(self, now: float) -> float:
        """Earliest time the host is back up (``now`` if already up)."""
        t = now
        for spec in sorted(self._crash_windows, key=lambda s: s.at):
            if spec.active_at(t):
                t = spec.until
        return t

    def connect(self) -> "ChaosConnection":
        now = self.clock.now()
        if self.down_at(now):
            self.refused_connects += 1
            raise ConnectionClosedError(
                f"host {self.scope!r} is down at t={now:.3f}"
            )
        if self.server_factory is not None:
            generation = sum(1 for spec in self._crash_windows if spec.at <= now)
            if generation != self._generation:
                self.server = self.server_factory()
                self._generation = generation
                self.front_end_restarts += 1
        self.connects += 1
        return ChaosConnection(LocalConnection(self.server), self)

    # -- wire verdicts -------------------------------------------------------

    def _active_wire(self, now: float) -> Optional[FaultSpec]:
        for spec in self._wire_windows:
            if spec.active_at(now):
                return spec
        return None

    def request_verdict(self, now: float):
        spec = self._active_wire(now)
        if spec is None:
            return None
        draw = self._wire_rng.random()
        drop_p = float(spec.param("req_drop_p", 0.0))
        dup_p = float(spec.param("req_dup_p", 0.0))
        if draw < drop_p:
            return "drop"
        if draw < drop_p + dup_p:
            return "dup"
        return None

    def response_verdict(self, now: float):
        spec = self._active_wire(now)
        if spec is None:
            return None
        draw = self._wire_rng.random()
        drop_p = float(spec.param("resp_drop_p", 0.0))
        dup_p = float(spec.param("resp_dup_p", 0.0))
        delay_p = float(spec.param("resp_delay_p", 0.0))
        if draw < drop_p:
            return "drop"
        if draw < drop_p + dup_p:
            return "dup"
        if draw < drop_p + dup_p + delay_p:
            return ("delay", float(spec.param("resp_delay", 0.0)))
        return None

    @property
    def message_overhead(self) -> dict:
        """JSON-safe counters of chaos-added wire traffic."""
        return {
            "connects": self.connects,
            "refused_connects": self.refused_connects,
            "requests_dropped": self.requests_dropped,
            "requests_duplicated": self.requests_duplicated,
            "responses_dropped": self.responses_dropped,
            "responses_duplicated": self.responses_duplicated,
            "responses_delayed": self.responses_delayed,
        }


class ChaosConnection:
    """Connection wrapper applying the host's fault windows per call.

    Exposes the same ``send_bytes``/``recv_bytes``/``close``/``closed``
    surface as the transports in :mod:`repro.core.transports`, so a
    :class:`SpaceClient` cannot tell it apart from a healthy link.
    """

    def __init__(self, inner, host: ChaosHost):
        self.inner = inner
        self.host = host
        self.closed = False
        #: Responses held back by a delay verdict: ``(release_time, blob)``.
        self._delayed: list[tuple[float, bytes]] = []

    def send_bytes(self, data: bytes) -> None:
        if self.closed:
            raise ConnectionClosedError("connection is closed")
        host = self.host
        now = host.clock.now()
        if host.down_at(now):
            self.closed = True
            raise ConnectionClosedError(
                f"host {host.scope!r} crashed at t={now:.3f}"
            )
        verdict = host.request_verdict(now)
        if verdict == "drop":
            host.requests_dropped += 1
            return
        if verdict == "dup":
            host.requests_duplicated += 1
            self.inner.send_bytes(data)
            self.inner.send_bytes(data)
            return
        self.inner.send_bytes(data)

    def recv_bytes(self, max_bytes: int = 65536) -> bytes:
        host = self.host
        now = host.clock.now()
        if host.down_at(now):
            # Front-end gone: buffered responses die with it.
            self.closed = True
            return b""
        out = bytearray()
        still_held: list[tuple[float, bytes]] = []
        for release, blob in self._delayed:
            if release <= now:
                out.extend(blob)
            else:
                still_held.append((release, blob))
        self._delayed = still_held
        data = self.inner.recv_bytes(max_bytes)
        if data:
            verdict = host.response_verdict(now)
            if verdict == "drop":
                host.responses_dropped += 1
            elif verdict == "dup":
                host.responses_duplicated += 1
                out.extend(data)
                out.extend(data)
            elif isinstance(verdict, tuple):
                host.responses_delayed += 1
                self._delayed.append((now + verdict[1], bytes(data)))
            else:
                out.extend(data)
        return bytes(out)

    def close(self) -> None:
        self.closed = True
        self.inner.close()
