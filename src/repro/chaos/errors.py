"""Chaos-harness exceptions."""


class ChaosError(Exception):
    """Base class for fault-injection harness errors."""


class FaultPlanError(ChaosError):
    """Malformed fault plan (unknown kind, bad window, bad scope)."""


class InjectorError(ChaosError):
    """An injector could not be armed against its target."""


class InvariantViolation(ChaosError):
    """A chaos scenario's recovery invariant did not hold."""
