"""Deterministic fault plans.

A :class:`FaultPlan` is the replayable unit of chaos: a master seed plus
an ordered tuple of :class:`FaultSpec` entries, each naming a fault
class, a trigger time, a duration, a scope (which link / node / server
the fault hits) and free-form scalar parameters.  Plans are plain data —
they serialise to JSON-safe dicts and back bit-for-bit — so a chaos run
is reproduced by re-running the same scenario with the same plan, and a
failing campaign can commit the offending plan next to its regression
test.

Randomness inside injectors never touches the global generator: every
injector draws from :meth:`FaultPlan.stream`, which derives an
independent ``random.Random`` from the plan seed and the stream name
exactly like :class:`repro.des.random_streams.StreamRegistry` does, so
adding a fault never perturbs the draws of another.
"""

from __future__ import annotations

import enum
import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.chaos.errors import FaultPlanError


class FaultKind(enum.Enum):
    """The six fault classes of the chaos campaign."""

    CRASH_RESTART = "crash-restart"      #: node/server down, then back
    PARTITION = "partition"              #: a link passes nothing
    NOISY_BURST = "noisy-burst"          #: elevated frame corruption
    DROP_DELAY_DUP = "drop-delay-dup"    #: transport message mangling
    LEASE_STORM = "lease-storm"          #: mass simultaneous lease expiry
    SLOW_CONSUMER = "slow-consumer"      #: a consumer stalls


_SCALAR_TYPES = (str, int, float, bool)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what, when, for how long, against which target.

    ``params`` carries per-kind knobs (drop probability, burst error
    rate, storm size, ...) as JSON-safe scalars.
    """

    kind: FaultKind
    at: float
    duration: float
    scope: str = ""
    params: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.at < 0:
            raise FaultPlanError(f"fault trigger time must be >= 0, got {self.at}")
        if self.duration < 0:
            raise FaultPlanError(
                f"fault duration must be >= 0, got {self.duration}"
            )
        for key, value in self.params:
            if not isinstance(key, str):
                raise FaultPlanError(f"param key {key!r} is not a string")
            if value is not None and not isinstance(value, _SCALAR_TYPES):
                raise FaultPlanError(
                    f"param {key}={value!r} is not a JSON-safe scalar"
                )

    @property
    def until(self) -> float:
        return self.at + self.duration

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def active_at(self, now: float) -> bool:
        """Window membership: closed at the start, open at the end."""
        return self.at <= now < self.until

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "at": self.at,
            "duration": self.duration,
            "scope": self.scope,
            "params": {key: value for key, value in self.params},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        try:
            kind = FaultKind(data["kind"])
        except (KeyError, ValueError):
            raise FaultPlanError(f"unknown fault kind in {data!r}")
        return cls(
            kind=kind,
            at=float(data.get("at", 0.0)),
            duration=float(data.get("duration", 0.0)),
            scope=str(data.get("scope", "")),
            params=tuple(sorted(dict(data.get("params", {})).items())),
        )


def fault(
    kind: FaultKind,
    at: float,
    duration: float = 0.0,
    scope: str = "",
    **params: Any,
) -> FaultSpec:
    """Convenience constructor: ``fault(FaultKind.PARTITION, 5, 3, "link0")``."""
    return FaultSpec(
        kind=kind,
        at=at,
        duration=duration,
        scope=scope,
        params=tuple(sorted(params.items())),
    )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered schedule of faults — the replayable chaos unit."""

    seed: int
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        ordered = tuple(sorted(self.faults, key=lambda f: (f.at, f.scope)))
        object.__setattr__(self, "faults", ordered)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def of_kind(self, kind: FaultKind) -> tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.faults if spec.kind is kind)

    def for_scope(self, scope: str) -> tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.faults if spec.scope == scope)

    def stream(self, name: str) -> random.Random:
        """Independent deterministic RNG for one injector/component."""
        digest = hashlib.sha256(
            f"chaos:{self.seed}:{name}".encode("utf-8")
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    @property
    def horizon(self) -> float:
        """End of the last fault window (0.0 for an empty plan)."""
        return max((spec.until for spec in self.faults), default=0.0)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if "seed" not in data:
            raise FaultPlanError("fault plan needs a seed")
        return cls(
            seed=int(data["seed"]),
            faults=tuple(
                FaultSpec.from_dict(item) for item in data.get("faults", ())
            ),
        )

    def fingerprint(self) -> str:
        """Stable content digest (plans compare across processes by it)."""
        canonical = repr(
            (self.seed, tuple(sorted(spec.to_dict().items(), key=str)
                              for spec in self.faults))
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def single_fault_plan(
    kind: FaultKind,
    at: float,
    duration: float,
    scope: str = "",
    seed: int = 0,
    **params: Any,
) -> FaultPlan:
    """Plan with exactly one fault — the shape most scenario tests use."""
    return FaultPlan(seed=seed, faults=(fault(kind, at, duration, scope, **params),))
