"""Fault injectors for DES-world targets.

An injector binds one :class:`~repro.chaos.plan.FaultSpec` to one target
object and schedules its begin/end transitions on the simulator clock, so
injection is just two more events in the deterministic event order.  The
three concrete injectors cover the DES-visible fault surface:

* :class:`LinkFaultInjector` — partition / drop-delay-dup / corrupt
  verdicts through the ``net.link.Link.fault`` hook;
* :class:`BusNoiseInjector` — a noisy-line burst that raises (and later
  restores) the tpwire :class:`~repro.tpwire.bus.BitErrorModel`
  probabilities, installing a model when the bus has none;
* :class:`SlaveCrashInjector` — fail-stop power-off / cold-reset
  power-on of a :class:`~repro.tpwire.slave.TpwireSlave`.

Lease storms and slow consumers are *workload-shaped* faults: they are
driven by the scenario itself (see :mod:`repro.chaos.scenarios`), usually
through :class:`CallbackInjector`.

:func:`arm_plan` maps every spec in a plan onto a registered target by
scope name and arms the matching injector type, so a scenario reads as
"here are my components, here is the plan, go".
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.chaos.errors import InjectorError
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec


class Injector:
    """Base: schedules ``_begin`` at ``spec.at`` and ``_end`` at ``spec.until``."""

    def __init__(self, sim, spec: FaultSpec):
        self.sim = sim
        self.spec = spec
        self.armed = False
        self.active = False

    def arm(self) -> "Injector":
        if self.armed:
            raise InjectorError(f"{self!r} is already armed")
        self.armed = True
        self.sim.at(self.spec.at, self._fire_begin)
        self.sim.at(self.spec.until, self._fire_end)
        return self

    def _fire_begin(self) -> None:
        self.active = True
        self._begin()

    def _fire_end(self) -> None:
        self.active = False
        self._end()

    def _begin(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _end(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.spec.kind.value}, "
            f"[{self.spec.at}, {self.spec.until}), scope={self.spec.scope!r})"
        )


class LinkFaultInjector(Injector):
    """Installs a fault verdict on a ``Link`` for the spec's window.

    Verdicts by kind:

    * ``PARTITION`` — every packet is dropped;
    * ``DROP_DELAY_DUP`` — each packet independently dropped with
      ``drop_p``, duplicated with ``dup_p``, delayed ``delay`` seconds
      with ``delay_p`` (draws from the plan stream ``chaos.<scope>``);
    * ``NOISY_BURST`` — each packet corrupted with ``corrupt_p``
      (header-marked; receivers decide what a corrupt packet means).
    """

    KINDS = (FaultKind.PARTITION, FaultKind.DROP_DELAY_DUP, FaultKind.NOISY_BURST)

    def __init__(self, sim, spec: FaultSpec, link, plan: FaultPlan):
        if spec.kind not in self.KINDS:
            raise InjectorError(
                f"link injector cannot apply fault kind {spec.kind.value}"
            )
        super().__init__(sim, spec)
        self.link = link
        self._rng = plan.stream(f"chaos.{spec.scope or 'link'}")
        self._prev_fault = None
        self.drop_p = float(spec.param("drop_p", 0.0))
        self.dup_p = float(spec.param("dup_p", 0.0))
        self.delay_p = float(spec.param("delay_p", 0.0))
        self.delay = float(spec.param("delay", 0.0))
        self.corrupt_p = float(spec.param("corrupt_p", 0.0))

    def _begin(self) -> None:
        self._prev_fault = self.link.fault
        self.link.fault = self._verdict

    def _end(self) -> None:
        self.link.fault = self._prev_fault
        self._prev_fault = None

    def _verdict(self, link, packet):
        kind = self.spec.kind
        if kind is FaultKind.PARTITION:
            return "drop"
        if kind is FaultKind.NOISY_BURST:
            if self.corrupt_p and self._rng.random() < self.corrupt_p:
                return "corrupt"
            return None
        draw = self._rng.random()
        if draw < self.drop_p:
            return "drop"
        if draw < self.drop_p + self.dup_p:
            return "dup"
        if draw < self.drop_p + self.dup_p + self.delay_p:
            return ("delay", self.delay)
        return None


class BusNoiseInjector(Injector):
    """Raises tpwire bit-error probabilities for the spec's window.

    Params: ``p_tx`` / ``p_rx`` (burst corruption probabilities, default
    0.2 each).  If the bus has no :class:`BitErrorModel`, one is
    installed drawing from the sim stream ``chaos.<scope>.noise`` so the
    burst stays on its own deterministic stream.
    """

    def __init__(self, sim, spec: FaultSpec, bus, plan: FaultPlan):
        if spec.kind is not FaultKind.NOISY_BURST:
            raise InjectorError(
                f"bus noise injector cannot apply fault kind {spec.kind.value}"
            )
        super().__init__(sim, spec)
        self.bus = bus
        self.p_tx = float(spec.param("p_tx", 0.2))
        self.p_rx = float(spec.param("p_rx", 0.2))
        self._saved: Optional[tuple[float, float]] = None

    def _begin(self) -> None:
        if self.bus.error_model is None:
            from repro.tpwire.bus import BitErrorModel

            scope = self.spec.scope or self.bus.name
            self.bus.error_model = BitErrorModel(
                self.sim, stream=f"chaos.{scope}.noise"
            )
        model = self.bus.error_model
        self._saved = (model.p_tx, model.p_rx)
        model.p_tx = self.p_tx
        model.p_rx = self.p_rx

    def _end(self) -> None:
        model = self.bus.error_model
        if model is not None and self._saved is not None:
            model.p_tx, model.p_rx = self._saved
        self._saved = None


class SlaveCrashInjector(Injector):
    """Fail-stops a tpwire slave, then powers it back on (cold reset)."""

    def __init__(self, sim, spec: FaultSpec, slave):
        if spec.kind is not FaultKind.CRASH_RESTART:
            raise InjectorError(
                f"slave crash injector cannot apply fault kind {spec.kind.value}"
            )
        super().__init__(sim, spec)
        self.slave = slave

    def _begin(self) -> None:
        self.slave.power_off()

    def _end(self) -> None:
        self.slave.power_on(self.sim.now)


class CallbackInjector(Injector):
    """Scenario-supplied begin/end callbacks on the spec's window.

    The escape hatch for workload-shaped faults (lease storms, slow
    consumers) where the "injection" is a change in agent behaviour
    rather than a mutation of a transport object.
    """

    def __init__(
        self,
        sim,
        spec: FaultSpec,
        on_begin: Callable[[], None],
        on_end: Optional[Callable[[], None]] = None,
    ):
        super().__init__(sim, spec)
        self._on_begin = on_begin
        self._on_end = on_end

    def _begin(self) -> None:
        self._on_begin()

    def _end(self) -> None:
        if self._on_end is not None:
            self._on_end()


def make_injector(sim, spec: FaultSpec, target, plan: FaultPlan) -> Injector:
    """Pick the injector type for ``spec`` against ``target`` (duck-typed)."""
    if spec.kind is FaultKind.CRASH_RESTART and hasattr(target, "power_off"):
        return SlaveCrashInjector(sim, spec, target)
    if spec.kind is FaultKind.NOISY_BURST and hasattr(target, "error_model"):
        return BusNoiseInjector(sim, spec, target, plan)
    if spec.kind in LinkFaultInjector.KINDS and hasattr(target, "fault"):
        return LinkFaultInjector(sim, spec, target, plan)
    raise InjectorError(
        f"no injector for fault kind {spec.kind.value} "
        f"against {type(target).__name__}"
    )


def arm_plan(
    sim,
    plan: FaultPlan,
    targets: dict,
    skip_kinds: tuple = (),
) -> list[Injector]:
    """Arm one injector per plan spec, resolving targets by scope name.

    ``skip_kinds`` lists fault kinds the caller drives itself (e.g. a
    scenario handling :attr:`FaultKind.LEASE_STORM` as workload); specs
    of those kinds are left untouched.  A spec whose scope matches no
    registered target is an error — silent no-op chaos is worse than a
    crash.
    """
    armed: list[Injector] = []
    for spec in plan:
        if spec.kind in skip_kinds:
            continue
        if spec.scope not in targets:
            raise InjectorError(
                f"fault scope {spec.scope!r} matches no registered target "
                f"(have: {sorted(targets)})"
            )
        armed.append(make_injector(sim, spec, targets[spec.scope], plan).arm())
    return armed
