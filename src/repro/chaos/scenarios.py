"""Replayable chaos scenarios: one per fault class, with invariants.

Each scenario wires a small system (space + transport, DES network, or
tpwire bus), arms the injectors of a :class:`~repro.chaos.plan.FaultPlan`,
drives a workload through the fault window and checks the recovery
invariants of the tentpole:

* **no lost acknowledged writes** — everything the client got an ack for
  is in the space afterwards;
* **no duplicated idempotent writes** — retries under an op key never
  materialise a second tuple, and at-most-once operations never
  double-consume;
* **bounded recovery time** — the first successful operation after the
  fault window lands within ``recovery_budget`` seconds of it;
* **leases re-armed** — grants held across a front-end restart are
  re-acquired, renewals kept flowing.

Every scenario returns a :class:`ChaosResult` whose ``fingerprint`` is a
digest of the canonical event log (times, sequence numbers, outcomes —
never process-global ids such as ``Packet.uid``): running the same
scenario twice with the same plan must produce the same fingerprint,
which is the replay-determinism contract the chaos tests assert.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.chaos.errors import InvariantViolation
from repro.chaos.injectors import CallbackInjector, arm_plan
from repro.chaos.plan import FaultKind, FaultPlan, fault, single_fault_plan
from repro.chaos.transport import ChaosHost
from repro.core.agents import (
    ConsumerAgent,
    fft_request,
    fft_request_template,
    fft_result_template,
)
from repro.core.clock import ManualClock, SimClock
from repro.core.errors import SpaceError
from repro.core.resilience import BackoffPolicy, CircuitBreaker, ResilientSpaceClient
from repro.core.server import NullTimers, SpaceServer
from repro.core.simops import LeaseKeeper, space_take
from repro.core.space import TupleSpace
from repro.core.tuples import LindaTuple, TupleTemplate
from repro.core.xmlcodec import XmlCodec
from repro.des import Simulator
from repro.net.agent import NetAgent
from repro.net.link import DuplexLink
from repro.net.node import Node
from repro.tpwire.bus import TpwireBus
from repro.tpwire.errors import BusError, SlaveError
from repro.tpwire.master import TpwireMaster
from repro.tpwire.slave import TpwireSlave
from repro.tpwire.timing import BusTiming


def _fingerprint(plan: FaultPlan, log) -> str:
    """Digest of the plan plus the canonical event log."""
    canonical = plan.fingerprint() + repr(log)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class ChaosResult:
    """Outcome of one scenario run (JSON-safe via :meth:`to_payload`)."""

    def __init__(
        self,
        kind: FaultKind,
        plan: FaultPlan,
        recovery_seconds: float,
        message_overhead: dict,
        invariants: dict,
        details: dict,
        fingerprint: str,
    ):
        self.kind = kind
        self.plan = plan
        self.recovery_seconds = recovery_seconds
        self.message_overhead = message_overhead
        self.invariants = invariants
        self.details = details
        self.fingerprint = fingerprint

    @property
    def ok(self) -> bool:
        return all(self.invariants.values())

    def check(self) -> "ChaosResult":
        """Raise :class:`InvariantViolation` naming every failed invariant."""
        failed = sorted(k for k, v in self.invariants.items() if not v)
        if failed:
            raise InvariantViolation(
                f"{self.kind.value}: invariants violated: {', '.join(failed)} "
                f"(details: {self.details})"
            )
        return self

    def to_payload(self) -> dict:
        return {
            "fault_class": self.kind.value,
            "plan": self.plan.to_dict(),
            "recovery_seconds": self.recovery_seconds,
            "message_overhead": self.message_overhead,
            "invariants": self.invariants,
            "details": self.details,
            "fingerprint": self.fingerprint,
            "ok": self.ok,
        }

    def __repr__(self) -> str:
        state = "ok" if self.ok else "VIOLATED"
        return (
            f"ChaosResult({self.kind.value}, {state}, "
            f"recovery={self.recovery_seconds:.3f}s, fp={self.fingerprint})"
        )


class ChaosScenario:
    """Base scenario: a plan, a recovery budget, and a ``run()``."""

    kind: FaultKind

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        seed: int = 0,
        recovery_budget: float = 2.0,
    ):
        self.plan = plan if plan is not None else self.default_plan(seed)
        self.recovery_budget = recovery_budget

    @classmethod
    def default_plan(cls, seed: int) -> FaultPlan:
        raise NotImplementedError

    def run(self) -> ChaosResult:
        raise NotImplementedError

    def _result(self, recovery, overhead, invariants, details, log) -> ChaosResult:
        return ChaosResult(
            kind=self.kind,
            plan=self.plan,
            recovery_seconds=float(recovery),
            message_overhead=overhead,
            invariants=invariants,
            details=details,
            fingerprint=_fingerprint(self.plan, log),
        )


# -- 1. server crash / restart ------------------------------------------------

class CrashRestartScenario(ChaosScenario):
    """Fail-stop of the space-server front end, then a cold restart.

    A :class:`ResilientSpaceClient` keeps writing through the outage:
    every write is retried under an idempotency key, so the acknowledged
    set must come out of the space exactly once each.  The restarted
    front end has forgotten its lease-id table; renewing the anchor
    lease exercises graceful re-acquisition.
    """

    kind = FaultKind.CRASH_RESTART

    def __init__(self, plan=None, seed=0, recovery_budget=2.0, n_writes=20):
        super().__init__(plan, seed, recovery_budget)
        self.n_writes = n_writes

    @classmethod
    def default_plan(cls, seed: int) -> FaultPlan:
        return single_fault_plan(
            FaultKind.CRASH_RESTART, at=1.0, duration=0.5,
            scope="server", seed=seed,
        )

    def run(self) -> ChaosResult:
        clock = ManualClock()
        codec = XmlCodec()
        space = TupleSpace(clock=clock, name="chaos-space")

        incarnation = {"n": -1}

        def server_factory():
            # Each restart is a new incarnation: fresh lease-id epoch, so
            # stale pre-crash lease ids cannot alias post-restart grants.
            incarnation["n"] += 1
            return SpaceServer(
                space, codec, timers=NullTimers(),
                lease_epoch=incarnation["n"],
            )

        host = ChaosHost(
            None, self.plan, clock, scope="server",
            server_factory=server_factory,
        )
        client = ResilientSpaceClient(
            host.connect, codec, clock, client_id="chaos",
            backoff=BackoffPolicy(
                base=0.05, factor=2.0, max_delay=0.5,
                jitter=0.5, rng=self.plan.stream("backoff"),
            ),
            breaker=CircuitBreaker(clock, failure_threshold=3, reset_timeout=0.1),
            request_timeout=0.5,
            max_attempts=16,
        )
        spec = self.plan.of_kind(self.kind)[0]
        log: list = []

        anchor = client.write(LindaTuple("anchor", 0), lease=60.0)
        log.append(("anchor", round(clock.now(), 6)))

        first_after: Optional[float] = None
        for index in range(self.n_writes):
            clock.advance(0.1)
            ack = client.write(LindaTuple("item", index))
            now = clock.now()
            if first_after is None and now >= spec.until:
                first_after = now
            log.append(("write", index, round(now, 6), int(ack["dup"])))

        # Graceful lease re-acquisition against the restarted front end.
        renewed = client.renew_lease(anchor["lease_id"], 60.0)
        log.append(("renew", round(clock.now(), 6), round(renewed, 6)))

        # Drain: every acknowledged write must surface exactly once.
        drained: list[int] = []
        while True:
            item = client.take_if_exists(TupleTemplate("item", int))
            if item is None:
                break
            drained.append(item.fields[1])
        log.append(("drained", tuple(drained)))
        anchor_present = (
            client.read_if_exists(TupleTemplate("anchor", int)) is not None
        )

        recovery = (first_after - spec.until) if first_after is not None else 0.0
        invariants = {
            "no_lost_acked_writes": sorted(drained) == list(range(self.n_writes)),
            "no_duplicate_writes": len(drained) == len(set(drained)),
            "bounded_recovery": recovery <= self.recovery_budget,
            "lease_rearmed": client.reacquired >= 1
            and renewed > 0 and anchor_present,
            "fault_observed": client.retries > 0
            and host.refused_connects > 0 and host.front_end_restarts >= 1,
        }
        overhead = dict(host.message_overhead)
        overhead["client_retries"] = client.retries
        overhead["client_connects"] = client.connects
        details = {
            "drained": len(drained),
            "front_end_restarts": host.front_end_restarts,
            "reacquired": client.reacquired,
            "breaker_opens": client.breaker.opens,
            "breaker_rejections": client.breaker.rejections,
            "duplicate_acks": client.duplicate_acks,
        }
        return self._result(recovery, overhead, invariants, details, log)


# -- 2. message drop / delay / duplication ------------------------------------

class DropDelayDupScenario(ChaosScenario):
    """Lossy wire between client and server: drops, dups, delays.

    The fault window garbles requests and responses independently; the
    idempotent retry machinery must absorb all of it — worst-case single
    operation latency is the recovery metric for this class (there is no
    outage edge to recover past).
    """

    kind = FaultKind.DROP_DELAY_DUP

    def __init__(self, plan=None, seed=0, recovery_budget=3.0, n_writes=30):
        super().__init__(plan, seed, recovery_budget)
        self.n_writes = n_writes

    @classmethod
    def default_plan(cls, seed: int) -> FaultPlan:
        return single_fault_plan(
            FaultKind.DROP_DELAY_DUP, at=0.5, duration=3.0,
            scope="server", seed=seed,
            req_drop_p=0.15, req_dup_p=0.15,
            resp_drop_p=0.15, resp_dup_p=0.1,
            resp_delay_p=0.1, resp_delay=0.05,
        )

    def run(self) -> ChaosResult:
        clock = ManualClock()
        codec = XmlCodec()
        space = TupleSpace(clock=clock, name="chaos-space")
        server = SpaceServer(space, codec, timers=NullTimers())
        host = ChaosHost(server, self.plan, clock, scope="server")
        client = ResilientSpaceClient(
            host.connect, codec, clock, client_id="chaos",
            backoff=BackoffPolicy(
                base=0.02, factor=2.0, max_delay=0.2,
                jitter=0.5, rng=self.plan.stream("backoff"),
            ),
            poll_interval=0.01,
            request_timeout=0.3,
            max_attempts=12,
        )
        log: list = []
        worst_latency = 0.0
        for index in range(self.n_writes):
            clock.advance(0.1)
            started = clock.now()
            ack = client.write(LindaTuple("item", index))
            latency = clock.now() - started
            worst_latency = max(worst_latency, latency)
            log.append(("write", index, round(latency, 6), int(ack["dup"])))

        # Step past the window before draining, so the at-most-once takes
        # run over a clean wire.
        horizon = self.plan.horizon
        if clock.now() < horizon:
            clock.set(horizon + 0.01)
        drained: list[int] = []
        while True:
            item = client.take_if_exists(TupleTemplate("item", int))
            if item is None:
                break
            drained.append(item.fields[1])
        log.append(("drained", tuple(drained)))

        invariants = {
            "no_lost_acked_writes": sorted(drained) == list(range(self.n_writes)),
            "no_duplicate_writes": len(drained) == len(set(drained)),
            "bounded_recovery": worst_latency <= self.recovery_budget,
            "fault_observed": (
                host.requests_dropped + host.requests_duplicated
                + host.responses_dropped + host.responses_duplicated
                + host.responses_delayed
            ) > 0,
        }
        overhead = dict(host.message_overhead)
        overhead["client_retries"] = client.retries
        overhead["client_connects"] = client.connects
        details = {
            "worst_op_latency": round(worst_latency, 6),
            "duplicate_acks": client.duplicate_acks,
            "drained": len(drained),
        }
        return self._result(worst_latency, overhead, invariants, details, log)


# -- 3. network partition ------------------------------------------------------

class _ReliableSender(NetAgent):
    """Seq-numbered sender with periodic retransmission of unacked data."""

    packet_kind = "chaos-data"

    def __init__(self, sim, n_messages, interval, retransmit_interval,
                 deadline, name="chaos-sender"):
        super().__init__(sim, name)
        self.n_messages = n_messages
        self.interval = interval
        self.retransmit_interval = retransmit_interval
        self.deadline = deadline
        self.acked: dict[int, float] = {}
        self.transmissions = 0
        self._last_sent: dict[int, float] = {}

    def start(self):
        return self.sim.spawn(self._run(), name=self.name)

    def _send_seq(self, seq: int) -> None:
        self.send_payload(64, payload=seq, seq=seq)
        self.transmissions += 1
        self._last_sent[seq] = self.sim.now

    def _run(self):
        next_seq = 0
        while len(self.acked) < self.n_messages and self.sim.now < self.deadline:
            if next_seq < self.n_messages:
                self._send_seq(next_seq)
                next_seq += 1
            for seq in range(next_seq):
                if seq in self.acked:
                    continue
                if self.sim.now - self._last_sent[seq] >= self.retransmit_interval:
                    self._send_seq(seq)
            yield self.sim.timeout(self.interval)

    def recv(self, packet):
        ack = packet.headers.get("ack")
        if ack is not None and ack not in self.acked:
            self.acked[ack] = self.sim.now


class _ReliableReceiver(NetAgent):
    """Dedups by sequence number; acks every copy (including duplicates)."""

    packet_kind = "chaos-ack"

    def __init__(self, sim, name="chaos-receiver"):
        super().__init__(sim, name)
        self.delivered: dict[int, float] = {}
        self.duplicates = 0

    def recv(self, packet):
        seq = packet.headers.get("seq")
        if seq is None or packet.headers.get("corrupted"):
            return
        if seq in self.delivered:
            self.duplicates += 1
        else:
            self.delivered[seq] = self.sim.now
        self.send_payload(8, ack=seq)


class PartitionScenario(ChaosScenario):
    """Both directions of a duplex link go dark for the fault window.

    A seq-numbered sender retransmits unacked messages; the receiver
    dedups.  Exactly-once application-level delivery and bounded catch-up
    after the partition heals are the invariants.
    """

    kind = FaultKind.PARTITION

    def __init__(self, plan=None, seed=0, recovery_budget=2.0, n_messages=40):
        super().__init__(plan, seed, recovery_budget)
        self.n_messages = n_messages

    @classmethod
    def default_plan(cls, seed: int) -> FaultPlan:
        return FaultPlan(seed=seed, faults=(
            fault(FaultKind.PARTITION, at=0.3, duration=0.4, scope="link.fwd"),
            fault(FaultKind.PARTITION, at=0.3, duration=0.4, scope="link.bwd"),
        ))

    def run(self) -> ChaosResult:
        sim = Simulator(seed=self.plan.seed)
        node_a = Node(sim, "A")
        node_b = Node(sim, "B")
        duplex = DuplexLink(sim, node_a, node_b, bandwidth_bps=1e6,
                            delay=0.001, queue_limit=64)
        sender = _ReliableSender(
            sim, self.n_messages, interval=0.02,
            retransmit_interval=0.25, deadline=20.0,
        )
        receiver = _ReliableReceiver(sim)
        node_a.attach(sender, port=1)
        node_b.attach(receiver, port=1)
        sender.connect(node_b, 1)
        receiver.connect(node_a, 1)
        arm_plan(sim, self.plan, {
            "link.fwd": duplex.forward,
            "link.bwd": duplex.backward,
        })
        sender.start()
        sim.run(until=20.0)

        until = self.plan.horizon
        last_delivery = max(receiver.delivered.values(), default=0.0)
        recovery = max(0.0, last_delivery - until)
        log = [
            ("delivered", seq, round(t, 9))
            for seq, t in sorted(receiver.delivered.items())
        ]
        log.append(("duplicates", receiver.duplicates))
        log.append(("transmissions", sender.transmissions))

        invariants = {
            "delivered_all": len(receiver.delivered) == self.n_messages,
            "exactly_once": len(set(receiver.delivered)) == self.n_messages
            and all(seq in sender.acked for seq in range(self.n_messages)),
            "bounded_recovery": recovery <= self.recovery_budget,
            "fault_observed": (duplex.forward.fault_drops
                               + duplex.backward.fault_drops) > 0,
            "fault_cleared": duplex.forward.fault is None
            and duplex.backward.fault is None,
        }
        overhead = {
            "transmissions": sender.transmissions,
            "retransmissions": sender.transmissions - self.n_messages,
            "duplicates_received": receiver.duplicates,
            "forward_fault_drops": duplex.forward.fault_drops,
            "backward_fault_drops": duplex.backward.fault_drops,
        }
        details = {
            "last_delivery": round(last_delivery, 6),
            "window_end": until,
        }
        return self._result(recovery, overhead, invariants, details, log)


# -- 4. noisy-line burst on the tpwire bus -------------------------------------

class NoisyBurstScenario(ChaosScenario):
    """Bit-error burst on the TpWIRE line during register traffic.

    The slave's register pointer auto-increments on every data frame, so
    the master's *blind* per-frame retry can silently shear a transfer
    when a reply is corrupted (the slave acted; the master resends).  The
    driver therefore performs whole-operation write-then-read-back
    verification and repeats the round until it checks out — the
    resilience pattern this class exists to exercise.
    """

    kind = FaultKind.NOISY_BURST

    def __init__(self, plan=None, seed=0, recovery_budget=2.0,
                 n_rounds=6, payload_len=4):
        super().__init__(plan, seed, recovery_budget)
        self.n_rounds = n_rounds
        self.payload_len = payload_len

    @classmethod
    def default_plan(cls, seed: int) -> FaultPlan:
        # Default 2400 bit/s timing: one exchange is ~17 ms, one verified
        # round ~0.2 s.  A 0.5 s window spans a couple of rounds.
        return single_fault_plan(
            FaultKind.NOISY_BURST, at=0.25, duration=0.5,
            scope="bus", seed=seed, p_tx=0.12, p_rx=0.12,
        )

    def run(self) -> ChaosResult:
        sim = Simulator(seed=self.plan.seed)
        timing = BusTiming()
        bus = TpwireBus(sim, timing, name="bus")
        slave = TpwireSlave(sim, node_id=1, timing=timing, memory_size=64)
        bus.attach_slave(slave)
        master = TpwireMaster(sim, bus, max_retries=8)
        arm_plan(sim, self.plan, {"bus": bus})
        spec = self.plan.of_kind(self.kind)[0]
        base = 0x10
        log: list = []
        state = {"completed": 0, "round_attempts": [], "integrity_retries": 0}

        def driver():
            for round_no in range(self.n_rounds):
                payload = bytes(
                    (round_no * 31 + i * 7 + 1) & 0xFF
                    for i in range(self.payload_len)
                )
                attempts = 0
                while attempts < 20:
                    attempts += 1
                    try:
                        yield master.run_op(
                            master.op_write_bytes(1, base, payload),
                            name=f"w{round_no}",
                        )
                        got = yield master.run_op(
                            master.op_read_bytes(1, base, len(payload)),
                            name=f"r{round_no}",
                        )
                    except (BusError, SlaveError):
                        continue
                    if bytes(got) == payload:
                        state["completed"] += 1
                        state["round_attempts"].append(attempts)
                        log.append((round_no, attempts, round(sim.now, 9)))
                        break
                    state["integrity_retries"] += 1

        sim.spawn(driver(), name="chaos-driver")
        sim.run(until=30.0)

        model = bus.error_model
        corrupted = (
            (model.corrupted_tx + model.corrupted_rx) if model is not None else 0
        )
        completions_after = [t for (_r, _a, t) in log if t >= spec.until]
        recovery = (
            (min(completions_after) - spec.until) if completions_after else 0.0
        )
        last_payload = bytes(
            ((self.n_rounds - 1) * 31 + i * 7 + 1) & 0xFF
            for i in range(self.payload_len)
        )
        invariants = {
            "all_rounds_completed": state["completed"] == self.n_rounds,
            "data_integrity": bytes(
                slave.registers.memory[base:base + self.payload_len]
            ) == last_payload,
            "bounded_recovery": recovery <= self.recovery_budget,
            "fault_observed": corrupted > 0 or master.retries > 0,
            "noise_cleared": model is None or (model.p_tx == 0.0
                                               and model.p_rx == 0.0),
        }
        overhead = {
            "bus_cycles": bus.cycles,
            "master_retries": master.retries,
            "crc_errors": bus.crc_errors,
            "timeouts": bus.timeouts,
            "corrupted_frames": corrupted,
            "integrity_retries": state["integrity_retries"],
        }
        details = {
            "round_attempts": list(state["round_attempts"]),
            "window": [spec.at, spec.until],
        }
        return self._result(recovery, overhead, invariants, details, log)


# -- 5. lease-expiry storm -----------------------------------------------------

class LeaseStormScenario(ChaosScenario):
    """Mass simultaneous lease expiry, with a protected minority.

    Hundreds of tuples are leased to die at the same instant; a handful
    are kept alive by a :class:`LeaseKeeper` heartbeat.  The storm must
    take out exactly the doomed set, leave the expiry heap drained of
    stale entries, and not wedge waiters: a consumer blocked across the
    storm must still be served by the first post-storm write.
    """

    kind = FaultKind.LEASE_STORM

    def __init__(self, plan=None, seed=0, recovery_budget=0.5,
                 storm_size=200, protected=5):
        super().__init__(plan, seed, recovery_budget)
        self.storm_size = storm_size
        self.protected = protected

    @classmethod
    def default_plan(cls, seed: int) -> FaultPlan:
        return single_fault_plan(
            FaultKind.LEASE_STORM, at=1.0, duration=0.0,
            scope="space", seed=seed,
        )

    def run(self) -> ChaosResult:
        sim = Simulator(seed=self.plan.seed)
        clock = SimClock(sim)
        space = TupleSpace(clock=clock, name="storm-space")
        keeper = LeaseKeeper(sim, check_interval=0.1, renew_fraction=0.5)
        spec = self.plan.of_kind(self.kind)[0]
        log: list = []
        state: dict = {"served_at": None, "swept": 0, "post_len": None,
                       "heap_after": None, "storm_marked": False}

        def seed_space():
            # Everything in the doomed set expires at exactly spec.at.
            remaining = spec.at - sim.now
            for index in range(self.storm_size):
                space.write(LindaTuple("storm", index), lease=remaining)
            for index in range(self.protected):
                lease = space.write(LindaTuple("precious", index), lease=0.4)
                keeper.manage(lease)
            log.append(("seeded", round(sim.now, 9),
                        self.storm_size, self.protected))

        def consumer():
            item = yield space_take(
                sim, space, TupleTemplate("post-storm", int)
            )
            state["served_at"] = sim.now
            log.append(("served", round(sim.now, 9), item.fields[1]))

        def post_storm_write():
            space.write(LindaTuple("post-storm", 1))

        def probe():
            state["swept"] = space.sweep_expired()
            state["post_len"] = len(space)
            state["heap_after"] = len(space._expiry_heap)
            log.append(("probe", round(sim.now, 9), state["swept"],
                        state["post_len"], state["heap_after"]))

        sim.at(0.1, seed_space)
        sim.spawn(consumer(), name="storm-consumer")
        # The injector marks the window so the run's event order carries
        # the fault boundary explicitly (workload-shaped fault: the
        # "injection" happened when the doomed leases were granted).
        CallbackInjector(
            sim, spec,
            on_begin=lambda: state.__setitem__("storm_marked", True),
        ).arm()
        sim.at(spec.until + 0.05, post_storm_write)
        sim.at(spec.until + 0.2, probe)
        sim.run(until=2.0)
        keeper.stop()

        survivors = sum(
            1 for index in range(self.protected)
            if space.read_if_exists(TupleTemplate("precious", index)) is not None
        )
        served = state["served_at"]
        recovery = (served - spec.until) if served is not None else float("inf")
        invariants = {
            "storm_expired_all": state["swept"] >= 0
            and space.take_if_exists(TupleTemplate("storm", int)) is None
            and space.stats.expirations >= self.storm_size,
            "protected_survived": survivors == self.protected
            and keeper.renewals > 0,
            "expiry_heap_drained": state["heap_after"] is not None
            and state["heap_after"] <= self.protected + keeper.renewals + 1,
            "post_storm_waiter_served": served is not None,
            "bounded_recovery": recovery <= self.recovery_budget,
            "fault_observed": state["storm_marked"],
        }
        overhead = {
            "expirations": space.stats.expirations,
            "renewals": keeper.renewals,
            "swept_by_probe": state["swept"],
            "heap_after": state["heap_after"] or 0,
        }
        details = {
            "survivors": survivors,
            "space_len_after": state["post_len"],
        }
        return self._result(recovery, overhead, invariants, details, log)


# -- 6. slow / stalled consumer ------------------------------------------------

class SlowConsumerScenario(ChaosScenario):
    """The single FFT consumer stalls for the fault window.

    Producers keep posting open-loop; work piles up in the space.  After
    the window the consumer's service time is restored and the backlog
    must drain: every job completes, and the last completion lands within
    the recovery budget of the window's end.
    """

    kind = FaultKind.SLOW_CONSUMER

    def __init__(self, plan=None, seed=0, recovery_budget=3.0,
                 n_jobs=24, interval=0.1, service_time=0.05):
        super().__init__(plan, seed, recovery_budget)
        self.n_jobs = n_jobs
        self.interval = interval
        self.service_time = service_time

    @classmethod
    def default_plan(cls, seed: int) -> FaultPlan:
        return single_fault_plan(
            FaultKind.SLOW_CONSUMER, at=0.5, duration=1.0,
            scope="consumer", seed=seed, stall=1.0,
        )

    def run(self) -> ChaosResult:
        sim = Simulator(seed=self.plan.seed)
        clock = SimClock(sim)
        space = TupleSpace(clock=clock, name="offload-space")
        consumer = ConsumerAgent(sim, space, 0, service_time=self.service_time)
        consumer.start()
        spec = self.plan.of_kind(self.kind)[0]
        stall = float(spec.param("stall", spec.duration))
        saved: dict = {}

        CallbackInjector(
            sim, spec,
            on_begin=lambda: (
                saved.__setitem__("service_time", consumer.service_time),
                setattr(consumer, "service_time", stall),
            ),
            on_end=lambda: setattr(
                consumer, "service_time", saved["service_time"]
            ),
        ).arm()

        posted: dict[int, float] = {}
        completed: dict[int, float] = {}
        log: list = []
        rng = sim.stream("chaos.jobs")

        def producer():
            for job_id in range(self.n_jobs):
                samples = [rng.uniform(-1.0, 1.0) for _ in range(8)]
                space.write(fft_request(job_id, samples))
                posted[job_id] = sim.now
                yield sim.timeout(self.interval)

        def collector():
            for job_id in range(self.n_jobs):
                yield space_take(sim, space, fft_result_template(job_id))
                completed[job_id] = sim.now
                log.append(("done", job_id, round(sim.now, 9)))

        sim.spawn(producer(), name="chaos-producer")
        sim.spawn(collector(), name="chaos-collector")
        sim.run(until=15.0)

        latencies = {
            job_id: completed[job_id] - posted[job_id]
            for job_id in completed
        }
        worst = max(latencies.values(), default=0.0)
        last_completion = max(completed.values(), default=0.0)
        recovery = max(0.0, last_completion - spec.until)
        backlog_empty = space.take_if_exists(fft_request_template()) is None
        invariants = {
            "all_jobs_completed": len(completed) == self.n_jobs,
            "backlog_drained": backlog_empty,
            "bounded_recovery": recovery <= self.recovery_budget,
            "fault_observed": worst > 3 * self.service_time,
            "stall_cleared": abs(consumer.service_time - self.service_time)
            < 1e-12,
        }
        overhead = {
            "jobs_served": consumer.jobs_served,
            "worst_latency": round(worst, 6),
        }
        details = {
            "last_completion": round(last_completion, 6),
            "window_end": spec.until,
        }
        return self._result(recovery, overhead, invariants, details, log)


#: Fault class -> scenario type; the chaos tests and bench iterate this.
SCENARIOS: dict[FaultKind, type] = {
    FaultKind.CRASH_RESTART: CrashRestartScenario,
    FaultKind.DROP_DELAY_DUP: DropDelayDupScenario,
    FaultKind.PARTITION: PartitionScenario,
    FaultKind.NOISY_BURST: NoisyBurstScenario,
    FaultKind.LEASE_STORM: LeaseStormScenario,
    FaultKind.SLOW_CONSUMER: SlowConsumerScenario,
}


def run_scenario(kind: FaultKind, seed: int = 0,
                 plan: Optional[FaultPlan] = None, **knobs) -> ChaosResult:
    """Build and run the registered scenario for ``kind``."""
    scenario_type = SCENARIOS.get(kind)
    if scenario_type is None:
        label = getattr(kind, "value", kind)
        raise SpaceError(f"no chaos scenario registered for {label}")
    return scenario_type(plan=plan, seed=seed, **knobs).run()
