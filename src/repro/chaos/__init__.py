"""Deterministic fault injection and resilience scenarios (``repro.chaos``).

Chaos engineering for the tuplespace testbed, built on the same two
determinism pillars as the rest of the repo — the DES clock and seeded
named random streams:

* :mod:`repro.chaos.plan` — :class:`FaultPlan` / :class:`FaultSpec`:
  schedulable fault descriptions (trigger time, duration, scope, seed)
  that serialise to JSON and fingerprint stably, so every chaos run is
  replayable bit-for-bit;
* :mod:`repro.chaos.injectors` — bind specs to DES-world targets
  (links, the tpwire bus and slaves) and flip the fault on/off as plain
  scheduled events;
* :mod:`repro.chaos.transport` — clock-window chaos for the synchronous
  client/server path (crash-restart of the front end; message drop /
  delay / duplication on the wire);
* :mod:`repro.chaos.scenarios` — one runnable scenario per fault class,
  each producing a :class:`~repro.chaos.scenarios.ChaosResult` with
  recovery time, message overhead, invariant verdicts and a replay
  fingerprint.

The client-side resilience patterns these scenarios exercise (backoff,
circuit breaker, idempotent writes, lease re-acquisition) live in
:mod:`repro.core.resilience`.
"""

from repro.chaos.errors import (
    ChaosError,
    FaultPlanError,
    InjectorError,
    InvariantViolation,
)
from repro.chaos.injectors import (
    BusNoiseInjector,
    CallbackInjector,
    Injector,
    LinkFaultInjector,
    SlaveCrashInjector,
    arm_plan,
    make_injector,
)
from repro.chaos.plan import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    fault,
    single_fault_plan,
)
from repro.chaos.scenarios import (
    SCENARIOS,
    ChaosResult,
    ChaosScenario,
    CrashRestartScenario,
    DropDelayDupScenario,
    LeaseStormScenario,
    NoisyBurstScenario,
    PartitionScenario,
    SlowConsumerScenario,
    run_scenario,
)
from repro.chaos.transport import ChaosConnection, ChaosHost

__all__ = [
    "ChaosError",
    "FaultPlanError",
    "InjectorError",
    "InvariantViolation",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "fault",
    "single_fault_plan",
    "Injector",
    "LinkFaultInjector",
    "BusNoiseInjector",
    "SlaveCrashInjector",
    "CallbackInjector",
    "make_injector",
    "arm_plan",
    "ChaosHost",
    "ChaosConnection",
    "ChaosResult",
    "ChaosScenario",
    "CrashRestartScenario",
    "DropDelayDupScenario",
    "PartitionScenario",
    "NoisyBurstScenario",
    "LeaseStormScenario",
    "SlowConsumerScenario",
    "SCENARIOS",
    "run_scenario",
]
