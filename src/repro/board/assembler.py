"""Assembler for the stack machine.

Syntax (one instruction per line)::

    ; comments start with ; or #
    start:              ; labels end with :
        PUSH 42
        CALL send_byte
        JMP start
    send_byte:
        OUT 1
        RET

Operands may be decimal, hex (0x...), a label, or ``label+offset``.
``.byte`` directives emit raw data (useful for embedded message buffers)::

    message: .byte 0x54 0x53 0x01
"""

from __future__ import annotations

from repro.board.cpu import INSTRUCTION_SIZE, Op, encode_program
from repro.board.errors import AssemblerError


#: Opcodes that take no operand in source form.
_NO_OPERAND = {
    Op.NOP, Op.HALT, Op.DROP, Op.DUP, Op.SWAP, Op.ADD, Op.SUB, Op.MUL,
    Op.DIVMOD, Op.AND, Op.OR, Op.XOR, Op.NOT, Op.LT, Op.EQ, Op.RET,
    Op.LOADI, Op.STOREI, Op.INC, Op.DEC,
}


def _strip(line: str) -> str:
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def assemble(source: str, origin: int = 0) -> tuple[bytes, dict[str, int]]:
    """Assemble ``source``; returns ``(blob, symbol_table)``.

    Addresses in the symbol table are absolute (``origin`` + offset).
    """
    # Pass 1: lay out instructions/data, record label addresses.
    items: list[tuple[str, object]] = []   # ("insn", (mnemonic, operand_text)) | ("data", bytes)
    labels: dict[str, int] = {}
    address = origin
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblerError(f"line {lineno}: bad label {label!r}")
            if label in labels:
                raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = address
            line = line.strip()
        if not line:
            continue
        parts = line.split()
        mnemonic = parts[0].upper()
        if mnemonic == ".BYTE":
            data = bytes(_parse_number(tok, lineno) & 0xFF for tok in parts[1:])
            if not data:
                raise AssemblerError(f"line {lineno}: .byte needs values")
            items.append(("data", data))
            address += len(data)
            continue
        try:
            op = Op[mnemonic]
        except KeyError:
            raise AssemblerError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
        if op in _NO_OPERAND:
            if len(parts) > 1:
                raise AssemblerError(
                    f"line {lineno}: {mnemonic} takes no operand"
                )
            operand_text = "0"
        else:
            if len(parts) != 2:
                raise AssemblerError(
                    f"line {lineno}: {mnemonic} needs exactly one operand"
                )
            operand_text = parts[1]
        items.append(("insn", (op, operand_text, lineno)))
        address += INSTRUCTION_SIZE

    # Pass 2: resolve operands.
    blob = bytearray()
    for kind, payload in items:
        if kind == "data":
            blob.extend(payload)
            continue
        op, operand_text, lineno = payload
        operand = _resolve(operand_text, labels, lineno)
        blob.extend(encode_program([(op, operand)]))
    return bytes(blob), labels


def _parse_number(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"line {lineno}: bad number {token!r}")


def _resolve(token: str, labels: dict[str, int], lineno: int) -> int:
    base = token
    offset = 0
    if "+" in token:
        base, _, tail = token.partition("+")
        offset = _parse_number(tail, lineno)
    if base in labels:
        return labels[base] + offset
    if offset:
        raise AssemblerError(f"line {lineno}: unknown label {base!r}")
    return _parse_number(token, lineno)
