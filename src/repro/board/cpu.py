"""A deterministic stack-machine instruction-set simulator.

Small by design — the paper's co-simulation needs a *client program
running under an ISS*, not a particular architecture.  The machine:

* byte-addressable memory (default 64 KiB), 32-bit words, little-endian;
* an operand stack and a call stack (both bounded);
* I/O ports with pluggable read/write handlers — the Theseus board maps
  its communication channels onto ports;
* a cycle counter, so the board can be clocked in simulated time.

Instructions are ``(opcode, operand)`` pairs stored in program memory as
5 bytes each (1 opcode + 4 operand).
"""

from __future__ import annotations

import enum
import struct
from typing import Callable, Optional

from repro.board.errors import CpuError


class Op(enum.IntEnum):
    NOP = 0x00
    HALT = 0x01
    PUSH = 0x02   #: push immediate
    DROP = 0x03
    DUP = 0x04
    SWAP = 0x05
    ADD = 0x06
    SUB = 0x07
    MUL = 0x08
    DIVMOD = 0x09  #: pops b,a; pushes a//b then a%b
    AND = 0x0A
    OR = 0x0B
    XOR = 0x0C
    NOT = 0x0D
    LT = 0x0E     #: pops b,a; pushes 1 if a<b else 0
    EQ = 0x0F
    LOAD = 0x10   #: push mem[operand] (byte)
    STORE = 0x11  #: mem[operand] = pop() & 0xFF
    LOADI = 0x12  #: addr=pop(); push mem[addr] (byte, indirect)
    STOREI = 0x13 #: addr=pop(); mem[addr] = pop() & 0xFF
    LOADW = 0x14  #: push 32-bit word at mem[operand]
    STOREW = 0x15 #: store 32-bit word at mem[operand]
    JMP = 0x16    #: pc = operand
    JZ = 0x17     #: if pop()==0: pc = operand
    JNZ = 0x18
    CALL = 0x19
    RET = 0x1A
    IN = 0x1B     #: push io_read(operand); -1 when nothing available
    OUT = 0x1C    #: io_write(operand, pop())
    INC = 0x1D
    DEC = 0x1E


#: Bytes per encoded instruction.
INSTRUCTION_SIZE = 5

_WORD = struct.Struct("<i")


def encode_program(program: list[tuple[int, int]]) -> bytes:
    """Encode ``(opcode, operand)`` pairs into loadable bytes."""
    blob = bytearray()
    for opcode, operand in program:
        blob.append(int(opcode) & 0xFF)
        blob.extend(_WORD.pack(operand))
    return bytes(blob)


class StackCpu:
    """The interpreter."""

    STACK_LIMIT = 1024
    CALL_LIMIT = 256

    def __init__(self, memory_size: int = 65536):
        if memory_size < INSTRUCTION_SIZE:
            raise CpuError("memory too small")
        self.memory = bytearray(memory_size)
        self.stack: list[int] = []
        self.calls: list[int] = []
        self.pc = 0
        self.halted = False
        self.cycles = 0
        self._io_read: dict[int, Callable[[], int]] = {}
        self._io_write: dict[int, Callable[[int], None]] = {}

    # -- setup ----------------------------------------------------------------

    def load(self, blob: bytes, at: int = 0) -> None:
        if at + len(blob) > len(self.memory):
            raise CpuError("program does not fit in memory")
        self.memory[at : at + len(blob)] = blob

    def load_program(self, program: list[tuple[int, int]], at: int = 0) -> None:
        self.load(encode_program(program), at)

    def map_port(
        self,
        port: int,
        read: Optional[Callable[[], int]] = None,
        write: Optional[Callable[[int], None]] = None,
    ) -> None:
        if read is not None:
            self._io_read[port] = read
        if write is not None:
            self._io_write[port] = write

    def reset(self) -> None:
        self.stack.clear()
        self.calls.clear()
        self.pc = 0
        self.halted = False

    # -- stack helpers ----------------------------------------------------------

    def _push(self, value: int) -> None:
        if len(self.stack) >= self.STACK_LIMIT:
            raise CpuError(f"stack overflow at pc={self.pc}")
        self.stack.append(int(value))

    def _pop(self) -> int:
        if not self.stack:
            raise CpuError(f"stack underflow at pc={self.pc}")
        return self.stack.pop()

    # -- execution ----------------------------------------------------------------

    def fetch(self) -> tuple[Op, int]:
        end = self.pc + INSTRUCTION_SIZE
        if end > len(self.memory):
            raise CpuError(f"pc {self.pc:#x} outside memory")
        opcode = self.memory[self.pc]
        (operand,) = _WORD.unpack(self.memory[self.pc + 1 : end])
        try:
            return Op(opcode), operand
        except ValueError:
            raise CpuError(f"illegal opcode {opcode:#04x} at pc={self.pc:#x}")

    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            return
        op, operand = self.fetch()
        next_pc = self.pc + INSTRUCTION_SIZE
        self.cycles += 1

        if op is Op.NOP:
            pass
        elif op is Op.HALT:
            self.halted = True
        elif op is Op.PUSH:
            self._push(operand)
        elif op is Op.DROP:
            self._pop()
        elif op is Op.DUP:
            value = self._pop()
            self._push(value)
            self._push(value)
        elif op is Op.SWAP:
            b, a = self._pop(), self._pop()
            self._push(b)
            self._push(a)
        elif op is Op.ADD:
            b, a = self._pop(), self._pop()
            self._push(a + b)
        elif op is Op.SUB:
            b, a = self._pop(), self._pop()
            self._push(a - b)
        elif op is Op.MUL:
            b, a = self._pop(), self._pop()
            self._push(a * b)
        elif op is Op.DIVMOD:
            b, a = self._pop(), self._pop()
            if b == 0:
                raise CpuError(f"division by zero at pc={self.pc}")
            self._push(a // b)
            self._push(a % b)
        elif op is Op.AND:
            b, a = self._pop(), self._pop()
            self._push(a & b)
        elif op is Op.OR:
            b, a = self._pop(), self._pop()
            self._push(a | b)
        elif op is Op.XOR:
            b, a = self._pop(), self._pop()
            self._push(a ^ b)
        elif op is Op.NOT:
            self._push(~self._pop())
        elif op is Op.LT:
            b, a = self._pop(), self._pop()
            self._push(1 if a < b else 0)
        elif op is Op.EQ:
            b, a = self._pop(), self._pop()
            self._push(1 if a == b else 0)
        elif op is Op.LOAD:
            self._push(self._read_byte(operand))
        elif op is Op.STORE:
            self._write_byte(operand, self._pop())
        elif op is Op.LOADI:
            self._push(self._read_byte(self._pop()))
        elif op is Op.STOREI:
            address = self._pop()
            self._write_byte(address, self._pop())
        elif op is Op.LOADW:
            self._push(self._read_word(operand))
        elif op is Op.STOREW:
            self._write_word(operand, self._pop())
        elif op is Op.JMP:
            next_pc = operand
        elif op is Op.JZ:
            if self._pop() == 0:
                next_pc = operand
        elif op is Op.JNZ:
            if self._pop() != 0:
                next_pc = operand
        elif op is Op.CALL:
            if len(self.calls) >= self.CALL_LIMIT:
                raise CpuError(f"call stack overflow at pc={self.pc}")
            self.calls.append(next_pc)
            next_pc = operand
        elif op is Op.RET:
            if not self.calls:
                raise CpuError(f"return without call at pc={self.pc}")
            next_pc = self.calls.pop()
        elif op is Op.IN:
            handler = self._io_read.get(operand)
            if handler is None:
                raise CpuError(f"no input port {operand}")
            self._push(handler())
        elif op is Op.OUT:
            handler = self._io_write.get(operand)
            if handler is None:
                raise CpuError(f"no output port {operand}")
            handler(self._pop() & 0xFF)
        elif op is Op.INC:
            self._push(self._pop() + 1)
        elif op is Op.DEC:
            self._push(self._pop() - 1)
        else:  # pragma: no cover - enum is exhaustive
            raise CpuError(f"unhandled opcode {op!r}")

        self.pc = next_pc

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until HALT or ``max_steps``; returns steps executed."""
        executed = 0
        while not self.halted and executed < max_steps:
            self.step()
            executed += 1
        return executed

    # -- memory access ---------------------------------------------------------------

    def _read_byte(self, address: int) -> int:
        if not 0 <= address < len(self.memory):
            raise CpuError(f"memory read at {address:#x} out of range")
        return self.memory[address]

    def _write_byte(self, address: int, value: int) -> None:
        if not 0 <= address < len(self.memory):
            raise CpuError(f"memory write at {address:#x} out of range")
        self.memory[address] = value & 0xFF

    def _read_word(self, address: int) -> int:
        if not 0 <= address <= len(self.memory) - 4:
            raise CpuError(f"word read at {address:#x} out of range")
        (value,) = _WORD.unpack(self.memory[address : address + 4])
        return value

    def _write_word(self, address: int, value: int) -> None:
        if not 0 <= address <= len(self.memory) - 4:
            raise CpuError(f"word write at {address:#x} out of range")
        # Wrap into the signed 32-bit range the encoding supports.
        self.memory[address : address + 4] = _WORD.pack(
            (value + 2**31) % 2**32 - 2**31
        )

    def __repr__(self) -> str:
        state = "halted" if self.halted else "running"
        return f"StackCpu(pc={self.pc:#x}, {state}, cycles={self.cycles})"
