"""gdb Remote-Serial-Protocol-style debug stub.

Sec. 4.3: the SC1 bridge reaches the client program "through an interface
based on the remote debugging features of gdb".  The stub reproduces RSP's
observable protocol — ``$<data>#<checksum>`` packet framing, '+'/'-'
acknowledgements, hex payloads — over any byte transport, against the
stack-machine ISS.

Supported commands (the subset a co-simulation driver needs):

=============  =========================================================
``?``          halt reason (``S05``)
``g``          read registers: pc, stack depth, top-of-stack, cycles
``m a,l``      read ``l`` memory bytes at ``a`` (hex)
``M a,l:...``  write memory
``s``          single step; replies ``S05``
``c``          continue until HALT (bounded); replies ``S05`` / ``W00``
``qC``/``qSupported``  identification queries
=============  =========================================================
"""

from __future__ import annotations

from typing import Optional

from repro.board.cpu import StackCpu
from repro.board.errors import RspError


def _checksum(data: bytes) -> int:
    return sum(data) % 256


def rsp_encode(payload: bytes) -> bytes:
    """Wrap a payload in RSP framing: ``$<payload>#<checksum>``."""
    return b"$" + payload + b"#" + f"{_checksum(payload):02x}".encode()


def rsp_decode(packet: bytes) -> bytes:
    """Unwrap and checksum-verify one framed packet."""
    if not packet.startswith(b"$"):
        raise RspError(f"packet does not start with $: {packet[:8]!r}")
    hash_index = packet.rfind(b"#")
    if hash_index < 0 or len(packet) < hash_index + 3:
        raise RspError("packet has no checksum")
    payload = packet[1:hash_index]
    try:
        declared = int(packet[hash_index + 1 : hash_index + 3], 16)
    except ValueError:
        raise RspError("bad checksum digits")
    if declared != _checksum(payload):
        raise RspError(
            f"checksum mismatch: declared {declared:02x}, "
            f"actual {_checksum(payload):02x}"
        )
    return payload


class PacketReader:
    """Incremental splitter of an RSP byte stream into packets and acks."""

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Returns complete items: b"+" / b"-" acks and framed packets."""
        self._buffer.extend(data)
        items = []
        while self._buffer:
            head = self._buffer[0:1]
            if head in (b"+", b"-"):
                items.append(bytes(head))
                del self._buffer[0]
                continue
            if head != b"$":
                # Resynchronise: drop noise before the next frame start.
                del self._buffer[0]
                continue
            hash_index = self._buffer.find(b"#")
            if hash_index < 0 or len(self._buffer) < hash_index + 3:
                break
            items.append(bytes(self._buffer[: hash_index + 3]))
            del self._buffer[: hash_index + 3]
        return items


class GdbStub:
    """Server side: executes RSP commands against a CPU.

    ``handle_packet(payload) -> reply payload`` is transport-independent;
    :meth:`feed` adapts a byte stream (returning the bytes to send back,
    acks included).
    """

    #: Upper bound on instructions executed by one ``c`` command.
    CONTINUE_BUDGET = 1_000_000

    def __init__(self, cpu: StackCpu):
        self.cpu = cpu
        self._reader = PacketReader()
        self.packets_handled = 0

    # -- byte-stream adapter ---------------------------------------------------

    def feed(self, data: bytes) -> bytes:
        out = bytearray()
        for item in self._reader.feed(data):
            if item in (b"+", b"-"):
                continue  # we do not retransmit; acks are informational
            try:
                payload = rsp_decode(item)
            except RspError:
                out.extend(b"-")
                continue
            out.extend(b"+")
            reply = self.handle_packet(payload)
            out.extend(rsp_encode(reply))
        return bytes(out)

    # -- command dispatch ----------------------------------------------------------

    def handle_packet(self, payload: bytes) -> bytes:
        self.packets_handled += 1
        if not payload:
            return b""
        command = payload[0:1]
        rest = payload[1:]
        if command == b"?":
            return b"S05"
        if command == b"g":
            return self._read_registers()
        if command == b"m":
            return self._read_memory(rest)
        if command == b"M":
            return self._write_memory(rest)
        if command == b"s":
            self.cpu.step()
            return b"S05"
        if command == b"c":
            return self._continue()
        if payload.startswith(b"qSupported"):
            return b"PacketSize=4096"
        if payload == b"qC":
            return b"QC01"
        return b""  # unsupported -> empty reply, per RSP

    def _read_registers(self) -> bytes:
        cpu = self.cpu
        top = cpu.stack[-1] if cpu.stack else 0
        registers = [cpu.pc, len(cpu.stack), top & 0xFFFFFFFF, cpu.cycles]
        return "".join(f"{value % (1 << 32):08x}" for value in registers).encode()

    def _read_memory(self, args: bytes) -> bytes:
        try:
            address_text, length_text = args.split(b",")
            address = int(address_text, 16)
            length = int(length_text, 16)
        except ValueError:
            return b"E01"
        if address < 0 or address + length > len(self.cpu.memory):
            return b"E02"
        return self.cpu.memory[address : address + length].hex().encode()

    def _write_memory(self, args: bytes) -> bytes:
        try:
            location, data_text = args.split(b":")
            address_text, length_text = location.split(b",")
            address = int(address_text, 16)
            length = int(length_text, 16)
            data = bytes.fromhex(data_text.decode())
        except ValueError:
            return b"E01"
        if len(data) != length:
            return b"E03"
        if address < 0 or address + length > len(self.cpu.memory):
            return b"E02"
        self.cpu.memory[address : address + length] = data
        return b"OK"

    def _continue(self) -> bytes:
        executed = self.cpu.run(max_steps=self.CONTINUE_BUDGET)
        if self.cpu.halted:
            return b"W00"  # exited
        if executed >= self.CONTINUE_BUDGET:
            return b"S02"  # interrupted (budget)
        return b"S05"


class GdbClient:
    """Client side: issues RSP commands to a stub over direct calls.

    Models the SC1 side of the paper's gdb link; a byte-transport variant
    simply routes :meth:`GdbStub.feed` through a channel.
    """

    def __init__(self, stub: GdbStub):
        self.stub = stub

    def _command(self, payload: bytes) -> bytes:
        return self.stub.handle_packet(payload)

    def halt_reason(self) -> bytes:
        return self._command(b"?")

    def read_registers(self) -> dict:
        raw = self._command(b"g").decode()
        values = [int(raw[i : i + 8], 16) for i in range(0, len(raw), 8)]
        return {
            "pc": values[0],
            "stack_depth": values[1],
            "top": values[2],
            "cycles": values[3],
        }

    def read_memory(self, address: int, length: int) -> bytes:
        reply = self._command(f"m{address:x},{length:x}".encode())
        if reply.startswith(b"E"):
            raise RspError(f"memory read failed: {reply.decode()}")
        return bytes.fromhex(reply.decode())

    def write_memory(self, address: int, data: bytes) -> None:
        packet = f"M{address:x},{len(data):x}:".encode() + data.hex().encode()
        reply = self._command(packet)
        if reply != b"OK":
            raise RspError(f"memory write failed: {reply.decode()}")

    def step(self) -> bytes:
        return self._command(b"s")

    def cont(self) -> bytes:
        return self._command(b"c")
