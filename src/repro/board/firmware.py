"""Canned firmware programs for the Theseus board.

The paper's client is a C++ program cross-built for the board; here the
"compiled client" is stack-machine assembly.  The interesting program is
:func:`space_client_program` — the embedded side of one space operation:
it streams a pre-marshalled wire-protocol request out of the comm port,
then receives the response *by parsing the protocol header* (magic, type,
request id, body length) to know how many bytes to expect.  That is, the
board genuinely speaks the framing layer of
:mod:`repro.core.protocol`.
"""

from __future__ import annotations

from repro.board.assembler import assemble


def echo_program(n_bytes: int) -> tuple[bytes, dict]:
    """Echo ``n_bytes`` from the RX port back out of the TX port, then halt."""
    if n_bytes < 1:
        raise ValueError("need at least one byte to echo")
    source = f"""
    start:
        PUSH 0
        STOREW count
    loop:
        LOADW count
        PUSH {n_bytes}
        LT
        JZ done
    wait:
        IN 3
        JZ wait
        IN 2
        OUT 1
        LOADW count
        INC
        STOREW count
        JMP loop
    done:
        HALT
    count: .byte 0 0 0 0
    """
    return assemble(source)


def send_buffer_program(data: bytes) -> tuple[bytes, dict]:
    """Stream an embedded data buffer out of the TX port, then halt."""
    if not data:
        raise ValueError("buffer must be non-empty")
    byte_list = " ".join(str(b) for b in data)
    source = f"""
    start:
        PUSH 0
        STOREW idx
    loop:
        LOADW idx
        PUSH {len(data)}
        LT
        JZ done
        LOADW idx
        PUSH buffer
        ADD
        LOADI
        OUT 1
        LOADW idx
        INC
        STOREW idx
        JMP loop
    done:
        HALT
    idx: .byte 0 0 0 0
    buffer: .byte {byte_list}
    """
    return assemble(source)


#: Size of the wire-protocol header the firmware parses (see
#: :mod:`repro.core.protocol`): magic(2) + type(1) + request_id(4) + len(4).
PROTOCOL_HEADER_SIZE = 11


def space_client_program(request: bytes, max_response: int = 512) -> tuple[bytes, dict]:
    """One space operation from the board's point of view.

    Sends the pre-marshalled ``request`` bytes, then receives a complete
    response frame: the first 11 bytes are the protocol header, whose
    big-endian body length tells the firmware how many more bytes to
    read.  The full response lands at symbol ``response``; the total
    response length at symbol ``total``.
    """
    if not request:
        raise ValueError("request must be non-empty")
    if max_response < PROTOCOL_HEADER_SIZE:
        raise ValueError("max_response smaller than a protocol header")
    request_bytes = " ".join(str(b) for b in request)
    response_zeros = " ".join(["0"] * max_response)
    source = f"""
    start:
        PUSH 0
        STOREW idx
    send_loop:
        LOADW idx
        PUSH {len(request)}
        LT
        JZ recv_init
        LOADW idx
        PUSH request
        ADD
        LOADI
        OUT 1
        LOADW idx
        INC
        STOREW idx
        JMP send_loop

    recv_init:
        PUSH 0
        STOREW idx
        PUSH {PROTOCOL_HEADER_SIZE}
        STOREW total
    recv_loop:
        ; once the header is complete, decode the body length
        LOADW idx
        PUSH {PROTOCOL_HEADER_SIZE}
        EQ
        JZ after_header
        CALL decode_length
    after_header:
        LOADW idx
        LOADW total
        LT
        JZ done
    wait:
        IN 3
        JZ wait
        IN 2
        LOADW idx
        PUSH response
        ADD
        STOREI
        LOADW idx
        INC
        STOREW idx
        JMP recv_loop

    decode_length:
        ; total = header_size + big-endian length at response[7..10]
        LOAD response+7
        PUSH 16777216
        MUL
        LOAD response+8
        PUSH 65536
        MUL
        ADD
        LOAD response+9
        PUSH 256
        MUL
        ADD
        LOAD response+10
        ADD
        PUSH {PROTOCOL_HEADER_SIZE}
        ADD
        STOREW total
        RET

    done:
        HALT
    idx: .byte 0 0 0 0
    total: .byte 0 0 0 0
    request: .byte {request_bytes}
    response: .byte {response_zeros}
    """
    return assemble(source)


def checksum_program(data: bytes) -> tuple[bytes, dict]:
    """Sum an embedded buffer into symbol ``result`` (gdb-stub demos)."""
    if not data:
        raise ValueError("buffer must be non-empty")
    byte_list = " ".join(str(b) for b in data)
    source = f"""
    start:
        PUSH 0
        STOREW acc
        PUSH 0
        STOREW idx
    loop:
        LOADW idx
        PUSH {len(data)}
        LT
        JZ done
        LOADW acc
        LOADW idx
        PUSH buffer
        ADD
        LOADI
        ADD
        STOREW acc
        LOADW idx
        INC
        STOREW idx
        JMP loop
    done:
        LOADW acc
        STOREW result
        HALT
    acc: .byte 0 0 0 0
    idx: .byte 0 0 0 0
    result: .byte 0 0 0 0
    buffer: .byte {byte_list}
    """
    return assemble(source)
