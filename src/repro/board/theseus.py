"""The Theseus board: CPU + clock + communication ports.

Wires the stack-machine ISS into the discrete-event world: the CPU
executes ``instructions_per_second`` in simulated time (stepped in
batches), and its I/O ports connect to the SC1 bridge's shared-memory
channels:

=====  ==============================================================
port   function
=====  ==============================================================
0      console: bytes written accumulate in :attr:`console_output`
1      comm TX: byte towards the bus (SC1 ``to_bus`` channel)
2      comm RX: next byte from the bus, or -1 when none is pending
3      comm RX available count
=====  ==============================================================
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.board.cpu import StackCpu
from repro.board.errors import BridgeNotConnectedError
from repro.board.gdb_stub import GdbStub


class TheseusBoard:
    """A board running firmware under simulated time."""

    CONSOLE_PORT = 0
    TX_PORT = 1
    RX_PORT = 2
    RX_AVAIL_PORT = 3

    def __init__(
        self,
        sim,
        instructions_per_second: float = 100_000.0,
        batch_size: int = 200,
        memory_size: int = 65536,
        name: str = "theseus",
    ):
        if instructions_per_second <= 0:
            raise ValueError("instruction rate must be positive")
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self.sim = sim
        self.ips = instructions_per_second
        self.batch_size = batch_size
        self.name = name
        self.cpu = StackCpu(memory_size)
        self.stub = GdbStub(self.cpu)
        self.console_output = bytearray()
        self._rx_buffer = bytearray()
        self._tx_channel = None
        self._process = None
        self.cpu.map_port(self.CONSOLE_PORT, write=self._console_write)
        self.cpu.map_port(self.TX_PORT, write=self._tx_write)
        self.cpu.map_port(self.RX_PORT, read=self._rx_read)
        self.cpu.map_port(self.RX_AVAIL_PORT, read=self._rx_avail)

    # -- communication wiring ------------------------------------------------

    def connect_bridge(self, bridge) -> None:
        """Wire ports 1/2 to a :class:`~repro.hw.bridge.ClientBridge`."""
        self._tx_channel = bridge.to_bus
        bridge.from_bus  # noqa: B018 - assert the attribute exists early
        self._rx_source = bridge.from_bus
        self._rx_pump = self.sim.spawn(self._pump_rx(), name=f"{self.name}.rx")

    def _pump_rx(self) -> Generator:
        while True:
            yield self._rx_source.wait_readable()
            self._rx_buffer.extend(self._rx_source.read())

    def _console_write(self, value: int) -> None:
        self.console_output.append(value)

    def _tx_write(self, value: int) -> None:
        if self._tx_channel is None:
            raise BridgeNotConnectedError(
                f"{self.name}: TX port used before connect_bridge"
            )
        self._tx_channel.write(bytes([value]))

    def _rx_read(self) -> int:
        if not self._rx_buffer:
            return -1
        value = self._rx_buffer[0]
        del self._rx_buffer[0]
        return value

    def _rx_avail(self) -> int:
        return len(self._rx_buffer)

    # -- firmware loading / execution ---------------------------------------------

    def load_firmware(self, blob: bytes, at: int = 0) -> None:
        self.cpu.load(blob, at)

    def start(self):
        """Run the CPU under simulated time until it halts."""
        if self._process is None:
            self._process = self.sim.spawn(self._run(), name=f"{self.name}.cpu")
        return self._process

    def _run(self) -> Generator:
        batch_time = self.batch_size / self.ips
        while not self.cpu.halted:
            for _ in range(self.batch_size):
                if self.cpu.halted:
                    break
                self.cpu.step()
            yield self.sim.timeout(batch_time)

    @property
    def halted(self) -> bool:
        return self.cpu.halted
