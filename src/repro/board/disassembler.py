"""Disassembler for the stack machine.

Completes the toolchain: the gdb-side of a co-simulation can read program
memory over the RSP stub and render it as the assembly the firmware was
written in — the listing view a debugger front-end shows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.board.assembler import _NO_OPERAND
from repro.board.cpu import INSTRUCTION_SIZE, Op, _WORD


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    address: int
    op: Op
    operand: int

    def format(self, labels: dict[int, str] | None = None) -> str:
        mnemonic = self.op.name
        if self.op in _NO_OPERAND:
            text = mnemonic
        elif labels and self.operand in labels:
            text = f"{mnemonic} {labels[self.operand]}"
        else:
            text = f"{mnemonic} {self.operand}"
        return f"{self.address:#06x}: {text}"


def decode_one(memory: bytes, address: int) -> Instruction:
    """Decode the instruction at ``address``; raises on illegal opcodes."""
    end = address + INSTRUCTION_SIZE
    if address < 0 or end > len(memory):
        raise ValueError(f"address {address:#x} outside memory")
    opcode = memory[address]
    (operand,) = _WORD.unpack(memory[address + 1 : end])
    try:
        op = Op(opcode)
    except ValueError:
        raise ValueError(f"illegal opcode {opcode:#04x} at {address:#x}")
    return Instruction(address, op, operand)


def disassemble(
    memory: bytes,
    start: int = 0,
    count: int | None = None,
    stop_at_halt: bool = True,
) -> list[Instruction]:
    """Decode a linear run of instructions.

    Stops at the first HALT (``stop_at_halt``), after ``count``
    instructions, or at the first illegal opcode (data sections follow
    code in assembled firmware images).
    """
    out: list[Instruction] = []
    address = start
    while address + INSTRUCTION_SIZE <= len(memory):
        if count is not None and len(out) >= count:
            break
        try:
            instruction = decode_one(memory, address)
        except ValueError:
            break
        out.append(instruction)
        if stop_at_halt and instruction.op is Op.HALT:
            break
        address += INSTRUCTION_SIZE
    return out


def listing(
    memory: bytes,
    symbols: dict[str, int] | None = None,
    start: int = 0,
    count: int | None = None,
) -> str:
    """Human-readable listing with label annotations."""
    by_address = {}
    if symbols:
        by_address = {address: name for name, address in symbols.items()}
    lines = []
    for instruction in disassemble(memory, start, count):
        label = by_address.get(instruction.address)
        if label is not None:
            lines.append(f"{label}:")
        lines.append("    " + instruction.format(by_address))
    return "\n".join(lines)
