"""Error hierarchy of the embedded-board model.

:class:`BridgeNotConnectedError` subclasses :class:`RuntimeError` so
pre-hierarchy callers catching ``RuntimeError`` keep working.
"""


class BoardError(Exception):
    """Base class for embedded-board model errors."""


class BridgeNotConnectedError(BoardError, RuntimeError):
    """A board port was used before ``connect_bridge`` wired it up."""


class CpuError(BoardError):
    """Illegal instruction, stack fault or memory fault."""


class AssemblerError(BoardError):
    """Bad mnemonic, unknown label or malformed line."""


class RspError(BoardError):
    """Malformed RSP packet or checksum failure."""
