"""Error hierarchy of the embedded-board model.

:class:`BridgeNotConnectedError` subclasses :class:`RuntimeError` so
pre-hierarchy callers catching ``RuntimeError`` keep working.
"""


class BoardError(Exception):
    """Base class for embedded-board model errors."""


class BridgeNotConnectedError(BoardError, RuntimeError):
    """A board port was used before ``connect_bridge`` wired it up."""
