"""Theseus board model: a tiny CPU, its debug stub and its firmware.

The paper's client runs as C++ on an Exor Theseus board, co-simulated
through "an interface based on the remote debugging features of gdb"
(Sec. 4.3) — i.e. the client executes on an instruction-set simulator that
the SC1 bridge controls over gdb's Remote Serial Protocol.

The analog here:

* :mod:`repro.board.cpu` — a deterministic stack-machine ISS with
  memory-mapped I/O ports (console, comm TX/RX);
* :mod:`repro.board.assembler` — a small assembler so firmware is written
  as readable source, not hand-coded tuples;
* :mod:`repro.board.gdb_stub` — an RSP-style debug stub (``$...#xx``
  packet framing, checksums, ``m``/``M``/``g``/``s``/``c`` commands) plus
  a matching client, standing in for gdb's remote protocol;
* :mod:`repro.board.theseus` — the board: CPU clocked in simulation time,
  I/O ports wired to the SC1 bridge's shared-memory channels;
* :mod:`repro.board.firmware` — canned client programs (byte pumps, the
  request/response space client loop).
"""

from repro.board.cpu import StackCpu, CpuError, Op
from repro.board.errors import BoardError, BridgeNotConnectedError
from repro.board.assembler import assemble, AssemblerError
from repro.board.gdb_stub import GdbStub, GdbClient, rsp_encode, rsp_decode
from repro.board.theseus import TheseusBoard
from repro.board import firmware

__all__ = [
    "StackCpu",
    "BoardError",
    "BridgeNotConnectedError",
    "CpuError",
    "Op",
    "assemble",
    "AssemblerError",
    "GdbStub",
    "GdbClient",
    "rsp_encode",
    "rsp_decode",
    "TheseusBoard",
    "firmware",
]
