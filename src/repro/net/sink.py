"""Receiving agents with statistics (the paper's "Receiver" nodes)."""

from __future__ import annotations

from repro.des.monitor import RateMonitor, TallyMonitor
from repro.net.agent import NetAgent
from repro.net.packet import Packet


class SinkAgent(NetAgent):
    """Counts received packets/bytes and records end-to-end latency."""

    def __init__(self, sim, name: str = "sink"):
        super().__init__(sim, name)
        self.received_packets = 0
        self.received_bytes = 0
        self.latency = TallyMonitor(name=f"{name}.latency")
        self.throughput = RateMonitor(sim, name=f"{name}.throughput")
        self.first_rx_time = None
        self.last_rx_time = None

    def recv(self, packet: Packet) -> None:
        now = self.sim.now
        self.received_packets += 1
        self.received_bytes += packet.size
        self.latency.observe(now - packet.created_at)
        self.throughput.tick(packet.size)
        if self.first_rx_time is None:
            self.first_rx_time = now
        self.last_rx_time = now

    @property
    def goodput_bytes_per_s(self) -> float:
        """Bytes/s between the first and last reception."""
        if (
            self.first_rx_time is None
            or self.last_rx_time is None
            or self.last_rx_time <= self.first_rx_time
        ):
            return float("nan")
        return self.received_bytes / (self.last_rx_time - self.first_rx_time)
