"""Protocol agents (the NS-2 ``Agent`` analog).

An agent lives on a node, builds packets for the traffic its application
(or traffic generator) asks it to send, and handles packets delivered to
its node/port.  The TpWIRE agent of the paper is implemented in
:mod:`repro.net.tpwire_agent` on top of this base class.
"""

from __future__ import annotations

from typing import Optional

from repro.net.node import Node
from repro.net.errors import AgentConfigError, NoRouteError
from repro.net.packet import Packet


class NetAgent:
    """Base agent: addressing, default send path over node links."""

    #: packet kind used by ``send_payload`` (subclasses override)
    packet_kind = "data"

    def __init__(self, sim, name: str = ""):
        self.sim = sim
        self.name = name or type(self).__name__
        self.node: Optional[Node] = None
        self.port: int = 0
        self.peer_node: Optional[Node] = None
        self.peer_port: int = 0
        self.sent_packets = 0
        self.sent_bytes = 0

    def connect(self, peer_node: Node, peer_port: int = 0) -> None:
        """Set the default destination (NS-2 ``connect``)."""
        self.peer_node = peer_node
        self.peer_port = peer_port

    # -- sending -----------------------------------------------------------

    def send_payload(self, size: int, payload=None, **headers) -> Optional[Packet]:
        """Build and send a packet of ``size`` bytes to the connected peer.

        Traffic generators call this.  Returns the packet, or ``None`` if
        the agent is not attached/connected (misconfiguration raises).
        """
        if self.node is None:
            raise AgentConfigError(f"agent {self.name} is not attached to a node")
        if self.peer_node is None:
            raise AgentConfigError(f"agent {self.name} is not connected to a peer")
        packet = Packet(
            self.packet_kind,
            size,
            src=self.node.name,
            dst=self.peer_node.name,
            payload=payload,
            created_at=self.sim.now,
            port=self.peer_port,
            **headers,
        )
        self.transmit(packet)
        self.sent_packets += 1
        self.sent_bytes += size
        return packet

    def transmit(self, packet: Packet) -> None:
        """Push a packet towards its destination over the node's link."""
        link = self.node.link_to(self.peer_node)
        if link is None:
            raise NoRouteError(
                f"no link from {self.node.name} to {self.peer_node.name}"
            )
        link.send(packet)

    # -- receiving -----------------------------------------------------------

    def recv(self, packet: Packet) -> None:
        """Handle a packet delivered to this agent (override)."""


class LoopbackAgent(NetAgent):
    """Agent whose transmissions are delivered straight back to itself.

    Needs no node or peer; used in unit tests to exercise traffic
    generators without building a topology.
    """

    def __init__(self, sim, name: str = "loopback"):
        super().__init__(sim, name)
        self.received: list[Packet] = []

    def send_payload(self, size: int, payload=None, **headers) -> Packet:
        packet = Packet(
            self.packet_kind, size, src=self.name, dst=self.name,
            payload=payload, created_at=self.sim.now, **headers,
        )
        self.transmit(packet)
        self.sent_packets += 1
        self.sent_bytes += size
        return packet

    def transmit(self, packet: Packet) -> None:
        self.sim.call_after(0.0, self.recv, packet)

    def recv(self, packet: Packet) -> None:
        self.received.append(packet)
