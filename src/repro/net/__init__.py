"""Network layer on top of the event kernel (NS-2 node/link/agent analog).

The paper models TpWIRE inside NS-2 by writing a new agent class and
connecting nodes with links carrying the TpWIRE bandwidth and real-time
parameters.  This package provides those NS-2 building blocks:

* :class:`~repro.net.packet.Packet` — typed packets with headers,
* :class:`~repro.net.node.Node` — addressable packet endpoints,
* :class:`~repro.net.link.Link` — bandwidth/delay links with drop-tail
  queues (plus a duplex convenience wrapper),
* :class:`~repro.net.agent.NetAgent` — protocol agents attached to nodes,
* traffic generators (:class:`~repro.net.traffic.CBRSource` — the paper's
  load generator — plus exponential on/off, Poisson, and trace-driven),
* :class:`~repro.net.sink.SinkAgent` — receivers with latency/throughput
  statistics,
* topology builders (chains/stars and the paper's daisy-chain configs).
"""

from repro.net.errors import NetError, AgentConfigError, NoRouteError
from repro.net.packet import Packet
from repro.net.node import Node
from repro.net.link import Link, DuplexLink
from repro.net.agent import NetAgent, LoopbackAgent
from repro.net.traffic import (
    CBRSource,
    ExponentialOnOffSource,
    PoissonSource,
    TraceDrivenSource,
)
from repro.net.sink import SinkAgent
from repro.net.topology import chain_topology, star_topology
from repro.net.tpwire_agent import TpwireAgent, TpwireSink

__all__ = [
    "NetError",
    "AgentConfigError",
    "NoRouteError",
    "Packet",
    "Node",
    "Link",
    "DuplexLink",
    "NetAgent",
    "LoopbackAgent",
    "CBRSource",
    "ExponentialOnOffSource",
    "PoissonSource",
    "TraceDrivenSource",
    "SinkAgent",
    "TpwireAgent",
    "TpwireSink",
    "chain_topology",
    "star_topology",
]
