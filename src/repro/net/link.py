"""Point-to-point links with bandwidth, delay and a drop-tail queue.

A :class:`Link` is simplex (NS-2 style); :class:`DuplexLink` bundles two.
Serialisation time is ``packet.bits / bandwidth_bps``; packets then
propagate for ``delay`` seconds.  The queue holds packets waiting for the
transmitter and drops arrivals beyond ``queue_limit`` (drop-tail).

Fault injection hooks in at :meth:`Link.send`: when ``link.fault`` is set
(a callable ``fault(link, packet)``), its verdict — ``None``/``"pass"``,
``"drop"``, ``"dup"``, ``"corrupt"`` or ``("delay", seconds)`` — is
applied before the packet reaches the queue.  Drop and corrupt events are
counted (``drops``/``corrupts``) and exported as ``repro.obs`` counters
when the simulator carries an observability context.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.des.monitor import RateMonitor, TimeWeightedMonitor
from repro.net.node import Node
from repro.net.packet import Packet


class Link:
    """Simplex link from ``src_node`` to ``dst_node``."""

    def __init__(
        self,
        sim,
        src_node: Node,
        dst_node: Node,
        bandwidth_bps: float,
        delay: float = 0.0,
        queue_limit: Optional[int] = None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.sim = sim
        self.src_node = src_node
        self.dst_node = dst_node
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.queue_limit = queue_limit
        self._queue: deque[Packet] = deque()
        self._busy = False
        self.throughput = RateMonitor(sim, name=f"{self}.throughput")
        self.queue_monitor = TimeWeightedMonitor(sim, name=f"{self}.qlen")
        self.drops = 0
        self.corrupts = 0
        self.fault_drops = 0
        self.fault_dups = 0
        self.fault_delays = 0
        #: Optional fault hook ``fault(link, packet) -> verdict`` consulted
        #: on every ``send``; see module docstring for verdicts.
        self.fault = None
        obs = getattr(sim, "obs", None)
        if obs is not None:
            self._ctr_drops = obs.metrics.counter(f"{self}.drops")
            self._ctr_corrupts = obs.metrics.counter(f"{self}.corrupts")
        else:
            self._ctr_drops = None
            self._ctr_corrupts = None
        src_node.register_link(self)

    # -- sending -----------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; ``False`` if dropped."""
        fault = self.fault
        if fault is not None:
            verdict = fault(self, packet)
            if verdict is not None and verdict != "pass":
                return self._apply_fault(verdict, packet)
        return self._enqueue(packet)

    def _apply_fault(self, verdict, packet: Packet) -> bool:
        action = verdict[0] if isinstance(verdict, tuple) else verdict
        if action == "drop":
            self.fault_drops += 1
            self._record_drop(packet)
            return False
        if action == "corrupt":
            self.corrupts += 1
            if self._ctr_corrupts is not None:
                self._ctr_corrupts.inc()
            packet.headers["corrupted"] = True
            return self._enqueue(packet)
        if action == "dup":
            self.fault_dups += 1
            accepted = self._enqueue(packet)
            self._enqueue(packet.copy())
            return accepted
        if action == "delay":
            self.fault_delays += 1
            self.sim.call_after(float(verdict[1]), self._enqueue, packet)
            return True
        raise ValueError(f"unknown link fault verdict {verdict!r}")

    def _record_drop(self, packet: Packet) -> None:
        self.drops += 1
        if self._ctr_drops is not None:
            self._ctr_drops.inc()
        if self.sim.trace_enabled:
            self.sim.trace.record(
                self.sim.now, "d", self.src_node.name, self.dst_node.name,
                packet.kind, packet.size, uid=packet.uid,
            )

    def _enqueue(self, packet: Packet) -> bool:
        if self.queue_limit is not None and len(self._queue) >= self.queue_limit:
            self._record_drop(packet)
            return False
        self._queue.append(packet)
        self.queue_monitor.set(len(self._queue))
        if self.sim.trace_enabled:
            self.sim.trace.record(
                self.sim.now, "+", self.src_node.name, self.dst_node.name,
                packet.kind, packet.size, uid=packet.uid,
            )
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue.popleft()
        self.queue_monitor.set(len(self._queue))
        tx_time = packet.bits / self.bandwidth_bps
        if self.sim.trace_enabled:
            self.sim.trace.record(
                self.sim.now, "-", self.src_node.name, self.dst_node.name,
                packet.kind, packet.size, uid=packet.uid,
            )
        self.sim.call_after(tx_time, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        self.throughput.tick(packet.size)
        packet.hops += 1
        self.sim.call_after(self.delay, self.dst_node.deliver, packet)
        self._start_next()

    # -- introspection -------------------------------------------------------

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._busy

    def serialization_time(self, size_bytes: int) -> float:
        return size_bytes * 8 / self.bandwidth_bps

    def __repr__(self) -> str:
        return f"Link({self.src_node.name}->{self.dst_node.name})"


class DuplexLink:
    """Two simplex links in opposite directions (NS-2 ``duplex-link``)."""

    def __init__(
        self,
        sim,
        node_a: Node,
        node_b: Node,
        bandwidth_bps: float,
        delay: float = 0.0,
        queue_limit: Optional[int] = None,
    ):
        self.forward = Link(sim, node_a, node_b, bandwidth_bps, delay, queue_limit)
        self.backward = Link(sim, node_b, node_a, bandwidth_bps, delay, queue_limit)

    def direction(self, src: Node) -> Link:
        if src is self.forward.src_node:
            return self.forward
        if src is self.backward.src_node:
            return self.backward
        raise ValueError(f"{src!r} is not an endpoint of this duplex link")
