"""Network nodes: named endpoints that host agents."""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet


class Node:
    """A named endpoint hosting agents on numbered ports.

    Incoming packets are delivered to the agent on the packet's
    destination port (header ``port``, default 0).
    """

    def __init__(self, sim, name: str):
        self.sim = sim
        self.name = name
        self._agents: dict[int, "NetAgent"] = {}
        self._links: list = []

    def attach(self, agent, port: int = 0) -> None:
        if port in self._agents:
            raise ValueError(f"node {self.name}: port {port} already in use")
        self._agents[port] = agent
        agent.node = self
        agent.port = port

    def detach(self, port: int) -> None:
        agent = self._agents.pop(port, None)
        if agent is not None:
            agent.node = None

    def agent_on(self, port: int):
        return self._agents.get(port)

    def register_link(self, link) -> None:
        self._links.append(link)

    def link_to(self, other: "Node"):
        """The first registered link whose far end is ``other``."""
        for link in self._links:
            if link.dst_node is other:
                return link
        return None

    def deliver(self, packet: Packet) -> None:
        """Hand an arriving packet to the agent on its destination port."""
        port = packet.headers.get("port", 0)
        agent = self._agents.get(port)
        if self.sim.trace_enabled:
            self.sim.trace.record(
                self.sim.now, "r", str(packet.src), self.name, packet.kind,
                packet.size, uid=packet.uid,
            )
        if agent is not None:
            agent.recv(packet)

    def __repr__(self) -> str:
        return f"Node({self.name!r}, agents={sorted(self._agents)})"
