"""Byte streams over packet links (the TCP-over-Ethernet alternative).

Sec. 4.3 weighs connecting the boards over "a TCP-like network" instead
of TpWIRE: technically easy (sockets), but it "may not be the best
choice" — it needs active devices (switches) and full cabling.  These
classes model that alternative so the trade-off can be *measured*:

* :class:`SwitchAgent` — an active switch: forwards packets between its
  star links by destination name;
* :class:`StreamAgent` — a TCP-ish endpoint: segments a byte stream into
  MSS-sized packets with per-packet protocol overhead, reassembles in
  order on the far side.

Loss/retransmission are not modelled (links are reliable here); the
relevant comparison dimensions are bandwidth, per-packet overhead and
infrastructure cost.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.agent import NetAgent
from repro.net.errors import NoRouteError
from repro.net.node import Node
from repro.net.packet import Packet

#: Ethernet + IP + TCP header bytes per segment.
TCP_OVERHEAD = 58

#: Default maximum segment size (Ethernet MTU 1500 - 40 IP/TCP).
DEFAULT_MSS = 1460


class SwitchAgent(NetAgent):
    """Active switching device at the hub of a star."""

    packet_kind = "tcp"

    def __init__(self, sim, name: str = "switch"):
        super().__init__(sim, name)
        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        self.unroutable = 0

    def recv(self, packet: Packet) -> None:
        destination = packet.headers.get("final_dst")
        target = None
        for link in self.node._links:
            if link.dst_node.name == destination:
                target = link
                break
        if target is None:
            self.unroutable += 1
            return
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        target.send(packet)


class StreamAgent(NetAgent):
    """Ordered byte-stream endpoint over a star of links."""

    packet_kind = "tcp"

    def __init__(
        self,
        sim,
        hub: Node,
        mss: int = DEFAULT_MSS,
        name: str = "stream",
    ):
        super().__init__(sim, name)
        if mss < 1:
            raise ValueError(f"mss must be >= 1, got {mss}")
        self.hub = hub
        self.mss = mss
        self.on_data: Optional[Callable[[str, bytes], None]] = None
        self.received_bytes = 0

    def send_stream(self, destination: str, data: bytes) -> int:
        """Segment ``data`` towards ``destination``; returns wire bytes."""
        if not data:
            raise ValueError("cannot send an empty stream chunk")
        link = self.node.link_to(self.hub)
        if link is None:
            raise NoRouteError(f"{self.name} has no uplink to the switch")
        wire_total = 0
        for offset in range(0, len(data), self.mss):
            chunk = data[offset : offset + self.mss]
            packet = Packet(
                self.packet_kind,
                len(chunk) + TCP_OVERHEAD,
                src=self.node.name,
                dst=destination,
                payload=chunk,
                created_at=self.sim.now,
                final_dst=destination,
            )
            link.send(packet)
            wire_total += packet.size
            self.sent_packets += 1
        self.sent_bytes += len(data)
        return wire_total

    def recv(self, packet: Packet) -> None:
        payload = packet.payload or b""
        self.received_bytes += len(payload)
        if self.on_data is not None:
            self.on_data(packet.src, payload)


def build_switched_star(
    sim,
    leaf_names: list[str],
    bandwidth_bps: float = 10_000_000.0,
    delay: float = 50e-6,
    mss: int = DEFAULT_MSS,
) -> tuple[SwitchAgent, dict[str, StreamAgent]]:
    """A switch plus one :class:`StreamAgent` per named leaf."""
    from repro.net.link import DuplexLink

    hub = Node(sim, "switch")
    switch = SwitchAgent(sim)
    hub.attach(switch)
    agents: dict[str, StreamAgent] = {}
    for name in leaf_names:
        leaf = Node(sim, name)
        DuplexLink(sim, hub, leaf, bandwidth_bps, delay)
        agent = StreamAgent(sim, hub, mss=mss, name=f"stream.{name}")
        leaf.attach(agent)
        agents[name] = agent
    return switch, agents
