"""Topology builders.

Generic chains and stars for the network layer; the TpWIRE daisy chain of
the paper (Figures 2, 6 and 7) has its own builder in
:mod:`repro.tpwire.bus` because its timing is bus-specific.
"""

from __future__ import annotations

from typing import Optional

from repro.net.link import DuplexLink
from repro.net.node import Node


def chain_topology(
    sim,
    n_nodes: int,
    bandwidth_bps: float,
    delay: float = 0.0,
    queue_limit: Optional[int] = None,
    name_prefix: str = "n",
) -> tuple[list[Node], list[DuplexLink]]:
    """``n_nodes`` nodes connected in a line with duplex links."""
    if n_nodes < 1:
        raise ValueError(f"need at least one node, got {n_nodes}")
    nodes = [Node(sim, f"{name_prefix}{i}") for i in range(n_nodes)]
    links = [
        DuplexLink(sim, a, b, bandwidth_bps, delay, queue_limit)
        for a, b in zip(nodes, nodes[1:])
    ]
    return nodes, links


def star_topology(
    sim,
    n_leaves: int,
    bandwidth_bps: float,
    delay: float = 0.0,
    queue_limit: Optional[int] = None,
    hub_name: str = "hub",
    leaf_prefix: str = "leaf",
) -> tuple[Node, list[Node], list[DuplexLink]]:
    """A hub with ``n_leaves`` leaves (the master/slave logical shape)."""
    if n_leaves < 1:
        raise ValueError(f"need at least one leaf, got {n_leaves}")
    hub = Node(sim, hub_name)
    leaves = [Node(sim, f"{leaf_prefix}{i}") for i in range(n_leaves)]
    links = [
        DuplexLink(sim, hub, leaf, bandwidth_bps, delay, queue_limit)
        for leaf in leaves
    ]
    return hub, leaves, links
