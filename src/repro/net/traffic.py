"""Traffic generators.

The paper plugs a Constant Bit Rate (CBR) generator onto a TpWIRE node to
load the bus (Section 5); NS-2 additionally offers exponential on/off and
Poisson sources, which we provide for the ablation benches.  A generator
drives any object exposing ``send_payload(size)`` — a network agent or a
TpWIRE endpoint.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence


class TrafficSource:
    """Common start/stop machinery for generators."""

    def __init__(self, sim, agent, name: str = ""):
        self.sim = sim
        self.agent = agent
        self.name = name or type(self).__name__
        self.running = False
        self.generated_bytes = 0
        self.generated_packets = 0
        self._next_event = None

    def start(self, at: Optional[float] = None) -> None:
        """Begin generating at time ``at`` (default: now)."""
        if self.running:
            return
        self.running = True
        when = self.sim.now if at is None else at
        self._next_event = self.sim.at(when, self._emit)

    def stop(self) -> None:
        self.running = False
        if self._next_event is not None:
            self.sim.cancel(self._next_event)
            self._next_event = None

    def _emit(self) -> None:
        if not self.running:
            return
        size = self._packet_size()
        if size > 0:
            self.agent.send_payload(size)
            self.generated_bytes += size
            self.generated_packets += 1
        gap = self._next_gap()
        if gap is None or math.isinf(gap):
            self.running = False
            return
        self._next_event = self.sim.after(gap, self._emit)

    # -- hooks ---------------------------------------------------------------

    def _packet_size(self) -> int:
        raise NotImplementedError

    def _next_gap(self) -> Optional[float]:
        raise NotImplementedError


class CBRSource(TrafficSource):
    """Constant bit rate: ``packet_size`` bytes every ``interval`` seconds.

    ``interval = packet_size / rate_bytes_per_s``.  With ``rate=0`` the
    source is silent (the Table 4 "CBR 0 B/s" row).
    """

    def __init__(
        self,
        sim,
        agent,
        rate_bytes_per_s: float,
        packet_size: int = 1,
        name: str = "cbr",
    ):
        super().__init__(sim, agent, name)
        if rate_bytes_per_s < 0:
            raise ValueError(f"rate must be >= 0, got {rate_bytes_per_s}")
        if packet_size < 1:
            raise ValueError(f"packet size must be >= 1, got {packet_size}")
        self.rate = rate_bytes_per_s
        self.packet_size = packet_size

    def start(self, at: Optional[float] = None) -> None:
        if self.rate == 0:
            return  # a zero-rate CBR never emits
        super().start(at)

    @property
    def interval(self) -> float:
        return self.packet_size / self.rate

    def _packet_size(self) -> int:
        return self.packet_size

    def _next_gap(self) -> float:
        return self.interval


class PoissonSource(TrafficSource):
    """Poisson arrivals: exponential gaps with the given mean rate."""

    def __init__(
        self,
        sim,
        agent,
        rate_packets_per_s: float,
        packet_size: int = 1,
        name: str = "poisson",
    ):
        super().__init__(sim, agent, name)
        if rate_packets_per_s <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate_packets_per_s
        self.packet_size = packet_size
        self._rng = sim.stream(f"traffic.{self.name}")

    def _packet_size(self) -> int:
        return self.packet_size

    def _next_gap(self) -> float:
        return self._rng.expovariate(self.rate)


class ExponentialOnOffSource(TrafficSource):
    """NS-2's Exponential On/Off source.

    During an ON period (exponential mean ``on_mean``) packets are sent at
    ``rate_bytes_per_s``; OFF periods (mean ``off_mean``) are silent.
    """

    def __init__(
        self,
        sim,
        agent,
        rate_bytes_per_s: float,
        packet_size: int = 1,
        on_mean: float = 1.0,
        off_mean: float = 1.0,
        name: str = "expoo",
    ):
        super().__init__(sim, agent, name)
        if rate_bytes_per_s <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate_bytes_per_s
        self.packet_size = packet_size
        self.on_mean = on_mean
        self.off_mean = off_mean
        self._rng = sim.stream(f"traffic.{self.name}")
        self._on_until = 0.0

    def start(self, at: Optional[float] = None) -> None:
        when = self.sim.now if at is None else at
        self._on_until = when + self._rng.expovariate(1.0 / self.on_mean)
        super().start(at)

    def _packet_size(self) -> int:
        return self.packet_size

    def _next_gap(self) -> float:
        gap = self.packet_size / self.rate
        if self.sim.now + gap <= self._on_until:
            return gap
        # Burst over: sleep through an OFF period, then start a new burst.
        off = self._rng.expovariate(1.0 / self.off_mean)
        self._on_until = (
            self.sim.now + gap + off
            + self._rng.expovariate(1.0 / self.on_mean)
        )
        return gap + off


class TraceDrivenSource(TrafficSource):
    """Replays a recorded schedule of ``(time, size)`` pairs."""

    def __init__(self, sim, agent, schedule: Sequence[tuple[float, int]], name: str = "trace"):
        super().__init__(sim, agent, name)
        self.schedule = sorted(schedule)
        self._index = 0

    def start(self, at: Optional[float] = None) -> None:
        if not self.schedule:
            return
        self.running = True
        first_time = max(self.schedule[0][0], self.sim.now)
        self._next_event = self.sim.at(first_time, self._emit)

    def _packet_size(self) -> int:
        return self.schedule[self._index][1]

    def _next_gap(self) -> Optional[float]:
        self._index += 1
        if self._index >= len(self.schedule):
            return None
        next_time = self.schedule[self._index][0]
        return max(0.0, next_time - self.sim.now)
