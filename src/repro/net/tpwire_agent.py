"""NS-2-style TpWIRE agents (the paper's ``TpWIRE Agent`` object).

The paper implements the TpWIRE protocol in NS-2 "by defining a new agent
object TpWIRE Agent; ... Agents build TX and RX packets and put them on
the link".  Here the agent wraps a :class:`TransportEndpoint`: traffic
generators call :meth:`TpwireAgent.send_payload` exactly as they would on
a plain network agent, the payload is segmented into link messages and
relayed by the master, and the receiving :class:`TpwireSink` records
latency and throughput — the instrumentation behind Figures 6 and 7.

These agents live in :mod:`repro.net` (not :mod:`repro.tpwire`) because
they marry a bus-layer endpoint to network-layer :class:`Packet`
bookkeeping: the layer DAG lets ``net`` build on ``tpwire``, never the
reverse.
"""

from __future__ import annotations

from typing import Optional

from repro.des.monitor import RateMonitor, TallyMonitor
from repro.net.packet import Packet
from repro.tpwire.errors import TpwireError
from repro.tpwire.transport import TransportEndpoint


class TpwireAgent:
    """Sending agent bound to a transport endpoint."""

    packet_kind = "tpwire-data"

    def __init__(self, sim, endpoint: TransportEndpoint, name: str = ""):
        self.sim = sim
        self.endpoint = endpoint
        self.name = name or f"agent{endpoint.node_id}"
        self.peer: Optional["TpwireSink"] = None
        self.sent_packets = 0
        self.sent_bytes = 0
        self.send_failures = 0

    def connect(self, peer: "TpwireSink") -> None:
        self.peer = peer

    def send_payload(self, size: int, payload=None) -> Optional[Packet]:
        """Send ``size`` application bytes to the connected peer."""
        if self.peer is None:
            raise TpwireError(f"{self.name} is not connected")
        if size < 1:
            raise TpwireError(f"payload size must be >= 1, got {size}")
        packet = Packet(
            self.packet_kind,
            size,
            src=str(self.endpoint.node_id),
            dst=str(self.peer.endpoint.node_id),
            payload=payload,
            created_at=self.sim.now,
        )
        data = bytes(size)  # content is irrelevant; length drives the bus
        accepted = self.endpoint.send(
            self.peer.endpoint.node_id, data, context=packet
        )
        if not accepted:
            self.send_failures += 1
            return None
        self.sent_packets += 1
        self.sent_bytes += size
        return packet


class TpwireSink:
    """Receiving agent: reconstructs packets, records latency/throughput."""

    def __init__(self, sim, endpoint: TransportEndpoint, name: str = ""):
        self.sim = sim
        self.endpoint = endpoint
        self.name = name or f"sink{endpoint.node_id}"
        self.received_packets = 0
        self.received_bytes = 0
        self.latency = TallyMonitor(name=f"{self.name}.latency")
        self.throughput = RateMonitor(sim, name=f"{self.name}.throughput")
        self.first_rx_time: Optional[float] = None
        self.last_rx_time: Optional[float] = None
        endpoint.on_data = self._on_data

    def _on_data(self, src: int, data: bytes, context) -> None:
        now = self.sim.now
        self.received_packets += 1
        self.received_bytes += len(data)
        self.throughput.tick(len(data))
        if isinstance(context, Packet):
            self.latency.observe(now - context.created_at)
        if self.first_rx_time is None:
            self.first_rx_time = now
        self.last_rx_time = now

    @property
    def goodput_bytes_per_s(self) -> float:
        if (
            self.first_rx_time is None
            or self.last_rx_time is None
            or self.last_rx_time <= self.first_rx_time
        ):
            return float("nan")
        return self.received_bytes / (self.last_rx_time - self.first_rx_time)
