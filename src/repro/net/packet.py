"""Packets exchanged by network agents."""

from __future__ import annotations

import itertools
from typing import Any, Optional

_uid_counter = itertools.count(1)


class Packet:
    """A network packet: kind, size, addressing and free-form headers.

    ``size`` is in bytes (NS-2 convention); serialization delay on a link
    is ``size * 8 / bandwidth_bps``.
    """

    __slots__ = (
        "uid",
        "kind",
        "size",
        "src",
        "dst",
        "payload",
        "headers",
        "created_at",
        "hops",
    )

    def __init__(
        self,
        kind: str,
        size: int,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        payload: Any = None,
        created_at: float = 0.0,
        **headers,
    ):
        if size < 0:
            raise ValueError(f"packet size must be >= 0, got {size}")
        self.uid = next(_uid_counter)
        self.kind = kind
        self.size = size
        self.src = src
        self.dst = dst
        self.payload = payload
        self.headers = headers
        self.created_at = created_at
        self.hops = 0

    @property
    def bits(self) -> int:
        return self.size * 8

    def copy(self) -> "Packet":
        """A fresh packet (new uid) with identical contents."""
        pkt = Packet(
            self.kind,
            self.size,
            self.src,
            self.dst,
            self.payload,
            self.created_at,
            **dict(self.headers),
        )
        pkt.hops = self.hops
        return pkt

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.uid} {self.kind} {self.size}B "
            f"{self.src}->{self.dst})"
        )
