"""Error hierarchy of the packet-level network simulator.

The misuse errors subclass :class:`RuntimeError` so pre-hierarchy
callers catching ``RuntimeError`` keep working.
"""


class NetError(Exception):
    """Base class for network-simulator errors."""


class AgentConfigError(NetError, RuntimeError):
    """An agent was used before being attached/connected (NS-2 misuse)."""


class NoRouteError(NetError, RuntimeError):
    """No link exists between the two nodes a packet must traverse."""
