"""Shared resources for processes: mutex-like resources, stores, containers.

These back the contention models: the bus line is a capacity-1
:class:`Resource` in the packet-level model, per-slave mailboxes are
:class:`Store` instances, DMA byte budgets are :class:`Container` levels.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.des.errors import SimulationError
from repro.des.process import Waitable


class Request(Waitable):
    """Waitable granted when the resource has a free slot."""

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority


class Resource:
    """A resource with ``capacity`` slots and a FIFO (or priority) queue."""

    def __init__(self, sim, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: list[Request] = []
        self._waiting: deque[Request] = deque()
        self._grant_seq = 0

    @property
    def in_use(self) -> int:
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Ask for a slot; yield the returned waitable to acquire."""
        req = Request(self, priority)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed(req)
        else:
            self._insert_waiting(req)
        return req

    def _insert_waiting(self, req: Request) -> None:
        # Stable priority order: lower priority value is served first.
        # Same-priority traffic (the common case) appends in O(1).
        waiting = self._waiting
        if not waiting or req.priority >= waiting[-1].priority:
            waiting.append(req)
            return
        index = len(waiting)
        for i, other in enumerate(waiting):
            if req.priority < other.priority:
                index = i
                break
        waiting.insert(index, req)

    def release(self, req: Request) -> None:
        """Return a previously-granted slot."""
        try:
            self._users.remove(req)
        except ValueError:
            raise SimulationError("release of a request that holds no slot")
        if self._waiting:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed(nxt)

    def cancel(self, req: Request) -> None:
        """Withdraw a queued request (no-op if already granted)."""
        try:
            self._waiting.remove(req)
        except ValueError:
            pass


class StoreGet(Waitable):
    pass


class StorePut(Waitable):
    pass


class Store:
    """FIFO buffer of items with optional capacity (like ``sc_fifo``)."""

    def __init__(self, sim, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque[StoreGet] = deque()
        self._putters: deque[tuple[StorePut, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list:
        return list(self._items)

    def put(self, item: Any) -> StorePut:
        """Waitable that succeeds when the item has been accepted."""
        op = StorePut(self.sim)
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            op.succeed(item)
            self._serve_getters()
        else:
            self._putters.append((op, item))
        return op

    def get(self) -> StoreGet:
        """Waitable that succeeds with the oldest item."""
        op = StoreGet(self.sim)
        self._getters.append(op)
        self._serve_getters()
        return op

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items and not self._getters:
            item = self._items.popleft()
            self._admit_putters()
            return True, item
        return False, None

    def _serve_getters(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            if getter.triggered:  # cancelled externally
                continue
            getter.succeed(self._items.popleft())
            self._admit_putters()

    def _admit_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            op, item = self._putters.popleft()
            self._items.append(item)
            op.succeed(item)


class Container:
    """A continuous level (e.g. a byte budget) with blocking get/put."""

    def __init__(self, sim, capacity: float = float("inf"), initial: float = 0.0):
        if initial < 0 or initial > capacity:
            raise SimulationError("initial level outside [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = initial
        self._getters: deque[tuple[Waitable, float]] = deque()
        self._putters: deque[tuple[Waitable, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Waitable:
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        op = Waitable(self.sim)
        self._putters.append((op, amount))
        self._settle()
        return op

    def get(self, amount: float) -> Waitable:
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        op = Waitable(self.sim)
        self._getters.append((op, amount))
        self._settle()
        return op

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                op, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    op.succeed(amount)
                    progress = True
            if self._getters:
                op, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    op.succeed(amount)
                    progress = True
