"""Deterministic, independent random streams.

Every stochastic component (a traffic source, the error-injection model,
jittered polling) draws from its own named stream, seeded from the master
seed and the component name.  Runs are therefore reproducible and adding a
new random component never perturbs the draws of existing ones — the
property NS-2 users get from its RNG substream API.
"""

from __future__ import annotations

import hashlib
import random


class StreamRegistry:
    """Factory and cache of named ``random.Random`` instances."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive_seed(name))
        return self._streams[name]

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(
            f"{self.master_seed}:{name}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big")

    def names(self) -> list[str]:
        return sorted(self._streams)

    def __contains__(self, name: str) -> bool:
        return name in self._streams
