"""Scheduled events.

An :class:`Event` is a callback bound to a simulation time.  Events are
totally ordered by ``(time, priority, seq)`` — the sequence number makes the
order of same-time, same-priority events deterministic (FIFO in scheduling
order), which NS-2 guarantees as well and which the TpWIRE model relies on
for reproducible frame interleaving.
"""

from __future__ import annotations

import enum
from typing import Any, Callable


class EventState(enum.Enum):
    """Lifecycle of a scheduled event."""

    PENDING = "pending"
    FIRED = "fired"
    CANCELLED = "cancelled"


class Event:
    """A callback scheduled at an absolute simulation time.

    Events are created through :meth:`repro.des.simulator.Simulator.at` /
    ``after`` rather than directly.  They compare by ``(time, priority,
    seq)`` so they can live in an ordered queue.
    """

    __slots__ = ("time", "priority", "seq", "sort_key", "fn", "args", "state")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        # Built once: the queues compare events on every push/pop, and a
        # property that allocates a fresh tuple per comparison dominates
        # the scheduler hot path.  time/priority/seq never change after
        # construction (cancellation is a state flip, not a re-key).
        self.sort_key = (time, priority, seq)
        self.fn = fn
        self.args = args
        self.state = EventState.PENDING

    def cancel(self) -> bool:
        """Cancel the event; returns ``True`` if it was still pending.

        Cancellation is lazy: the event stays in the queue but is skipped
        when popped, which keeps cancellation O(1).
        """
        if self.state is EventState.PENDING:
            self.state = EventState.CANCELLED
            return True
        return False

    @property
    def cancelled(self) -> bool:
        return self.state is EventState.CANCELLED

    @property
    def pending(self) -> bool:
        return self.state is EventState.PENDING

    def fire(self) -> None:
        """Run the callback.  Only the simulator should call this."""
        if self.state is not EventState.PENDING:
            return
        self.state = EventState.FIRED
        self.fn(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return (
            f"Event(t={self.time!r}, prio={self.priority}, seq={self.seq}, "
            f"fn={name}, state={self.state.value})"
        )
