"""Real-time scheduler mode.

The paper validates the NS-2 TpWIRE model against the physical bus by
running NS-2 with its *real-time scheduler*, which ties event execution to
wall-clock time.  :class:`RealTimeRunner` provides the same mode: events
fire no earlier than ``start + sim_time * scale`` on the wall clock.

For tests a fake clock (``clock``/``sleep`` injectables) keeps runs
instantaneous and deterministic.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Optional

from repro.des.simulator import Simulator


class RealTimeRunner:
    """Drive a :class:`Simulator` synchronised to a wall clock.

    Parameters
    ----------
    sim:
        The simulator to drive.
    scale:
        Wall-clock seconds per simulation time unit (1.0 = real time,
        0.1 = 10x faster than real time).
    max_drift:
        Largest tolerated lag (wall clock behind schedule) in seconds
        before :attr:`drift_exceeded` is flagged; the run continues, as
        NS-2 does, but the flag invalidates a timing-accurate measurement.
    clock / sleep:
        Injectable time sources for testing.
    """

    def __init__(
        self,
        sim: Simulator,
        scale: float = 1.0,
        max_drift: float = 0.05,
        clock: Callable[[], float] = _time.monotonic,
        sleep: Callable[[float], None] = _time.sleep,
    ):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.sim = sim
        self.scale = scale
        self.max_drift = max_drift
        self._clock = clock
        self._sleep = sleep
        self.drift_exceeded = False
        self.worst_drift = 0.0

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation, pacing each event to the wall clock."""
        start_wall = self._clock()
        start_sim = self.sim.now
        while self.sim.pending_events > 0:
            next_time = self.sim._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            target_wall = start_wall + (next_time - start_sim) * self.scale
            now_wall = self._clock()
            if now_wall < target_wall:
                self._sleep(target_wall - now_wall)
            else:
                drift = now_wall - target_wall
                if drift > self.worst_drift:
                    self.worst_drift = drift
                if drift > self.max_drift:
                    self.drift_exceeded = True
            self.sim.step()
        if until is not None and self.sim.now < until:
            self.sim._now = until
        return self.sim.now

    def wall_elapsed_for(self, sim_duration: float) -> float:
        """Wall-clock seconds a given simulated duration should take."""
        return sim_duration * self.scale
