"""Generator-based simulation processes and waitables.

A process is a Python generator that yields *waitables*; the kernel resumes
the generator when the waitable triggers.  This is how sequential agents —
the TpWIRE master's polling loop, the tuplespace client, traffic sources —
are written::

    def client(sim, space):
        yield sim.timeout(1.0)
        space.write(entry)
        result = yield space.take_async(template)

Waitables either *succeed* with a value (delivered as the ``yield`` result)
or *fail* with an exception (raised at the ``yield`` site).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.des.errors import Interrupted, ProcessKilled, SimulationError


class Waitable:
    """One-shot outcome that processes can wait on."""

    # The bus allocates one bare Waitable per communication cycle; slots
    # keep that allocation dict-free.  Subclasses that add attributes
    # fall back to a lazily-created __dict__ as usual.
    __slots__ = ("sim", "_callbacks", "_triggered", "_ok", "_value",
                 "_exception", "__weakref__", "__dict__")

    def __init__(self, sim):
        self.sim = sim
        self._callbacks: list[Callable[["Waitable"], None]] = []
        self._triggered = False
        self._ok = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None

    # -- outcome ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("waitable has not triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("waitable has not triggered yet")
        if not self._ok:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def succeed(self, value: Any = None) -> "Waitable":
        if self._triggered:
            raise SimulationError("waitable already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "Waitable":
        if self._triggered:
            raise SimulationError("waitable already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._triggered = True
        self._ok = False
        self._exception = exception
        self._dispatch()
        return self

    # -- waiters -----------------------------------------------------------

    def add_callback(self, callback: Callable[["Waitable"], None]) -> None:
        """Run ``callback(self)`` when triggered (immediately if already)."""
        if self._triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Waitable"], None]) -> None:
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class SimEvent(Waitable):
    """A manually-triggered waitable (``sim.event()``)."""


class Timeout(Waitable):
    """Waitable that succeeds after a fixed delay."""

    def __init__(self, sim, delay: float, value: Any = None):
        super().__init__(sim)
        self.delay = delay
        self._event = sim.after(delay, self._expire, value)

    def _expire(self, value: Any) -> None:
        if not self._triggered:
            self.succeed(value)

    def cancel(self) -> None:
        """Cancel the underlying timer (used on interrupt)."""
        self.sim.cancel(self._event)


class Process(Waitable):
    """A running generator process; also a waitable (join on completion).

    The process's generator return value becomes the waitable's value; an
    uncaught exception in the generator fails the waitable.  A failure with
    no registered waiter is re-raised so that errors never pass silently.
    """

    def __init__(self, sim, generator: Generator, name: Optional[str] = None):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"spawn() needs a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Waitable] = None
        # First resumption happens as its own event at the current time so
        # that spawn() returns before any process code runs.
        sim.call_after(0.0, self._step, None, None)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    # -- driving the generator -------------------------------------------

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        try:
            if throw_exc is not None:
                target = self._generator.throw(throw_exc)
            else:
                target = self._generator.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled:
            self.succeed(None)
            return
        # The kernel must forward *any* process error to its waiters;
        # _fail_or_raise re-raises when nobody waits on the process.
        except BaseException as exc:  # noqa: BLE001  # lint: disable=broad-except
            self._fail_or_raise(exc)
            return
        if not isinstance(target, Waitable):
            exc = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Waitable objects (e.g. sim.timeout(...))"
            )
            self._generator.close()
            self._fail_or_raise(exc)
            return
        self._waiting_on = target
        target.add_callback(self._on_wait_done)

    def _on_wait_done(self, waitable: Waitable) -> None:
        self._waiting_on = None
        if waitable.ok:
            self._step(waitable._value, None)
        else:
            self._step(None, waitable.exception)

    def _fail_or_raise(self, exc: BaseException) -> None:
        if self._callbacks:
            self.fail(exc)
        else:
            self._triggered = True
            self._ok = False
            self._exception = exc
            raise exc

    # -- control -----------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupted` inside the process at its wait point."""
        if self._triggered:
            return
        waited = self._waiting_on
        if waited is None:
            raise SimulationError(
                f"cannot interrupt {self.name!r}: it is not waiting"
            )
        waited.remove_callback(self._on_wait_done)
        if isinstance(waited, Timeout):
            waited.cancel()
        self.sim.call_after(0.0, self._step, None, Interrupted(cause))

    def kill(self) -> None:
        """Terminate the process; it may catch ``ProcessKilled`` to clean up."""
        if self._triggered:
            return
        waited = self._waiting_on
        if waited is not None:
            waited.remove_callback(self._on_wait_done)
            if isinstance(waited, Timeout):
                waited.cancel()
            self.sim.call_after(0.0, self._step, None, ProcessKilled())
        else:
            # Not yet started; close the generator and mark done.
            self._generator.close()
            self.succeed(None)

    def __repr__(self) -> str:
        state = "done" if self._triggered else "alive"
        return f"Process({self.name!r}, {state})"


class AllOf(Waitable):
    """Succeeds with the list of values once every child has succeeded.

    Fails fast with the first child failure.
    """

    def __init__(self, sim, waitables: Iterable[Waitable]):
        super().__init__(sim)
        self._children = list(waitables)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Waitable) -> None:
        if self._triggered:
            return
        if not child.ok:
            self.fail(child.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Waitable):
    """Succeeds with ``(first_child, value)`` when any child succeeds.

    Fails if the first child to trigger fails.
    """

    def __init__(self, sim, waitables: Iterable[Waitable]):
        super().__init__(sim)
        self._children = list(waitables)
        if not self._children:
            raise SimulationError("AnyOf needs at least one waitable")
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Waitable) -> None:
        if self._triggered:
            return
        if child.ok:
            self.succeed((child, child._value))
        else:
            self.fail(child.exception)
