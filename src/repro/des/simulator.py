"""The simulation event loop.

A :class:`Simulator` owns the virtual clock, the pending-event queue, the
per-component random streams and the trace recorder.  Both callback-style
scheduling (``sim.after(dt, fn, *args)``) and generator processes
(``sim.spawn(gen)``) are supported; the network and bus models use
callbacks for fine-grained frame events and processes for agents with
sequential behaviour (the master polling loop, the tuplespace client).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.des.errors import SchedulerError, StopSimulation
from repro.des.event import Event, EventState
from repro.des.random_streams import StreamRegistry
from repro.des.scheduler import HeapScheduler
from repro.des.trace import TraceRecorder

_PENDING = EventState.PENDING
_FIRED = EventState.FIRED


class Simulator:
    """Discrete-event simulator with a pluggable scheduler queue.

    Parameters
    ----------
    scheduler:
        Pending-event queue; defaults to a fresh :class:`HeapScheduler`.
    seed:
        Master seed for the deterministic per-component random streams
        available via :meth:`stream`.
    trace:
        Optional :class:`TraceRecorder`; a disabled recorder is created
        when omitted so models can trace unconditionally.
    obs:
        Optional :class:`repro.obs.Observability`; when given, its clock
        binds to this simulator's virtual time and instrumented models
        (bus, master, slaves, tuplespace) record into it.  ``None`` (the
        default) keeps the uninstrumented fast path.
    """

    def __init__(
        self,
        scheduler=None,
        seed: int = 0,
        trace: Optional[TraceRecorder] = None,
        obs=None,
    ):
        self._queue = scheduler if scheduler is not None else HeapScheduler()
        self._push_entry = self._queue.push_entry  # bound-method cache
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self.streams = StreamRegistry(seed)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.obs = obs
        if obs is not None:
            obs.bind_clock(lambda: self._now)
        self._processes: list = []

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- tracing ---------------------------------------------------------

    @property
    def trace_enabled(self) -> bool:
        """``True`` when the trace recorder accepts records.

        Hot paths guard on this before assembling a record, so a disabled
        tracer costs one attribute read per event instead of a six-argument
        call plus a kwargs dict (``tpwire/bus.py``, ``net/link.py`` and
        friends trace every frame).
        """
        return self.trace.enabled

    # -- scheduling ------------------------------------------------------

    def at(self, time: float, fn: Callable[..., Any], *args, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args, priority)
        self._queue.push(event)
        return event

    def after(self, delay: float, fn: Callable[..., Any], *args, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay}")
        return self.at(self._now + delay, fn, *args, priority=priority)

    def call_at(self, time: float, fn: Callable[..., Any], *args, priority: int = 0) -> None:
        """Fire-and-forget :meth:`at`: same firing order, no Event handle.

        The callback joins the same ``(time, priority, seq)`` total order
        as :meth:`at` — the shared sequence counter ticks identically —
        but no :class:`Event` is allocated, which is the difference
        between ~900k and >1.3M ev/s on the churn benchmark.  Use it for
        the hot model paths that discard the returned handle; anything
        that may need :meth:`cancel` must keep using :meth:`at`.
        """
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._seq = seq = self._seq + 1
        self._push_entry((time, priority, seq, fn, args))

    def call_after(self, delay: float, fn: Callable[..., Any], *args, priority: int = 0) -> None:
        """Fire-and-forget :meth:`after`; see :meth:`call_at`."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay}")
        self._seq = seq = self._seq + 1
        self._push_entry((self._now + delay, priority, seq, fn, args))

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event (lazy removal)."""
        if event.cancel():
            self._queue.notify_cancelled()
            return True
        return False

    # -- processes ---------------------------------------------------------

    def spawn(self, generator: Generator, name: Optional[str] = None):
        """Start a generator-based process; returns its ``Process`` handle."""
        from repro.des.process import Process

        process = Process(self, generator, name=name)
        self._processes.append(process)
        return process

    def timeout(self, delay: float, value: Any = None):
        """Waitable that fires after ``delay`` (for use inside processes)."""
        from repro.des.process import Timeout

        return Timeout(self, delay, value)

    def event(self):
        """A manually-triggered one-shot waitable."""
        from repro.des.process import SimEvent

        return SimEvent(self)

    # -- random streams ----------------------------------------------------

    def stream(self, name: str):
        """Deterministic, independent ``random.Random`` for component ``name``."""
        return self.streams.stream(name)

    # -- run loop ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the single earliest event; ``False`` when the queue is empty."""
        entry = self._queue.pop_entry()
        if entry is None:
            return False
        self._now = entry[0]
        if len(entry) == 5:
            entry[3](*entry[4])
        else:
            event = entry[3]
            if event.state is _PENDING:
                event.state = _FIRED
                event.fn(*event.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``stop()``.

        Returns the simulation time at which the run ended.  When ``until``
        is given the clock is advanced to exactly ``until`` even if the
        last event fired earlier (matching NS-2's ``$ns at ... halt``).
        """
        if self._running:
            raise SchedulerError("simulator is already running")
        self._running = True
        self._stopped = False
        queue = self._queue
        fired = 0
        try:
            if hasattr(queue, "ready_run"):
                # Timing wheel: consume whole sorted slots through the
                # batched-drain protocol (see ready_run's contract) —
                # same-timestamp events fire back-to-back as plain list
                # reads, with no per-event pop/peek method call.
                self._run_batched(queue, until, max_events)
            elif until is None and max_events is None:
                # Unbounded drain: the common benchmark/scenario shape.
                # Entries are dispatched directly — callback entries are
                # two tuple reads and a call, event entries an inlined
                # Event.fire() — and on the wheel consecutive pops inside
                # one slot are plain list reads (the batched dispatch
                # path): no peek_time(), no heap sift between same-time
                # events.
                pop_entry = queue.pop_entry
                while True:
                    entry = pop_entry()
                    if entry is None:
                        break
                    self._now = entry[0]
                    if len(entry) == 5:
                        entry[3](*entry[4])
                    else:
                        event = entry[3]
                        if event.state is _PENDING:
                            event.state = _FIRED
                            event.fn(*event.args)
                    if self._stopped:
                        break
            else:
                # Bounded drain: pop first and push the one overshooting
                # entry back, instead of a peek_time() before every pop.
                pop_entry = queue.pop_entry
                push_entry = queue.push_entry
                while True:
                    entry = pop_entry()
                    if entry is None:
                        break
                    if until is not None and entry[0] > until:
                        push_entry(entry)
                        break
                    self._now = entry[0]
                    if len(entry) == 5:
                        entry[3](*entry[4])
                    else:
                        event = entry[3]
                        if event.state is _PENDING:
                            event.state = _FIRED
                            event.fn(*event.args)
                    fired += 1
                    if self._stopped:
                        break
                    if max_events is not None and fired >= max_events:
                        break
        except StopSimulation:
            pass
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return self._now

    def _run_batched(self, queue, until: Optional[float], max_events: Optional[int]) -> None:
        """Drain the queue through the wheel's ``ready_run`` protocol.

        Each iteration takes the current sorted slot and fires its
        entries in place.  Per the contract, ``ready_pos`` is advanced
        *before* each dispatch (so same-tick pushes bisect behind the
        drain point) and ``len(run)`` is re-read after every callback
        because pushes into the draining tick grow the run in place.
        The queue's ``_size`` is settled once on exit instead of per
        event, so :attr:`pending_events` read from *inside a callback*
        over-counts by the entries this drain has already fired — the
        one documented observability difference versus the heap path.
        """
        ready_run = queue.ready_run
        live = 0
        try:
            if until is None and max_events is None:
                while True:
                    run = ready_run()
                    if run is None:
                        return
                    i = queue.ready_pos
                    n = len(run)
                    while i < n:
                        entry = run[i]
                        i += 1
                        queue.ready_pos = i
                        if len(entry) == 5:
                            live += 1
                            self._now = entry[0]
                            entry[3](*entry[4])
                        else:
                            event = entry[3]
                            if event.state is _PENDING:
                                live += 1
                                self._now = entry[0]
                                event.state = _FIRED
                                event.fn(*event.args)
                            else:  # cancelled: already accounted
                                n = len(run)
                                continue
                        if self._stopped:
                            return
                        n = len(run)
                return
            fired = 0
            while True:
                run = ready_run()
                if run is None:
                    return
                i = queue.ready_pos
                n = len(run)
                while i < n:
                    entry = run[i]
                    if until is not None and entry[0] > until:
                        queue.ready_pos = i
                        return
                    i += 1
                    queue.ready_pos = i
                    if len(entry) == 5:
                        live += 1
                        self._now = entry[0]
                        entry[3](*entry[4])
                    else:
                        event = entry[3]
                        if event.state is _PENDING:
                            live += 1
                            self._now = entry[0]
                            event.state = _FIRED
                            event.fn(*event.args)
                        else:
                            n = len(run)
                            continue
                    if self._stopped:
                        return
                    fired += 1
                    if max_events is not None and fired >= max_events:
                        return
                    n = len(run)
        finally:
            queue._size -= live

    def stop(self) -> None:
        """Halt the run loop after the current event finishes."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"Simulator(now={self._now}, pending={len(self._queue)})"
