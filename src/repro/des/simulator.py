"""The simulation event loop.

A :class:`Simulator` owns the virtual clock, the pending-event queue, the
per-component random streams and the trace recorder.  Both callback-style
scheduling (``sim.after(dt, fn, *args)``) and generator processes
(``sim.spawn(gen)``) are supported; the network and bus models use
callbacks for fine-grained frame events and processes for agents with
sequential behaviour (the master polling loop, the tuplespace client).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.des.errors import SchedulerError, StopSimulation
from repro.des.event import Event
from repro.des.random_streams import StreamRegistry
from repro.des.scheduler import HeapScheduler
from repro.des.trace import TraceRecorder


class Simulator:
    """Discrete-event simulator with a pluggable scheduler queue.

    Parameters
    ----------
    scheduler:
        Pending-event queue; defaults to a fresh :class:`HeapScheduler`.
    seed:
        Master seed for the deterministic per-component random streams
        available via :meth:`stream`.
    trace:
        Optional :class:`TraceRecorder`; a disabled recorder is created
        when omitted so models can trace unconditionally.
    obs:
        Optional :class:`repro.obs.Observability`; when given, its clock
        binds to this simulator's virtual time and instrumented models
        (bus, master, slaves, tuplespace) record into it.  ``None`` (the
        default) keeps the uninstrumented fast path.
    """

    def __init__(
        self,
        scheduler=None,
        seed: int = 0,
        trace: Optional[TraceRecorder] = None,
        obs=None,
    ):
        self._queue = scheduler if scheduler is not None else HeapScheduler()
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self.streams = StreamRegistry(seed)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.obs = obs
        if obs is not None:
            obs.bind_clock(lambda: self._now)
        self._processes: list = []

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- tracing ---------------------------------------------------------

    @property
    def trace_enabled(self) -> bool:
        """``True`` when the trace recorder accepts records.

        Hot paths guard on this before assembling a record, so a disabled
        tracer costs one attribute read per event instead of a six-argument
        call plus a kwargs dict (``tpwire/bus.py``, ``net/link.py`` and
        friends trace every frame).
        """
        return self.trace.enabled

    # -- scheduling ------------------------------------------------------

    def at(self, time: float, fn: Callable[..., Any], *args, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args, priority)
        self._queue.push(event)
        return event

    def after(self, delay: float, fn: Callable[..., Any], *args, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay}")
        return self.at(self._now + delay, fn, *args, priority=priority)

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event (lazy removal)."""
        if event.cancel():
            self._queue.notify_cancelled()
            return True
        return False

    # -- processes ---------------------------------------------------------

    def spawn(self, generator: Generator, name: Optional[str] = None):
        """Start a generator-based process; returns its ``Process`` handle."""
        from repro.des.process import Process

        process = Process(self, generator, name=name)
        self._processes.append(process)
        return process

    def timeout(self, delay: float, value: Any = None):
        """Waitable that fires after ``delay`` (for use inside processes)."""
        from repro.des.process import Timeout

        return Timeout(self, delay, value)

    def event(self):
        """A manually-triggered one-shot waitable."""
        from repro.des.process import SimEvent

        return SimEvent(self)

    # -- random streams ----------------------------------------------------

    def stream(self, name: str):
        """Deterministic, independent ``random.Random`` for component ``name``."""
        return self.streams.stream(name)

    # -- run loop ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the single earliest event; ``False`` when the queue is empty."""
        if len(self._queue) == 0:
            return False
        event = self._queue.pop()
        self._now = event.time
        event.fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``stop()``.

        Returns the simulation time at which the run ended.  When ``until``
        is given the clock is advanced to exactly ``until`` even if the
        last event fired earlier (matching NS-2's ``$ns at ... halt``).
        """
        if self._running:
            raise SchedulerError("simulator is already running")
        self._running = True
        self._stopped = False
        queue = self._queue
        fired = 0
        try:
            if until is None and max_events is None:
                # Unbounded drain: the common benchmark/scenario shape.
                # Skipping the per-iteration peek_time() matters — on the
                # calendar queue a peek scans every bucket.
                while len(queue) > 0:
                    event = queue.pop()
                    self._now = event.time
                    event.fire()
                    if self._stopped:
                        break
            else:
                while len(queue) > 0:
                    if until is not None:
                        next_time = queue.peek_time()
                        if next_time is not None and next_time > until:
                            break
                    event = queue.pop()
                    self._now = event.time
                    event.fire()
                    fired += 1
                    if self._stopped:
                        break
                    if max_events is not None and fired >= max_events:
                        break
        except StopSimulation:
            pass
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Halt the run loop after the current event finishes."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"Simulator(now={self._now}, pending={len(self._queue)})"
