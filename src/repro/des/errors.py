"""Exception hierarchy for the discrete-event kernel."""


class SimulationError(Exception):
    """Base class for every error raised by the simulation kernel."""


class SchedulerError(SimulationError):
    """Raised on scheduler misuse (scheduling in the past, popping empty)."""


class ProcessKilled(SimulationError):
    """Raised inside a process that has been killed via ``Process.kill``."""


class Interrupted(SimulationError):
    """Raised inside a process that was interrupted while waiting.

    The interrupt cause passed to :meth:`repro.des.process.Process.interrupt`
    is available as :attr:`cause`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class StopSimulation(Exception):
    """Internal control-flow exception used by ``Simulator.stop``."""
