"""Discrete-event simulation kernel (the NS-2 substitute).

The paper models the TpWIRE bus inside Network Simulator 2, whose core is a
discrete-event scheduler plus a small process/agent runtime.  This package
provides the same primitives in pure Python:

* :class:`~repro.des.simulator.Simulator` — the event loop (``now``,
  ``after``, ``at``, ``run``),
* generator-based processes (:class:`~repro.des.process.Process`) with
  waitables (:class:`~repro.des.process.Timeout`,
  :class:`~repro.des.process.SimEvent`, ``AnyOf``/``AllOf``),
* pluggable scheduler queues (binary heap, hierarchical timing wheel and a
  Brown-style calendar queue, the structure NS-2 itself uses),
* a real-time scheduler mode (used by the paper to validate the NS-2 TpWIRE
  model against the physical bus),
* deterministic per-component random streams, NS-2-style tracing, and
  statistics monitors.
"""

from repro.des.errors import (
    SimulationError,
    SchedulerError,
    ProcessKilled,
    Interrupted,
)
from repro.des.event import Event, EventState
from repro.des.scheduler import (
    HeapScheduler,
    TimingWheelScheduler,
    CalendarQueueScheduler,
)
from repro.des.simulator import Simulator
from repro.des.process import (
    Process,
    Timeout,
    SimEvent,
    AnyOf,
    AllOf,
    Waitable,
)
from repro.des.resource import Resource, Store, Container
from repro.des.random_streams import StreamRegistry
from repro.des.trace import TraceRecorder, TraceRecord
from repro.des.monitor import TallyMonitor, TimeWeightedMonitor, RateMonitor
from repro.des.realtime import RealTimeRunner

__all__ = [
    "SimulationError",
    "SchedulerError",
    "ProcessKilled",
    "Interrupted",
    "Event",
    "EventState",
    "HeapScheduler",
    "TimingWheelScheduler",
    "CalendarQueueScheduler",
    "Simulator",
    "Process",
    "Timeout",
    "SimEvent",
    "AnyOf",
    "AllOf",
    "Waitable",
    "Resource",
    "Store",
    "Container",
    "StreamRegistry",
    "TraceRecorder",
    "TraceRecord",
    "TallyMonitor",
    "TimeWeightedMonitor",
    "RateMonitor",
    "RealTimeRunner",
]
