"""NS-2-style event tracing.

NS-2 writes trace lines like ``+ 1.84375 0 2 cbr 210 ...`` (event code,
time, source, destination, packet type, size, flow fields).  The bus and
network models emit structured :class:`TraceRecord` objects; the recorder
can render them in a comparable text format or hand them to analysis code
as objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional


#: Conventional event codes (mirrors the NS-2 trace format).
ENQUEUE = "+"
DEQUEUE = "-"
RECEIVE = "r"
DROP = "d"
SEND = "s"


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    code: str
    source: str
    destination: str
    kind: str
    size: int = 0
    info: dict = field(default_factory=dict)

    def format(self) -> str:
        """Render as an NS-2-like single text line."""
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.info.items()))
        line = (
            f"{self.code} {self.time:.6f} {self.source} "
            f"{self.destination} {self.kind} {self.size}"
        )
        return f"{line} {extra}" if extra else line


class TraceRecorder:
    """Collects trace records, optionally filtered and/or written to a file.

    Parameters
    ----------
    enabled:
        A disabled recorder drops records cheaply, so occasional call
        sites can call :meth:`record` unconditionally.  Per-event/per-frame
        hot paths should guard with
        :attr:`repro.des.simulator.Simulator.trace_enabled` instead, which
        skips assembling the record arguments entirely.
    keep:
        Retain records in memory (for tests and analysis).
    sink:
        Optional callable receiving each formatted line (e.g. a file's
        ``write``).
    filter:
        Optional predicate on :class:`TraceRecord`; records failing it are
        dropped.
    """

    def __init__(
        self,
        enabled: bool = True,
        keep: bool = True,
        sink: Optional[Callable[[str], Any]] = None,
        filter: Optional[Callable[[TraceRecord], bool]] = None,
    ):
        self.enabled = enabled
        self.keep = keep
        self.sink = sink
        self.filter = filter
        self.records: list[TraceRecord] = []

    def record(
        self,
        time: float,
        code: str,
        source: str,
        destination: str,
        kind: str,
        size: int = 0,
        **info,
    ) -> None:
        if not self.enabled:
            return
        rec = TraceRecord(time, code, source, destination, kind, size, info)
        if self.filter is not None and not self.filter(rec):
            return
        if self.keep:
            self.records.append(rec)
        if self.sink is not None:
            self.sink(rec.format() + "\n")

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def with_code(self, code: str) -> list[TraceRecord]:
        return [r for r in self.records if r.code == code]

    def between(self, start: float, end: float) -> Iterable[TraceRecord]:
        return (r for r in self.records if start <= r.time <= end)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
