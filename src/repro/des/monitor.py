"""Statistics monitors for simulation measurements.

Three flavours cover everything the evaluation needs:

* :class:`TallyMonitor` — independent observations (latencies, sizes):
  count / mean / variance (Welford) / min / max / percentiles.
* :class:`TimeWeightedMonitor` — a piecewise-constant value over time
  (queue length, bus busy flag): time-weighted mean and integral, hence
  utilisation.
* :class:`RateMonitor` — event counting over elapsed time (throughput in
  frames/s or bytes/s), as reported in Table 3.
"""

from __future__ import annotations

import math
from typing import Optional


class TallyMonitor:
    """Streaming statistics over independent observations."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._samples: list[float] = []
        self.keep_samples = True

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if self.keep_samples:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        variance = self.variance
        return math.sqrt(variance) if not math.isnan(variance) else math.nan

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) by nearest-rank on kept samples."""
        if not self._samples:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q={q} outside [0, 100]")
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(q / 100 * len(ordered)) - 1))
        return ordered[rank]

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def __repr__(self) -> str:
        return (
            f"TallyMonitor({self.name!r}, n={self.count}, "
            f"mean={self.mean:.6g})"
        )


class TimeWeightedMonitor:
    """Time-weighted statistics of a piecewise-constant signal."""

    def __init__(self, sim, initial: float = 0.0, name: str = ""):
        self.sim = sim
        self.name = name
        self._value = initial
        self._last_change = sim.now
        self._start = sim.now
        self._integral = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        if value == self._value:
            # Piecewise-constant signal: re-asserting the current value
            # changes nothing — integral() accrues the running segment
            # lazily from _last_change, so skipping the update is exact.
            return
        now = self.sim.now
        self._integral += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def increment(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def decrement(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    def integral(self, until: Optional[float] = None) -> float:
        """∫ value dt from creation until ``until`` (default: now)."""
        end = self.sim.now if until is None else until
        return self._integral + self._value * (end - self._last_change)

    def time_average(self, until: Optional[float] = None) -> float:
        end = self.sim.now if until is None else until
        elapsed = end - self._start
        if elapsed <= 0:
            return math.nan
        return self.integral(until) / elapsed


class RateMonitor:
    """Counts events and amounts; reports rates over elapsed sim time."""

    def __init__(self, sim, name: str = ""):
        self.sim = sim
        self.name = name
        self._start = sim.now
        self.count = 0
        self.total_amount = 0.0

    def tick(self, amount: float = 1.0) -> None:
        self.count += 1
        self.total_amount += amount

    @property
    def elapsed(self) -> float:
        return self.sim.now - self._start

    @property
    def event_rate(self) -> float:
        """Events per unit time since creation."""
        return self.count / self.elapsed if self.elapsed > 0 else math.nan

    @property
    def amount_rate(self) -> float:
        """Total amount per unit time (e.g. bytes/s)."""
        return self.total_amount / self.elapsed if self.elapsed > 0 else math.nan

    def reset(self) -> None:
        self._start = self.sim.now
        self.count = 0
        self.total_amount = 0.0
