"""Pending-event queues.

Three interchangeable implementations are provided, mirroring (and
extending) NS-2's scheduler choices:

* :class:`HeapScheduler` — a binary heap (``heapq``), O(log n) insert/pop.
* :class:`TimingWheelScheduler` — a hierarchical timing wheel (Varghese &
  Lauck) with per-level occupancy bitmaps, O(1) schedule and amortised
  O(1) pop; the structure of choice for TpWIRE traffic, which is
  dominated by fixed bit-period/frame/gap delays.
* :class:`CalendarQueueScheduler` — R. Brown's calendar queue (the NS-2
  default).  **Deprecated for new work**: on the repo's own
  scheduler-churn benchmark it trails both the heap and the wheel (see
  ``docs/performance.md``), so the benchmark suite no longer ablates it.
  The class stays importable and correct — the parity suite still
  exercises it — but the wheel is its replacement.

Entry layout
------------

All queues store *entries*: plain tuples that compare correctly under
Python's C-level tuple comparison, so no queue operation ever calls back
into ``Event.__lt__``:

* ``(time, priority, seq, event)`` — an :class:`~repro.des.event.Event`
  scheduled through :meth:`Simulator.at`/``after`` (cancellable handle);
* ``(time, priority, seq, fn, args)`` — a fire-and-forget callback
  scheduled through :meth:`Simulator.call_at`/``call_after`` (no Event
  object is allocated at all).

``seq`` is unique per simulator, so a comparison never reaches element 3
and the two layouts can share one queue.  Queues discriminate on
``len(entry)`` when they need the event (cancellation is lazy: the event
stays queued and is skipped on pop).

The choice is a design knob the benchmark suite ablates
(``benchmarks/bench_ablation_scheduler.py``).
"""

from __future__ import annotations

import heapq
from bisect import insort_left
from collections import deque
from heapq import heappop, heappush
from typing import Optional

from repro.des.errors import SchedulerError
from repro.des.event import Event, EventState

_CANCELLED = EventState.CANCELLED


def _entry_event(entry: tuple) -> Event:
    """The :class:`Event` behind an entry, materialised on demand.

    Event entries carry their event; callback entries synthesise one (the
    legacy ``pop() -> Event`` API is the only consumer — the simulator's
    run loop dispatches entries directly).
    """
    if len(entry) == 4:
        return entry[3]
    time, priority, seq, fn, args = entry
    return Event(time, seq, fn, args, priority)


def _entry_cancelled(entry: tuple) -> bool:
    return len(entry) == 4 and entry[3].state is _CANCELLED


class HeapScheduler:
    """Binary-heap pending-event set.

    Heap items are the C-comparable entry tuples described in the module
    docstring, so every sift runs without a single Python-level
    comparison call — the property that took the heap from 382k to the
    megahertz range on the churn benchmark.
    """

    def __init__(self):
        self._heap: list[tuple] = []
        self._size = 0  # number of non-cancelled events

    def __len__(self) -> int:
        return self._size

    def push(self, event: Event) -> None:
        heappush(self._heap, event.sort_key + (event,))
        self._size += 1

    def push_entry(self, entry: tuple) -> None:
        """Queue a pre-built entry (the simulator's fast path)."""
        heappush(self._heap, entry)
        self._size += 1

    def notify_cancelled(self) -> None:
        """Account for an event cancelled while queued."""
        self._size -= 1

    def pop_entry(self) -> Optional[tuple]:
        """Remove and return the earliest live entry, or ``None``."""
        heap = self._heap
        while heap:
            entry = heappop(heap)
            if len(entry) == 4 and entry[3].state is _CANCELLED:
                continue
            self._size -= 1
            return entry
        return None

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        entry = self.pop_entry()
        if entry is None:
            raise SchedulerError("pop from an empty scheduler")
        return _entry_event(entry)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if empty."""
        heap = self._heap
        while heap and _entry_cancelled(heap[0]):
            heappop(heap)
        if not heap:
            return None
        return heap[0][0]


class TimingWheelScheduler:
    """Hierarchical timing wheel with per-level occupancy bitmaps.

    Level ``l`` is a wheel of ``2**slot_bits`` slots, each spanning
    ``2**(slot_bits*l)`` ticks of ``resolution`` seconds; an entry lands
    in the lowest level whose current window contains its tick, so near
    events get per-tick placement while far events sit coarsely and
    *cascade* down one level at a time as the cursor reaches their
    window.  Entries beyond the top level's horizon overflow into a small
    heap that refills the wheels when the cursor gets there.

    Hot-path properties:

    * **O(1) schedule** — one float multiply to quantise the time, one
      shift/mask to find the slot, one append.  Slot occupancy is a
      per-level Python-int bitmap, so finding the next busy slot is a
      single ``(b & -b).bit_length()`` (two C big-int ops), never a scan
      over empty slots.
    * **O(1) lazy cancel** — cancellation flips the event's state; the
      entry is skipped when its slot drains (same contract as the heap).
    * **Batched dispatch** — a due slot is sorted *once* and then served
      as the *ready run*: consecutive pops are list reads with no heap
      machinery or ``peek_time()`` between them.  Events scheduled into
      the ready run's own tick while it drains (zero-delay chains)
      bisect into the unfired suffix, which preserves the exact
      ``(time, priority, seq)`` total order — the FIFO tie-break the
      golden traces rely on.  :meth:`ready_run` exposes the run to the
      simulator so its event loop can consume a whole slot without one
      method call per event (see the method's contract).

    The wheel pops bit-identical entry sequences to :class:`HeapScheduler`
    (the randomized lockstep parity suite in ``tests/des`` is the
    oracle).  Out-of-order pushes — times earlier than the cursor, legal
    when the queue is driven standalone — trigger a full rebuild around
    the new time; the simulator itself never rewinds its clock, so the
    rebuild is a cold path.
    """

    def __init__(
        self,
        resolution: float = 1e-3,
        slot_bits: int = 8,
        levels: int = 4,
    ):
        if resolution <= 0:
            raise SchedulerError(f"wheel resolution must be > 0, got {resolution}")
        if slot_bits < 2 or slot_bits > 16:
            raise SchedulerError(f"slot_bits must be in [2, 16], got {slot_bits}")
        if levels < 2:
            raise SchedulerError(f"need at least 2 wheel levels, got {levels}")
        self.resolution = resolution
        self._inv = 1.0 / resolution
        self._slot_bits = slot_bits
        self._nslots = 1 << slot_bits
        self._mask = self._nslots - 1
        self._levels = levels
        # Level 0 (the per-tick wheel) is split out of the level list into
        # its own attributes: push/pop touch it on every single event, and
        # two plain attribute loads beat four subscripted ones.
        self._wheel0: list[Optional[list]] = [None] * self._nslots
        self._bitmap0 = 0
        self._coarse: list[list[Optional[list]]] = [
            [None] * self._nslots for _ in range(levels - 1)
        ]
        self._coarse_bitmaps: list[int] = [0] * (levels - 1)
        self._overflow: list[tuple] = []  # beyond the top level's horizon
        self._cur = 0  # absolute tick of the drain cursor
        self._win0 = 0  # == _cur >> slot_bits, the level-0 window id
        self._win0_end = self._nslots  # first tick beyond the level-0 window
        self._ready: list[tuple] = []  # current slot, sorted ascending
        #: Index of the next unconsumed entry in the ready run.  Public
        #: because it is half of the :meth:`ready_run` drain protocol.
        self.ready_pos = 0
        self._ready_tick = -1
        self._size = 0  # number of non-cancelled events

    @classmethod
    def for_timing(cls, timing, **kwargs) -> "TimingWheelScheduler":
        """A wheel sized for a :class:`repro.tpwire.timing.BusTiming`.

        Uses the timing model's precomputed ``wheel_resolution`` (half a
        bit period), which places every fixed bus delay — frame, gap,
        turnaround, per-hop arrival, exchange — on the integer tick grid
        with at most a handful of events per slot, and keeps a whole
        communication cycle inside level 0.
        """
        return cls(resolution=timing.wheel_resolution, **kwargs)

    def __len__(self) -> int:
        return self._size

    # -- scheduling ------------------------------------------------------

    def push(self, event: Event) -> None:
        self.push_entry(event.sort_key + (event,))

    def push_entry(self, entry: tuple) -> None:
        """Queue a pre-built entry (the simulator's fast path)."""
        tick = int(entry[0] * self._inv)
        if tick == self._ready_tick:
            # Into the slot being served: bisect into the unfired
            # suffix.  Searching from ready_pos both skips the fired
            # prefix and guarantees the entry cannot land in the past.
            insort_left(self._ready, entry, self.ready_pos)
            self._size += 1
            return
        if self._cur <= tick < self._win0_end:  # level-0 window
            idx = tick & self._mask
            wheel0 = self._wheel0
            slot = wheel0[idx]
            if slot is None:
                wheel0[idx] = [entry]
                self._bitmap0 |= 1 << idx
            else:
                slot.append(entry)
            self._size += 1
            return
        if tick > self._cur:
            self._place_coarse(entry, tick)
            self._size += 1
            return
        # Behind the cursor: an out-of-order push (standalone use; the
        # simulator clock never rewinds).  Re-key everything to the new,
        # earlier cursor so the scan finds it first.
        self._rebuild(tick)
        self._place(entry, tick)
        self._size += 1

    def _place(self, entry: tuple, tick: int) -> None:
        """Slot an entry at the lowest level whose window contains it
        (callers guarantee ``tick >= self._cur``)."""
        if tick < self._win0_end:
            idx = tick & self._mask
            wheel0 = self._wheel0
            slot = wheel0[idx]
            if slot is None:
                wheel0[idx] = [entry]
                self._bitmap0 |= 1 << idx
            else:
                slot.append(entry)
            return
        self._place_coarse(entry, tick)

    def _place_coarse(self, entry: tuple, tick: int) -> None:
        """Slot an entry above level 0 (or into the overflow heap)."""
        sb = self._slot_bits
        cur = self._cur
        for i in range(self._levels - 1):
            shift = sb * (i + 1)
            if (tick >> (shift + sb)) == (cur >> (shift + sb)):
                idx = (tick >> shift) & self._mask
                wheel = self._coarse[i]
                slot = wheel[idx]
                if slot is None:
                    wheel[idx] = [entry]
                    self._coarse_bitmaps[i] |= 1 << idx
                else:
                    slot.append(entry)
                return
        heappush(self._overflow, entry)

    def notify_cancelled(self) -> None:
        self._size -= 1

    # -- draining --------------------------------------------------------

    def pop_entry(self) -> Optional[tuple]:
        """Remove and return the earliest live entry, or ``None``."""
        pos = self.ready_pos
        ready = self._ready
        if pos < len(ready):
            entry = ready[pos]
            if len(entry) == 5 or entry[3].state is not _CANCELLED:
                self.ready_pos = pos + 1
                self._size -= 1
                return entry
        entry = self._next_entry()
        if entry is None:
            return None
        self.ready_pos += 1
        self._size -= 1
        return entry

    def ready_run(self) -> Optional[list]:
        """Position on the next live entry and expose the ready run.

        The batched-drain protocol used by ``Simulator.run``: the caller
        takes the returned list and consumes entries in order starting at
        :attr:`ready_pos`, and for each one it (a) writes the advanced
        index back to :attr:`ready_pos` *before* dispatching, so pushes
        into the same tick bisect after the drain point, (b) decrements
        ``_size`` for every live entry it consumes (cancelled entries it
        skips are already accounted), and (c) re-reads ``len(run)`` after
        dispatching, because same-tick pushes grow the run in place.
        ``None`` means the queue is empty.  Entries past ``ready_pos``
        may still be cancelled — the consumer must check, exactly as it
        would after ``pop()``.
        """
        if self._next_entry() is None:
            return None
        return self._ready

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        entry = self.pop_entry()
        if entry is None:
            raise SchedulerError("pop from an empty scheduler")
        return _entry_event(entry)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if empty."""
        entry = self._next_entry()
        if entry is None:
            return None
        return entry[0]

    def _next_entry(self) -> Optional[tuple]:
        """Advance the cursor to the next live entry and return it
        (without removing it); ``None`` if the queue is empty.

        Skips cancelled entries, loads and sorts the next occupied slot
        into the ready run, cascades higher levels, and refills from the
        overflow heap — everything pop/peek need positioned.
        """
        ready = self._ready
        pos = self.ready_pos
        n = len(ready)
        while True:
            while pos < n:
                entry = ready[pos]
                if len(entry) == 5 or entry[3].state is not _CANCELLED:
                    self.ready_pos = pos
                    return entry
                pos += 1
            self.ready_pos = pos
            b = self._bitmap0
            if b:
                idx = (b & -b).bit_length() - 1
                self._bitmap0 = b & (b - 1)
                wheel0 = self._wheel0
                slot = wheel0[idx]
                wheel0[idx] = None
                tick = (self._win0 << self._slot_bits) | idx
                self._cur = tick
                self._ready_tick = tick
                if len(slot) > 1:
                    slot.sort()
                self._ready = ready = slot
                self.ready_pos = pos = 0
                n = len(slot)
                continue
            if not self._overflow and not any(self._coarse_bitmaps):
                # Structurally empty: only the exhausted ready run (kept
                # so same-tick pushes can still join it) remains.
                return None
            self._advance_coarse()
            ready = self._ready
            pos = self.ready_pos
            n = len(ready)

    def _advance_coarse(self) -> None:
        """Level 0 is empty: cascade the next coarse slot or refill from
        the overflow heap (``_next_entry`` established the queue is not
        empty, so one of them has entries)."""
        sb = self._slot_bits
        inv = self._inv
        for i in range(self._levels - 1):
            b = self._coarse_bitmaps[i]
            if not b:
                continue
            idx = (b & -b).bit_length() - 1
            self._coarse_bitmaps[i] = b & (b - 1)
            wheel = self._coarse[i]
            slot = wheel[idx]
            wheel[idx] = None
            shift = sb * (i + 1)
            # Cursor to the start of the cascading slot's child window,
            # then re-place each entry one level (or more) down.
            self._cur = (self._cur >> (shift + sb) << (shift + sb)) | (idx << shift)
            self._win0 = self._cur >> sb
            self._win0_end = (self._win0 + 1) << sb
            for entry in slot:
                self._place(entry, int(entry[0] * inv))
            return
        # All wheels empty: jump to the earliest overflow entry and pull
        # in everything sharing the top level's new horizon.
        overflow = self._overflow
        first_tick = int(overflow[0][0] * inv)
        self._cur = first_tick
        self._win0 = first_tick >> sb
        self._win0_end = (self._win0 + 1) << sb
        top_shift = sb * self._levels
        top_window = first_tick >> top_shift
        while overflow and int(overflow[0][0] * inv) >> top_shift == top_window:
            entry = heappop(overflow)
            self._place(entry, int(entry[0] * inv))

    # -- cold paths ------------------------------------------------------

    def _pending_entries(self) -> list[tuple]:
        """Every live entry currently queued (cold path)."""
        entries = [
            e
            for e in self._ready[self.ready_pos:]
            if not _entry_cancelled(e)
        ]
        for wheel in (self._wheel0, *self._coarse):
            for slot in wheel:
                if slot:
                    entries.extend(e for e in slot if not _entry_cancelled(e))
        entries.extend(e for e in self._overflow if not _entry_cancelled(e))
        return entries

    def _clear_structures(self) -> None:
        self._wheel0 = [None] * self._nslots
        self._bitmap0 = 0
        self._coarse = [[None] * self._nslots for _ in range(self._levels - 1)]
        self._coarse_bitmaps = [0] * (self._levels - 1)
        self._overflow = []
        self._ready = []
        self.ready_pos = 0
        self._ready_tick = -1

    def _rebuild(self, tick: int) -> None:
        """Rewind the cursor for an out-of-order push (standalone use:
        the simulator clock never goes backwards).  Slot indices are
        decoded relative to the cursor, so every pending entry must be
        re-placed against the new, earlier window."""
        entries = self._pending_entries()
        self._clear_structures()
        self._cur = tick
        self._win0 = tick >> self._slot_bits
        self._win0_end = (self._win0 + 1) << self._slot_bits
        for entry in entries:
            self._place(entry, int(entry[0] * self._inv))


class CalendarQueueScheduler:
    """Calendar queue (Brown 1988), the structure NS-2 uses by default.

    .. deprecated::
        The calendar queue lost its original reason to exist in this
        repo: on the scheduler-churn workload it trails the binary heap
        (0.75×) and the timing wheel by a wide margin, because the
        shallow, short-horizon queues the TpWIRE models produce keep it
        permanently in its resize-thrash regime.  It remains importable,
        correct and covered by the parity suite, but new code and the
        benchmark matrix use :class:`TimingWheelScheduler` (or the heap)
        instead.  See ``docs/performance.md``.

    Events are hashed into ``nbuckets`` day-buckets of ``width`` time units;
    a pop scans from the current bucket forward within the current "year".
    The queue resizes (doubling / halving buckets, re-estimating the width
    from a sample of inter-event gaps) when the population crosses
    thresholds, keeping operations amortised O(1).
    """

    MIN_BUCKETS = 4

    def __init__(self, nbuckets: int = 8, width: float = 1.0):
        if nbuckets < 1 or width <= 0:
            raise SchedulerError("calendar queue needs nbuckets>=1, width>0")
        self._size = 0
        self._init_calendar(nbuckets, width, start_time=0.0)

    # -- internal calendar bookkeeping ----------------------------------

    def _init_calendar(self, nbuckets: int, width: float, start_time: float):
        self._nbuckets = nbuckets
        self._width = width
        self._inv_width = 1.0 / width
        # Deque buckets: frame traffic pushes in near-monotone time order,
        # so inserts are almost always appends and pops always come off
        # the front — both O(1), as Brown's design assumes.  A list bucket
        # would pay O(n) on every ``pop(0)``.
        self._buckets: list[deque[tuple]] = [deque() for _ in range(nbuckets)]
        self._year = nbuckets * width
        self._last_time = start_time
        self._current_bucket = int(start_time / width) % nbuckets
        self._bucket_top = (int(start_time / width) + 1) * width

    def __len__(self) -> int:
        return self._size

    def _bucket_index(self, time: float) -> int:
        return int(time * self._inv_width) % self._nbuckets

    def push(self, event: Event) -> None:
        self.push_entry(event.sort_key + (event,))

    def push_entry(self, entry: tuple) -> None:
        """Queue a pre-built entry (the simulator's fast path)."""
        time = entry[0]
        bucket = self._buckets[int(time * self._inv_width) % self._nbuckets]
        # Keep each bucket sorted.  The append/appendleft fast paths cover
        # the monotone traffic the simulator produces; the linear insert
        # only runs for mid-bucket arrivals, and buckets are short by
        # design (the resize policy holds them to a few events).
        if not bucket or entry > bucket[-1]:
            bucket.append(entry)
        elif entry < bucket[0]:
            bucket.appendleft(entry)
        else:
            lo = 0
            for queued in bucket:
                if queued < entry:
                    lo += 1
                else:
                    break
            bucket.insert(lo, entry)
        self._size += 1
        if time < self._last_time:
            # An out-of-order insert (possible after a resize snapshot);
            # rewind the scan position so pop still finds it.
            self._rewind_to(time)
        if self._size > 2 * self._nbuckets:
            self._resize(2 * self._nbuckets)

    def notify_cancelled(self) -> None:
        self._size -= 1

    def _rewind_to(self, time: float) -> None:
        self._current_bucket = self._bucket_index(time)
        self._bucket_top = (int(time * self._inv_width) + 1) * self._width
        self._last_time = time

    def pop_entry(self) -> Optional[tuple]:
        """Remove and return the earliest live entry, or ``None``."""
        entry = self._pop_earliest()
        if entry is None:
            return None
        self._size -= 1
        self._last_time = entry[0]
        if (
            self._nbuckets > self.MIN_BUCKETS
            and self._size < self._nbuckets // 2
        ):
            self._resize(max(self.MIN_BUCKETS, self._nbuckets // 2))
        return entry

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        entry = self.pop_entry()
        if entry is None:
            raise SchedulerError("pop from an empty scheduler")
        return _entry_event(entry)

    def _pop_earliest(self) -> Optional[tuple]:
        if self._size == 0:
            return None
        # Scan buckets within the current year; fall back to a direct
        # minimum search if a full year passes without a hit (events far
        # in the future).
        for _ in range(self._nbuckets + 1):
            bucket = self._buckets[self._current_bucket]
            while bucket and _entry_cancelled(bucket[0]):
                bucket.popleft()
            if bucket and bucket[0][0] < self._bucket_top:
                return bucket.popleft()
            self._current_bucket = (self._current_bucket + 1) % self._nbuckets
            self._bucket_top += self._width
        return self._pop_minimum_direct()

    def _pop_minimum_direct(self) -> Optional[tuple]:
        best_bucket = None
        best_entry = None
        for bucket in self._buckets:
            while bucket and _entry_cancelled(bucket[0]):
                bucket.popleft()
            if bucket and (best_entry is None or bucket[0] < best_entry):
                best_entry = bucket[0]
                best_bucket = bucket
        if best_bucket is None:
            return None
        entry = best_bucket.popleft()
        self._rewind_to(entry[0])
        return entry

    def peek_time(self) -> Optional[float]:
        if self._size == 0:
            return None
        best = None
        for bucket in self._buckets:
            while bucket and _entry_cancelled(bucket[0]):
                bucket.popleft()
            if bucket and (best is None or bucket[0][0] < best):
                best = bucket[0][0]
        return best

    def _resize(self, nbuckets: int) -> None:
        entries = [
            e
            for bucket in self._buckets
            for e in bucket
            if not _entry_cancelled(e)
        ]
        width = self._estimate_width(entries)
        self._init_calendar(nbuckets, width, start_time=self._last_time)
        self._size = 0
        for entry in entries:
            self.push_entry(entry)

    @staticmethod
    def _estimate_width(entries: list[tuple]) -> float:
        """Average gap between adjacent event times (Brown's heuristic)."""
        if len(entries) < 2:
            return 1.0
        times = sorted(e[0] for e in entries)
        gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
        if not gaps:
            return 1.0
        # Use 3x the mean gap so a bucket holds a few events on average.
        return 3.0 * sum(gaps) / len(gaps)
