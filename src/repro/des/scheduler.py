"""Pending-event queues.

Two interchangeable implementations are provided, mirroring NS-2's
scheduler choices:

* :class:`HeapScheduler` — a binary heap (``heapq``), O(log n) insert/pop.
* :class:`CalendarQueueScheduler` — R. Brown's calendar queue (the NS-2
  default), amortised O(1) insert/pop when event times are roughly
  uniformly spread, as they are for periodic frame traffic on a bus.

Both skip lazily-cancelled events on pop.  The choice is a design knob the
benchmark suite ablates (``benchmarks/bench_ablation_scheduler.py``).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

from repro.des.errors import SchedulerError
from repro.des.event import Event


class HeapScheduler:
    """Binary-heap pending-event set."""

    def __init__(self):
        self._heap: list[Event] = []
        self._size = 0  # number of non-cancelled events

    def __len__(self) -> int:
        return self._size

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)
        self._size += 1

    def notify_cancelled(self) -> None:
        """Account for an event cancelled while queued."""
        self._size -= 1

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._size -= 1
                return event
        raise SchedulerError("pop from an empty scheduler")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time


class CalendarQueueScheduler:
    """Calendar queue (Brown 1988), the structure NS-2 uses by default.

    Events are hashed into ``nbuckets`` day-buckets of ``width`` time units;
    a pop scans from the current bucket forward within the current "year".
    The queue resizes (doubling / halving buckets, re-estimating the width
    from a sample of inter-event gaps) when the population crosses
    thresholds, keeping operations amortised O(1).
    """

    MIN_BUCKETS = 4

    def __init__(self, nbuckets: int = 8, width: float = 1.0):
        if nbuckets < 1 or width <= 0:
            raise SchedulerError("calendar queue needs nbuckets>=1, width>0")
        self._size = 0
        self._init_calendar(nbuckets, width, start_time=0.0)

    # -- internal calendar bookkeeping ----------------------------------

    def _init_calendar(self, nbuckets: int, width: float, start_time: float):
        self._nbuckets = nbuckets
        self._width = width
        # Deque buckets: frame traffic pushes in near-monotone time order,
        # so inserts are almost always appends and pops always come off
        # the front — both O(1), as Brown's design assumes.  A list bucket
        # would pay O(n) on every ``pop(0)``.
        self._buckets: list[deque[Event]] = [deque() for _ in range(nbuckets)]
        self._year = nbuckets * width
        self._last_time = start_time
        self._current_bucket = int(start_time / width) % nbuckets
        self._bucket_top = (int(start_time / width) + 1) * width

    def __len__(self) -> int:
        return self._size

    def _bucket_index(self, time: float) -> int:
        return int(time / self._width) % self._nbuckets

    def push(self, event: Event) -> None:
        bucket = self._buckets[self._bucket_index(event.time)]
        # Keep each bucket sorted.  The append/appendleft fast paths cover
        # the monotone traffic the simulator produces; the linear insert
        # only runs for mid-bucket arrivals, and buckets are short by
        # design (the resize policy holds them to a few events).
        key = event.sort_key
        if not bucket or key > bucket[-1].sort_key:
            bucket.append(event)
        elif key < bucket[0].sort_key:
            bucket.appendleft(event)
        else:
            lo = 0
            for queued in bucket:
                if queued.sort_key < key:
                    lo += 1
                else:
                    break
            bucket.insert(lo, event)
        self._size += 1
        if event.time < self._last_time:
            # An out-of-order insert (possible after a resize snapshot);
            # rewind the scan position so pop still finds it.
            self._rewind_to(event.time)
        if self._size > 2 * self._nbuckets:
            self._resize(2 * self._nbuckets)

    def notify_cancelled(self) -> None:
        self._size -= 1

    def _rewind_to(self, time: float) -> None:
        self._current_bucket = self._bucket_index(time)
        self._bucket_top = (int(time / self._width) + 1) * self._width
        self._last_time = time

    def pop(self) -> Event:
        event = self._pop_earliest()
        if event is None:
            raise SchedulerError("pop from an empty scheduler")
        self._size -= 1
        self._last_time = event.time
        if (
            self._nbuckets > self.MIN_BUCKETS
            and self._size < self._nbuckets // 2
        ):
            self._resize(max(self.MIN_BUCKETS, self._nbuckets // 2))
        return event

    def _pop_earliest(self) -> Optional[Event]:
        if self._size == 0:
            return None
        # Scan buckets within the current year; fall back to a direct
        # minimum search if a full year passes without a hit (events far
        # in the future).
        for _ in range(self._nbuckets + 1):
            bucket = self._buckets[self._current_bucket]
            while bucket and bucket[0].cancelled:
                bucket.popleft()
            if bucket and bucket[0].time < self._bucket_top:
                return bucket.popleft()
            self._current_bucket = (self._current_bucket + 1) % self._nbuckets
            self._bucket_top += self._width
        return self._pop_minimum_direct()

    def _pop_minimum_direct(self) -> Optional[Event]:
        best_bucket = None
        best_key = None
        for bucket in self._buckets:
            while bucket and bucket[0].cancelled:
                bucket.popleft()
            if bucket and (best_key is None or bucket[0].sort_key < best_key):
                best_key = bucket[0].sort_key
                best_bucket = bucket
        if best_bucket is None:
            return None
        event = best_bucket.popleft()
        self._rewind_to(event.time)
        return event

    def peek_time(self) -> Optional[float]:
        if self._size == 0:
            return None
        best = None
        for bucket in self._buckets:
            while bucket and bucket[0].cancelled:
                bucket.popleft()
            if bucket and (best is None or bucket[0].time < best):
                best = bucket[0].time
        return best

    def _resize(self, nbuckets: int) -> None:
        events = [e for bucket in self._buckets for e in bucket if not e.cancelled]
        width = self._estimate_width(events)
        self._init_calendar(nbuckets, width, start_time=self._last_time)
        self._size = 0
        for event in events:
            self.push(event)

    @staticmethod
    def _estimate_width(events: list[Event]) -> float:
        """Average gap between adjacent event times (Brown's heuristic)."""
        if len(events) < 2:
            return 1.0
        times = sorted(e.time for e in events)
        gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
        if not gaps:
            return 1.0
        # Use 3x the mean gap so a bucket holds a few events on average.
        return 3.0 * sum(gaps) / len(gaps)
