"""Measurement analysis and report rendering for the benchmarks."""

from repro.analysis.stats import (
    mean,
    sample_stddev,
    confidence_interval_95,
    scaling_factor,
    relative_error,
)
from repro.analysis.tables import Table, Comparison, render_comparisons
from repro.analysis.timeline import (
    activity_timeline,
    bucket_counts,
    event_summary,
    render_strip,
)

__all__ = [
    "activity_timeline",
    "bucket_counts",
    "event_summary",
    "render_strip",
    "mean",
    "sample_stddev",
    "confidence_interval_95",
    "scaling_factor",
    "relative_error",
    "Table",
    "Comparison",
    "render_comparisons",
]
