"""ASCII table rendering in the shape of the paper's tables."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence


class Table:
    """A simple column-aligned text table."""

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []
        self._raw_rows: list[list[Any]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} "
                "columns"
            )
        self._raw_rows.append(list(cells))
        self.rows.append([_format_cell(cell) for cell in cells])

    def to_records(self) -> list[dict]:
        """Rows as header-keyed dicts of the *raw* (unformatted) cells,
        the shape :func:`repro.obs.bench_payload` takes."""
        return [
            dict(zip(self.headers, row)) for row in self._raw_rows
        ]

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        separator = "-+-".join("-" * w for w in widths)
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append(separator)
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(cell: Any) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "n/a"
        if math.isinf(cell):
            return "inf"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


@dataclass
class Comparison:
    """One paper-vs-measured data point for EXPERIMENTS.md."""

    experiment: str
    metric: str
    paper: Optional[float]
    measured: float
    unit: str = ""
    note: str = ""

    @property
    def ratio(self) -> float:
        if self.paper in (None, 0):
            return math.nan
        return self.measured / self.paper


def render_comparisons(comparisons: Sequence[Comparison], title: str = "") -> str:
    table = Table(
        ["experiment", "metric", "paper", "measured", "ratio", "note"],
        title=title,
    )
    for comp in comparisons:
        paper = "n/a" if comp.paper is None else _format_cell(float(comp.paper))
        measured = _format_cell(comp.measured)
        if comp.unit:
            if paper != "n/a":
                paper = f"{paper} {comp.unit}"
            measured = f"{measured} {comp.unit}"
        table.add_row(
            comp.experiment, comp.metric, paper, measured,
            _format_cell(comp.ratio), comp.note,
        )
    return table.render()
