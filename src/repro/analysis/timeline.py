"""ASCII activity timelines from trace records.

NS-2 users post-process trace files; the analog here renders the bus's
frame activity as a density strip so a run can be eyeballed without
plotting::

    0.0s |#########=======:::...   ...:::=====#########| 120.0s
          ^ write request           ^ take + response

Density characters scale from ``.`` (sparse) to ``@`` (busiest bucket).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional, Sequence

from repro.des.trace import TraceRecord

#: Density ramp, sparse to dense.
RAMP = " .:-=+*#%@"


def bucket_counts(
    records: Sequence[TraceRecord],
    start: float,
    end: float,
    buckets: int = 60,
    kinds: Optional[Iterable[str]] = None,
) -> list[int]:
    """Event counts per equal-width time bucket over ``[start, end)``."""
    if end <= start:
        raise ValueError(f"need end > start, got [{start}, {end})")
    if buckets < 1:
        raise ValueError(f"need at least one bucket, got {buckets}")
    wanted = set(kinds) if kinds is not None else None
    counts = [0] * buckets
    width = (end - start) / buckets
    for record in records:
        if wanted is not None and record.kind not in wanted:
            continue
        if not start <= record.time < end:
            continue
        index = int((record.time - start) / width)
        counts[min(index, buckets - 1)] += 1
    return counts


def render_strip(counts: Sequence[int]) -> str:
    """Map bucket counts onto the density ramp."""
    peak = max(counts) if counts else 0
    if peak == 0:
        return " " * len(counts)
    out = []
    for count in counts:
        level = 0 if count == 0 else 1 + int(
            (count / peak) * (len(RAMP) - 2)
        )
        out.append(RAMP[min(level, len(RAMP) - 1)])
    return "".join(out)


def activity_timeline(
    records: Sequence[TraceRecord],
    start: float,
    end: float,
    buckets: int = 60,
    kinds: Optional[Iterable[str]] = None,
    label: str = "",
) -> str:
    """One labelled density strip."""
    strip = render_strip(bucket_counts(records, start, end, buckets, kinds))
    prefix = f"{label} " if label else ""
    return f"{prefix}{start:g}s |{strip}| {end:g}s"


def event_summary(records: Sequence[TraceRecord]) -> dict:
    """Counts by ``(code, kind)`` plus totals, for quick sanity checks."""
    by_pair: Counter = Counter()
    for record in records:
        by_pair[(record.code, record.kind)] += 1
    return {
        "total": len(records),
        "by_code_kind": dict(by_pair),
        "first_time": records[0].time if records else None,
        "last_time": records[-1].time if records else None,
    }
