"""Small statistics helpers for the benchmark harness."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        return math.nan
    return sum(values) / len(values)


def sample_stddev(values: Sequence[float]) -> float:
    n = len(values)
    if n < 2:
        return math.nan
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def confidence_interval_95(values: Sequence[float]) -> tuple[float, float]:
    """Normal-approximation 95% CI of the mean."""
    n = len(values)
    if n < 2:
        value = mean(values)
        return (value, value)
    mu = mean(values)
    half = 1.96 * sample_stddev(values) / math.sqrt(n)
    return (mu - half, mu + half)


def scaling_factor(reference: Sequence[float], model: Sequence[float]) -> float:
    """Least-squares through-origin factor mapping model -> reference.

    The paper derives "a scaling factor used to understand how close to
    reality is the NS-2-TpWIRE model" from the Table 3 measurements; with
    paired timings this is ``argmin_k sum (ref_i - k * model_i)^2``.
    """
    if len(reference) != len(model) or not reference:
        raise ValueError("need equal, non-empty measurement vectors")
    denominator = sum(m * m for m in model)
    if denominator == 0:
        raise ValueError("model measurements are all zero")
    return sum(r * m for r, m in zip(reference, model)) / denominator


def relative_error(reference: float, model: float) -> float:
    """|model - reference| / reference."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return abs(model - reference) / abs(reference)
