"""Trace record types and their deterministic JSON rendering.

Every record is stamped with *simulation* time (the tracer's injected
clock) — never the wall clock — so a trace is a pure function of the
scenario's inputs and can be regressed byte-for-byte (the golden-trace
tests under ``tests/golden/``).

Records serialise to one JSON object per line (JSONL).  Determinism
rules:

* keys are emitted sorted (``sort_keys=True``);
* floats render via ``repr`` (exact, platform-stable for IEEE doubles);
* non-finite floats are rejected at record time — a NaN timestamp or
  field would silently break golden comparisons.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.errors import ExportError


def _check_finite(name: str, value: Any) -> None:
    if isinstance(value, float) and not math.isfinite(value):
        raise ExportError(f"trace field {name!r} is non-finite ({value})")


@dataclass(frozen=True)
class TraceEvent:
    """One instantaneous traced occurrence.

    ``cat`` groups related events (``tpwire``, ``space``, ``server``,
    ``slave``); ``name`` identifies the event within its category
    (``tx``, ``rx``, ``retry``, ``write`` ...).  ``seq`` is a
    tracer-assigned monotonic sequence number that keeps ordering stable
    between events sharing a timestamp.
    """

    time: float
    seq: int
    cat: str
    name: str
    fields: dict = field(default_factory=dict)
    #: Span duration; ``None`` marks a point event.
    duration: Optional[float] = None

    def __post_init__(self):
        _check_finite("time", self.time)
        if self.duration is not None:
            _check_finite("duration", self.duration)
        for key, value in self.fields.items():
            _check_finite(key, value)

    def to_dict(self) -> dict:
        out: dict[str, Any] = {
            "t": self.time,
            "seq": self.seq,
            "cat": self.cat,
            "name": self.name,
        }
        if self.duration is not None:
            out["dur"] = self.duration
        if self.fields:
            out["fields"] = dict(sorted(self.fields.items()))
        return out

    def to_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )


def dump_jsonl(events) -> str:
    """Render an iterable of :class:`TraceEvent` as a JSONL document."""
    lines = [event.to_json() for event in events]
    return "\n".join(lines) + ("\n" if lines else "")
