"""Benchmark JSON artefacts: ``benchmarks/results/BENCH_<name>.json``.

Schema ``repro.obs/bench-v1``::

    {
      "schema":  "repro.obs/bench-v1",
      "name":    "<bench name>",
      "rows":    [ {column: scalar, ...}, ... ],   # the reproduced table
      "derived": { key: scalar, ... },             # scaling factors etc.
      "metrics": { ... }                           # MetricRegistry.summary()
    }

Every value is a JSON scalar (str/int/float/bool/null); non-finite
floats are normalised to ``null`` so the document survives a strict
``loads(dumps(x)) == x`` round trip — the regression guard the benchmark
``conftest`` applies after every write.  Serialisation uses sorted keys
and a fixed indent, so two runs with identical numbers produce
byte-identical artefacts and the perf trajectory is diffable across PRs.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Optional, Union

from repro.obs.errors import SchemaError
from repro.obs.metrics import MetricRegistry

#: Schema identifier carried by every benchmark JSON artefact.
BENCH_SCHEMA = "repro.obs/bench-v1"

#: Keys a payload must carry, in any order.
_REQUIRED_KEYS = frozenset({"schema", "name", "rows", "derived", "metrics"})


def _sanitise(value: Any, path: str) -> Any:
    """Copy ``value`` into JSON-safe types (or raise :class:`SchemaError`)."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SchemaError(f"non-string key {key!r} at {path}")
            out[key] = _sanitise(item, f"{path}.{key}")
        return out
    if isinstance(value, (list, tuple)):
        return [_sanitise(item, f"{path}[{i}]") for i, item in enumerate(value)]
    raise SchemaError(
        f"value of type {type(value).__name__} at {path} is not JSON-safe"
    )


def bench_payload(
    name: str,
    rows: Optional[list] = None,
    derived: Optional[dict] = None,
    metrics: Optional[Union[dict, MetricRegistry]] = None,
) -> dict:
    """Build a schema-conformant payload from a bench's reproduced data."""
    if not name or not isinstance(name, str):
        raise SchemaError(f"bench name must be a non-empty string, got {name!r}")
    if isinstance(metrics, MetricRegistry):
        metrics = metrics.summary()
    payload = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "rows": _sanitise(list(rows) if rows is not None else [], "rows"),
        "derived": _sanitise(dict(derived) if derived is not None else {}, "derived"),
        "metrics": _sanitise(dict(metrics) if metrics is not None else {}, "metrics"),
    }
    validate_bench_payload(payload)
    return payload


def validate_bench_payload(payload: Any) -> None:
    """Raise :class:`SchemaError` unless ``payload`` is bench-v1 shaped."""
    if not isinstance(payload, dict):
        raise SchemaError(f"payload must be a dict, got {type(payload).__name__}")
    missing = _REQUIRED_KEYS - payload.keys()
    if missing:
        raise SchemaError(f"payload misses keys {sorted(missing)}")
    extra = payload.keys() - _REQUIRED_KEYS
    if extra:
        raise SchemaError(f"payload has unknown keys {sorted(extra)}")
    if payload["schema"] != BENCH_SCHEMA:
        raise SchemaError(
            f"schema is {payload['schema']!r}, expected {BENCH_SCHEMA!r}"
        )
    if not isinstance(payload["name"], str) or not payload["name"]:
        raise SchemaError("name must be a non-empty string")
    if not isinstance(payload["rows"], list):
        raise SchemaError("rows must be a list")
    for index, row in enumerate(payload["rows"]):
        if not isinstance(row, dict):
            raise SchemaError(f"rows[{index}] must be an object")
    if not isinstance(payload["derived"], dict):
        raise SchemaError("derived must be an object")
    if not isinstance(payload["metrics"], dict):
        raise SchemaError("metrics must be an object")
    # The sanitiser doubles as the leaf-type validator.
    _sanitise(payload, "payload")


def dump_bench_json(payload: dict) -> str:
    """Deterministic serialisation (sorted keys, fixed indent)."""
    validate_bench_payload(payload)
    return json.dumps(payload, sort_keys=True, indent=2, allow_nan=False) + "\n"


def bench_json_path(directory, name: str) -> pathlib.Path:
    return pathlib.Path(directory) / f"BENCH_{name}.json"


def write_bench_json(
    directory,
    name: str,
    rows: Optional[list] = None,
    derived: Optional[dict] = None,
    metrics: Optional[Union[dict, MetricRegistry]] = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``directory``; returns the path."""
    payload = bench_payload(name, rows=rows, derived=derived, metrics=metrics)
    path = bench_json_path(directory, name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dump_bench_json(payload))
    return path


def load_bench_json(path) -> dict:
    """Load and validate an artefact; raises :class:`SchemaError` if bad."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path} is not valid JSON: {exc}") from exc
    validate_bench_payload(payload)
    return payload
