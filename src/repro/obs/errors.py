"""Observability error hierarchy."""


class ObsError(Exception):
    """Base class for all observability-layer errors."""


class MetricError(ObsError):
    """Metric registration/usage error (duplicate name, kind mismatch)."""


class ExportError(ObsError):
    """An exporter could not serialise or write its artefact."""


class SchemaError(ExportError):
    """A benchmark JSON payload violates the ``repro.obs/bench-v1`` schema."""


class VcdError(ObsError):
    """Invalid VCD signal declaration or value change."""
