"""Deterministic observability: tracing, metrics and exporters.

The measurement layer the paper's evaluation is built on (Tables 3/4)
— structured, simulation-time-stamped span/event records, a federated
metric registry, and exporters (JSONL traces, VCD waveforms, benchmark
JSON artefacts).  Everything is stdlib-only and a pure function of the
simulated run: no wall clocks, no unseeded randomness (enforced by
``repro.lint``).
"""

from repro.obs.errors import (
    ObsError,
    MetricError,
    ExportError,
    SchemaError,
    VcdError,
)
from repro.obs.records import TraceEvent, dump_jsonl
from repro.obs.tracer import Tracer, SpanHandle
from repro.obs.metrics import Counter, MetricRegistry
from repro.obs.vcd import VcdRecorder
from repro.obs.export import (
    BENCH_SCHEMA,
    bench_payload,
    bench_json_path,
    dump_bench_json,
    load_bench_json,
    validate_bench_payload,
    write_bench_json,
)
from repro.obs.observability import Observability

__all__ = [
    "ObsError",
    "MetricError",
    "ExportError",
    "SchemaError",
    "VcdError",
    "TraceEvent",
    "dump_jsonl",
    "Tracer",
    "SpanHandle",
    "Counter",
    "MetricRegistry",
    "VcdRecorder",
    "BENCH_SCHEMA",
    "bench_payload",
    "bench_json_path",
    "dump_bench_json",
    "load_bench_json",
    "validate_bench_payload",
    "write_bench_json",
    "Observability",
]
