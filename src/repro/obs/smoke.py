"""Benchmark smoke check: ``python -m repro.obs.smoke [outdir]``.

Runs one fast, fully-instrumented scenario (the Figure 6 validation
workload on the packet-level bus), writes ``BENCH_obs_smoke.json``,
re-loads it and validates the schema round trip.  CI runs this to
guarantee the exporter pipeline stays healthy without paying for the
full benchmark suite.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

from repro.cosim.scenarios import ValidationScenario
from repro.obs.export import load_bench_json, write_bench_json
from repro.obs.observability import Observability

#: Packets of the smoke workload (a second or two of simulated bus time).
SMOKE_PACKETS = 3


def run_smoke(outdir: str) -> str:
    """Run the scenario, write and re-validate the artefact; returns path."""
    obs = Observability()
    scenario = ValidationScenario(bit_level=False, obs=obs)
    result = scenario.run(SMOKE_PACKETS)
    path = write_bench_json(
        outdir,
        "obs_smoke",
        rows=[
            {
                "packets": result.packets_delivered,
                "bytes": result.bytes_delivered,
                "frames": result.total_frames,
                "elapsed_seconds": result.elapsed_seconds,
            }
        ],
        derived={"trace_events": len(obs.tracer)},
        metrics=obs.metrics,
    )
    load_bench_json(path)  # round-trip/schema guard
    return str(path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke", description=__doc__
    )
    parser.add_argument(
        "outdir",
        nargs="?",
        default=None,
        help="directory for BENCH_obs_smoke.json (default: a temp dir)",
    )
    args = parser.parse_args(argv)
    outdir = args.outdir
    if outdir is None:
        outdir = tempfile.mkdtemp(prefix="repro-obs-smoke-")
    path = run_smoke(outdir)
    payload = load_bench_json(path)
    print(f"obs smoke ok: {path}")
    print(json.dumps(payload["rows"][0], sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
