"""The :class:`Observability` facade: one object to thread through a run.

Bundles a :class:`~repro.obs.tracer.Tracer`, a
:class:`~repro.obs.metrics.MetricRegistry` and a
:class:`~repro.obs.vcd.VcdRecorder` over a single injected simulation
clock.  Instrumented components accept ``obs=None`` and skip all
recording when unset, so the uninstrumented fast path stays unchanged::

    obs = Observability()
    sim = Simulator(seed=1, obs=obs)       # binds obs to sim time
    bus = TpwireBus(sim, obs=obs)
    ...
    sim.run(until=10)
    obs.metrics.summary()                   # -> nested dict
    obs.tracer.to_jsonl()                   # -> golden-trace document
    obs.vcd.render()                        # -> GTKWave waveform

The clock binds late: the first clock-owning component (usually the
:class:`~repro.des.Simulator`) calls :meth:`bind_clock`; until then the
clock reads 0.0, so pre-simulation setup events are stamped at the
origin rather than crashing.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.obs.metrics import MetricRegistry
from repro.obs.tracer import Tracer
from repro.obs.vcd import VcdRecorder


class Observability:
    """Tracer + metrics + VCD over one simulation clock."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        trace_categories: Optional[Iterable[str]] = None,
        keep_events: bool = True,
        vcd_timescale_seconds: float = 1e-6,
    ):
        self._clock = clock
        self.tracer = Tracer(
            self.now, categories=trace_categories, keep=keep_events
        )
        self.metrics = MetricRegistry(self.now)
        self.vcd = VcdRecorder(timescale_seconds=vcd_timescale_seconds)

    # -- clock -------------------------------------------------------------

    def now(self) -> float:
        """Current simulation time (0.0 before a clock is bound)."""
        return self._clock() if self._clock is not None else 0.0

    @property
    def clock_bound(self) -> bool:
        return self._clock is not None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Adopt ``clock`` as the time source; the first binder wins.

        Idempotent so every clock-owning component can bind defensively:
        a scenario's :class:`~repro.des.Simulator` and the
        :class:`~repro.core.space.TupleSpace` running on its
        :class:`~repro.core.clock.SimClock` share one timeline, and only
        the first of them actually installs the callable.
        """
        if self._clock is None:
            self._clock = clock

    # -- convenience -------------------------------------------------------

    def summary(self) -> dict:
        """Shorthand for ``self.metrics.summary()``."""
        return self.metrics.summary()

    def __repr__(self) -> str:
        return (
            f"Observability(bound={self.clock_bound}, "
            f"events={len(self.tracer)}, metrics={self.metrics!r})"
        )
