"""The structured tracer.

A :class:`Tracer` stamps every record with the *injected* simulation
clock (a zero-argument callable returning the current simulated time) and
assigns a monotonic sequence number, so two events at the same timestamp
keep a stable order.  Models call :meth:`event` for point occurrences and
:meth:`begin`/:meth:`~SpanHandle.end` for operations with a duration
(a tuplespace take waiting on the bus, a master transaction with
retries).

Category filtering keeps golden traces focused: a tracer built with
``categories={"space", "server"}`` drops bus-cycle noise at record time,
which is what lets the Table 4 golden stay a few hundred lines while the
full bus trace of the same run is tens of thousands.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.obs.records import TraceEvent, dump_jsonl


class SpanHandle:
    """An open span; :meth:`end` emits the record."""

    __slots__ = ("_tracer", "cat", "name", "start", "fields", "_done")

    def __init__(self, tracer: "Tracer", cat: str, name: str, start: float, fields: dict):
        self._tracer = tracer
        self.cat = cat
        self.name = name
        self.start = start
        self.fields = fields
        self._done = False

    def end(self, **fields) -> Optional[TraceEvent]:
        """Close the span; later keyword fields override the opener's."""
        if self._done:
            return None
        self._done = True
        merged = dict(self.fields)
        merged.update(fields)
        return self._tracer._emit_span(self.cat, self.name, self.start, merged)


class Tracer:
    """Deterministic, sim-clock-stamped span/event recorder.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time.
    categories:
        Optional allowlist; events in other categories are dropped.
    sink:
        Optional callable receiving each record's JSONL line (plus
        newline) as it is emitted, for streaming to a file.
    keep:
        Retain events in memory (needed for :meth:`to_jsonl` /
        analysis; disable for long streaming runs).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        categories: Optional[Iterable[str]] = None,
        sink: Optional[Callable[[str], Any]] = None,
        keep: bool = True,
    ):
        self._clock = clock
        self.categories = frozenset(categories) if categories is not None else None
        self.sink = sink
        self.keep = keep
        self.events: list[TraceEvent] = []
        self._seq = 0

    # -- recording ---------------------------------------------------------

    def enabled_for(self, cat: str) -> bool:
        return self.categories is None or cat in self.categories

    def event(
        self, cat: str, name: str, time: Optional[float] = None, **fields
    ) -> Optional[TraceEvent]:
        """Record a point event; ``time`` defaults to the clock's now.

        An explicit ``time`` supports retroactive events whose effective
        instant differs from the processing instant (a slave's lazy
        watchdog reset happened at its deadline, not when the next frame
        arrives).
        """
        if not self.enabled_for(cat):
            return None
        when = self._clock() if time is None else time
        return self._append(TraceEvent(when, self._next_seq(), cat, name, fields))

    def begin(self, cat: str, name: str, **fields) -> SpanHandle:
        """Open a span at the current simulation time.

        The handle is returned even for filtered categories (the span is
        simply dropped on :meth:`~SpanHandle.end`), so instrumentation
        never needs to branch on the filter.
        """
        return SpanHandle(self, cat, name, self._clock(), fields)

    def _emit_span(self, cat: str, name: str, start: float, fields: dict) -> Optional[TraceEvent]:
        if not self.enabled_for(cat):
            return None
        now = self._clock()
        return self._append(
            TraceEvent(start, self._next_seq(), cat, name, fields, duration=now - start)
        )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _append(self, record: TraceEvent) -> TraceEvent:
        if self.keep:
            self.events.append(record)
        if self.sink is not None:
            self.sink(record.to_json() + "\n")
        return record

    # -- access ------------------------------------------------------------

    def of_category(self, cat: str) -> list[TraceEvent]:
        return [e for e in self.events if e.cat == cat]

    def named(self, cat: str, name: str) -> list[TraceEvent]:
        return [e for e in self.events if e.cat == cat and e.name == name]

    def to_jsonl(self) -> str:
        """The whole retained trace as a JSONL document."""
        return dump_jsonl(self.events)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"Tracer(events={len(self.events)}, seq={self._seq})"
