"""VCD (Value Change Dump) waveform export for bus-line activity.

The recorder collects ``(time, signal, value)`` changes during a run and
renders an IEEE-1364 VCD document viewable in GTKWave: the bus busy
line, per-slave reset pulses and queue depths become waveforms that can
be read next to the paper's timing diagrams.

Determinism: the header carries no ``$date``/``$version`` wall-clock
stamp, identifier codes are assigned in registration order, and change
lines are sorted by (timestamp, registration order) — the rendered
document is a pure function of the recorded changes.

Simulation time is float seconds; VCD timestamps are integers, so the
recorder quantises to a configurable resolution (default 1 µs, far finer
than a 2400 bit/s bus's ~417 µs bit period).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs.errors import VcdError

#: First/size of the printable VCD identifier code range.
_ID_FIRST = 33   # '!'
_ID_COUNT = 94   # '!' .. '~'


def _id_code(index: int) -> str:
    """Printable short identifier for the ``index``-th declared signal."""
    out = []
    index += 1
    while index > 0:
        index -= 1
        out.append(chr(_ID_FIRST + index % _ID_COUNT))
        index //= _ID_COUNT
    return "".join(out)


class _Signal:
    __slots__ = ("name", "width", "scope", "code", "order", "last")

    def __init__(self, name: str, width: int, scope: str, code: str, order: int):
        self.name = name
        self.width = width
        self.scope = scope
        self.code = code
        self.order = order
        self.last: Optional[int] = None


class VcdRecorder:
    """Collects value changes; :meth:`render` emits the VCD document.

    Parameters
    ----------
    timescale_seconds:
        Seconds per VCD time unit (default ``1e-6`` = 1 µs).
    """

    _UNIT_NAMES = {1e-3: "1 ms", 1e-6: "1 us", 1e-9: "1 ns", 1e-12: "1 ps"}

    def __init__(self, timescale_seconds: float = 1e-6):
        if timescale_seconds not in self._UNIT_NAMES:
            raise VcdError(
                f"timescale must be one of {sorted(self._UNIT_NAMES)}, "
                f"got {timescale_seconds}"
            )
        self.timescale_seconds = timescale_seconds
        self._signals: dict[str, _Signal] = {}
        #: (ticks, registration index, code, value, width)
        self._changes: list[tuple[int, int, str, int, int]] = []

    # -- declaration -------------------------------------------------------

    def signal(self, name: str, width: int = 1, scope: str = "repro") -> str:
        """Declare (idempotently) a wire; returns its identifier code."""
        if width < 1:
            raise VcdError(f"signal width must be >= 1, got {width}")
        existing = self._signals.get(name)
        if existing is not None:
            if existing.width != width or existing.scope != scope:
                raise VcdError(
                    f"signal {name!r} redeclared with different width/scope"
                )
            return existing.code
        code = _id_code(len(self._signals))
        self._signals[name] = _Signal(name, width, scope, code, len(self._signals))
        return code

    # -- recording ---------------------------------------------------------

    def change(self, name: str, value: Union[int, bool], time: float) -> None:
        """Record ``name`` taking ``value`` at simulation ``time`` seconds."""
        sig = self._signals.get(name)
        if sig is None:
            raise VcdError(f"signal {name!r} was never declared")
        value = int(value)
        if value < 0 or value >= (1 << sig.width):
            raise VcdError(
                f"value {value} does not fit signal {name!r} "
                f"({sig.width} bit)"
            )
        if sig.last == value:
            return
        sig.last = value
        ticks = round(time / self.timescale_seconds)
        self._changes.append((ticks, sig.order, sig.code, value, sig.width))

    # -- rendering ---------------------------------------------------------

    @staticmethod
    def _format_value(value: int, width: int, code: str) -> str:
        if width == 1:
            return f"{value}{code}"
        return f"b{value:0{width}b} {code}"

    def render(self) -> str:
        """The full VCD document as a string."""
        lines = [f"$timescale {self._UNIT_NAMES[self.timescale_seconds]} $end"]
        by_scope: dict[str, list[_Signal]] = {}
        for sig in self._signals.values():
            by_scope.setdefault(sig.scope, []).append(sig)
        for scope in sorted(by_scope):
            lines.append(f"$scope module {scope} $end")
            for sig in by_scope[scope]:
                lines.append(
                    f"$var wire {sig.width} {sig.code} {sig.name} $end"
                )
            lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        emitted_ticks: Optional[int] = None
        for ticks, _order, code, value, width in sorted(
            self._changes, key=lambda c: (c[0], c[1])
        ):
            if ticks != emitted_ticks:
                lines.append(f"#{ticks}")
                emitted_ticks = ticks
            lines.append(self._format_value(value, width, code))
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self._changes)

    def __repr__(self) -> str:
        return (
            f"VcdRecorder(signals={len(self._signals)}, "
            f"changes={len(self._changes)})"
        )
