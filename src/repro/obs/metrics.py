"""The metric registry: named counters, gauges, histograms and rates.

The registry *federates* the existing :mod:`repro.des.monitor` classes
rather than reimplementing statistics:

* a **counter** is a plain monotonic integer (frames, retries, CRC
  errors);
* a **gauge** wraps :class:`~repro.des.monitor.TimeWeightedMonitor`
  (queue depth, bus busy flag) — its summary carries the time average,
  which for a 0/1 signal *is* the utilisation of Table 3;
* a **histogram** wraps :class:`~repro.des.monitor.TallyMonitor`
  (per-op latencies) and reports count/mean/min/max plus the p50/p90/p99
  percentiles;
* a **rate** wraps :class:`~repro.des.monitor.RateMonitor` (frames/s,
  bytes/s — the Table 3 throughput columns).

Externally-owned monitors (e.g. ``TpwireBus.utilization``) federate in
via :meth:`MetricRegistry.attach`, so instrumented components keep their
existing statistics objects and the registry's :meth:`summary` still
sees them.

Naming convention (documented in ``docs/observability.md``):
``<component>.<metric>`` in lowercase snake case, components dotted from
coarse to fine — ``tpwire.tx_frames``, ``master.transaction_seconds``,
``space.items``.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Union

from repro.des.monitor import RateMonitor, TallyMonitor, TimeWeightedMonitor
from repro.obs.errors import MetricError

#: Percentiles reported for every histogram.
HISTOGRAM_PERCENTILES = (50, 90, 99)


class _ClockShim:
    """Adapts a ``clock()`` callable to the ``sim.now`` protocol the
    :mod:`repro.des.monitor` classes expect."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


def _finite_or_none(value: float):
    """JSON-safe scalar: non-finite floats become ``None``."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


Monitor = Union[TallyMonitor, TimeWeightedMonitor, RateMonitor]


class MetricRegistry:
    """Named metrics over one injected simulation clock."""

    def __init__(self, clock: Callable[[], float]):
        self._shim = _ClockShim(clock)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, TimeWeightedMonitor] = {}
        self._histograms: dict[str, TallyMonitor] = {}
        self._rates: dict[str, RateMonitor] = {}

    # -- creation (idempotent per name/kind) -------------------------------

    def counter(self, name: str) -> Counter:
        return self._get("counter", name, lambda: Counter(name))

    def gauge(self, name: str, initial: float = 0.0) -> TimeWeightedMonitor:
        return self._get(
            "gauge",
            name,
            lambda: TimeWeightedMonitor(self._shim, initial=initial, name=name),
        )

    def histogram(self, name: str) -> TallyMonitor:
        return self._get("histogram", name, lambda: TallyMonitor(name=name))

    def rate(self, name: str) -> RateMonitor:
        return self._get("rate", name, lambda: RateMonitor(self._shim, name=name))

    def _table(self, kind: str) -> dict:
        return {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
            "rate": self._rates,
        }[kind]

    def _get(self, kind: str, name: str, factory):
        table = self._table(kind)
        self._check_name(name, skip=table)
        if name not in table:
            table[name] = factory()
        return table[name]

    def attach(self, name: str, monitor: Monitor) -> Monitor:
        """Federate an externally-owned monitor under ``name``."""
        self._check_name(name)
        if isinstance(monitor, TimeWeightedMonitor):
            self._gauges[name] = monitor
        elif isinstance(monitor, TallyMonitor):
            self._histograms[name] = monitor
        elif isinstance(monitor, RateMonitor):
            self._rates[name] = monitor
        else:
            raise MetricError(
                f"cannot attach {type(monitor).__name__} as metric {name!r}"
            )
        return monitor

    def _check_name(self, name: str, skip: Optional[dict] = None) -> None:
        if not name:
            raise MetricError("metric name must be non-empty")
        for table in (self._counters, self._gauges, self._histograms, self._rates):
            if table is skip:
                continue
            if name in table:
                raise MetricError(
                    f"metric name {name!r} already registered as another kind"
                )

    # -- summary -----------------------------------------------------------

    def summary(self) -> dict:
        """All metrics as one nested, JSON-safe, deterministic dict."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauge_summary(self._gauges[name])
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histogram_summary(self._histograms[name])
                for name in sorted(self._histograms)
            },
            "rates": {
                name: self._rate_summary(self._rates[name])
                for name in sorted(self._rates)
            },
        }

    @staticmethod
    def _gauge_summary(gauge: TimeWeightedMonitor) -> dict:
        return {
            "value": _finite_or_none(gauge.value),
            "time_average": _finite_or_none(gauge.time_average()),
            "integral": _finite_or_none(gauge.integral()),
        }

    @staticmethod
    def _histogram_summary(hist: TallyMonitor) -> dict:
        out = {
            "count": hist.count,
            "mean": _finite_or_none(hist.mean),
            "stddev": _finite_or_none(hist.stddev),
            "min": _finite_or_none(
                hist.minimum if hist.minimum is not None else math.nan
            ),
            "max": _finite_or_none(
                hist.maximum if hist.maximum is not None else math.nan
            ),
        }
        for q in HISTOGRAM_PERCENTILES:
            out[f"p{q}"] = _finite_or_none(hist.percentile(q))
        return out

    @staticmethod
    def _rate_summary(rate: RateMonitor) -> dict:
        return {
            "count": rate.count,
            "total_amount": _finite_or_none(rate.total_amount),
            "elapsed": _finite_or_none(rate.elapsed),
            "event_rate": _finite_or_none(rate.event_rate),
            "amount_rate": _finite_or_none(rate.amount_rate),
        }

    def __repr__(self) -> str:
        return (
            f"MetricRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)}, "
            f"rates={len(self._rates)})"
        )
