"""Rule ``frame-bounds`` — integer literals must fit their frame field.

TpWIRE frames are 16 bits with fixed field widths (Tables 1 and 2): a
3-bit CMD, 8-bit DATA, 4-bit CRC, and a 7-bit node address space (ids
0..126 plus broadcast 127).  A literal assigned or compared to one of
these fields that cannot fit is either dead code (a comparison that can
never be true) or a protocol violation that the frame constructors will
only catch at run time, deep inside a long simulation.

Bounds are cross-checked against the authoritative constants in
``repro.tpwire.frames``/``repro.tpwire.commands`` at lint time (see
:mod:`repro.lint.bounds`), so widening the protocol automatically widens
the rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint import astutil
from repro.lint.bounds import FieldBound, frame_field_bounds
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Layers in which the frame-field identifier names are meaningful.
DEFAULT_SCOPE = ("repro.tpwire", "repro.hw", "repro.cosim", "repro.board")


@register
class FrameBoundsRule(Rule):
    id = "frame-bounds"
    summary = (
        "integer literals assigned/compared to TpWIRE frame fields must "
        "fit the field width (16-bit frame, 7-bit addresses)"
    )
    default_scope = DEFAULT_SCOPE

    def __init__(self, config):
        super().__init__(config)
        self.bounds: dict[str, FieldBound] = frame_field_bounds()
        for name, value in dict(self.options.get("fields", {})).items():
            self.bounds[name] = FieldBound(int(value), "configured bound")

    def _bound_for(self, node: ast.AST) -> Optional[tuple[str, FieldBound]]:
        name = astutil.terminal_name(node)
        if name is None:
            return None
        bound = self.bounds.get(name)
        if bound is None:
            return None
        return name, bound

    def _violation(self, name: str, bound: FieldBound, literal: int) -> Optional[str]:
        if literal > bound.max_value or literal < 0:
            return (
                f"literal {literal:#x} does not fit frame field {name!r} "
                f"({bound.why}, max {bound.max_value:#x})"
            )
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_assign(ctx, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_assign(self, ctx, node) -> Iterator[Finding]:
        literal = astutil.int_literal(node.value) if node.value is not None else None
        if literal is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            matched = self._bound_for(target)
            if matched is None:
                continue
            message = self._violation(*matched, literal)
            if message is not None:
                yield self.finding(ctx, node, message)

    def _check_compare(self, ctx, node: ast.Compare) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for left, right in zip(operands, operands[1:]):
            for field_node, literal_node in ((left, right), (right, left)):
                matched = self._bound_for(field_node)
                literal = astutil.int_literal(literal_node)
                if matched is None or literal is None:
                    continue
                message = self._violation(*matched, literal)
                if message is not None:
                    yield self.finding(ctx, node, message)

    def _check_call(self, ctx, node: ast.Call) -> Iterator[Finding]:
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            bound = self.bounds.get(keyword.arg)
            if bound is None:
                continue
            literal = astutil.int_literal(keyword.value)
            if literal is None:
                continue
            message = self._violation(keyword.arg, bound, literal)
            if message is not None:
                yield self.finding(ctx, keyword.value, message)
