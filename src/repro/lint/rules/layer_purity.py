"""Rule ``layer-purity`` — no OS concurrency/IO inside the pure layers.

The discrete-event layers (``repro.des``, ``repro.tpwire``,
``repro.net``, ``repro.hw``) are single-threaded coroutine machines; a
``threading`` or ``socket`` import there either breaks determinism or
smuggles real IO into what Table 3 validates as a closed model.  Real
concurrency lives in ``repro.core.transports``/``repro.core.server``
(the paper's socket wrapper), which are outside these layers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

DEFAULT_LAYERS = ("repro.des", "repro.tpwire", "repro.net", "repro.hw")

DEFAULT_FORBIDDEN = (
    "threading",
    "socket",
    "asyncio",
    "multiprocessing",
    "subprocess",
    "concurrent",
    "selectors",
    "ssl",
)


@register
class LayerPurityRule(Rule):
    id = "layer-purity"
    summary = (
        "pure simulation layers must not import threading/socket-style "
        "OS concurrency modules"
    )
    default_scope = DEFAULT_LAYERS

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        forbidden = tuple(self.options.get("forbidden-modules", DEFAULT_FORBIDDEN))

        def is_forbidden(module_name: str) -> bool:
            root = module_name.split(".")[0]
            return root in forbidden

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if is_forbidden(alias.name):
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r} in pure simulation "
                            f"module {ctx.module}; concurrency belongs in "
                            f"core.transports/core.server",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module is not None and node.level == 0 and is_forbidden(node.module):
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {node.module!r} in a pure simulation layer; "
                        f"concurrency belongs in core.transports/core.server",
                    )
