"""Rule ``perf-sched-alloc`` — no per-event closures/containers at
scheduling call sites.

The simulator core schedules millions of events per run, and the entry
protocol (``sim.call_after(delay, fn, *args)`` / ``sim.after`` /
``sim.at``) exists precisely so callers hand over the function and its
arguments without wrapping them.  A ``lambda`` at a scheduling call site
allocates a closure per event; a tuple/list literal argument allocates a
container per event.  Both put allocation churn on the hottest loop in
the repository — the exact churn the timing-wheel/batched-dispatch work
removes — and both have a zero-cost spelling::

    sim.call_after(delay, self._finish, done, result)   # not a lambda
    sim.after(gap, handler)                             # no arg tuple

The check is syntactic: any direct argument of an ``after`` / ``at`` /
``call_after`` / ``call_at`` method call that is a ``lambda`` or a
tuple/list display is flagged, whatever the receiver.  For a genuine
one-off (setup code that schedules once), suppress the line with
``# lint: disable=perf-sched-alloc``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Dotted prefixes of the event-scheduling hot-path layers.
DEFAULT_HOT_LAYERS = ("repro.des", "repro.tpwire")

#: Scheduling entry points of the simulator/scheduler protocol.
SCHEDULING_METHODS = frozenset({"after", "at", "call_after", "call_at"})


@register
class PerfSchedAllocRule(Rule):
    id = "perf-sched-alloc"
    summary = (
        "scheduling call sites must not allocate per event; pass the "
        "callback and its arguments unwrapped instead of a lambda or a "
        "tuple/list literal"
    )
    default_scope = DEFAULT_HOT_LAYERS

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            if node.func.attr not in SCHEDULING_METHODS:
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    yield self.finding(
                        ctx,
                        argument,
                        "lambda at a scheduling call site allocates a "
                        "closure per event; pass the callback and its "
                        "arguments via the *args protocol",
                    )
                elif isinstance(argument, (ast.Tuple, ast.List)):
                    yield self.finding(
                        ctx,
                        argument,
                        "tuple/list literal at a scheduling call site "
                        "allocates a container per event; pass the "
                        "elements as separate *args",
                    )
