"""Rule ``unseeded-random`` — randomness only via named seeded streams.

Reproducible runs (and the NS-2 substream property: adding a component
never perturbs the draws of another) require every stochastic component
to pull from :class:`repro.des.random_streams.StreamRegistry`.  Calling
the module-level ``random.*`` functions uses the global, shared,
wall-seeded generator and silently breaks both properties.

Instantiating ``random.Random(seed)`` explicitly stays allowed — that is
exactly what the stream registry does — as does importing ``random`` for
type annotations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

DEFAULT_ALLOW = ("repro.des.random_streams",)

#: Names importable from ``random`` without a finding.
ALLOWED_NAMES = frozenset({"Random", "SystemRandom"})


@register
class UnseededRandomRule(Rule):
    id = "unseeded-random"
    summary = (
        "use named streams from des.random_streams, not the global "
        "random module functions"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        allow = tuple(self.options.get("allow-modules", DEFAULT_ALLOW))
        if ctx.in_package(*allow):
            return

        for local, (node, name) in astutil.from_imported(ctx.tree, "random").items():
            if name not in ALLOWED_NAMES:
                yield self.finding(
                    ctx,
                    node,
                    f"'from random import {name}' uses the global generator; "
                    f"draw from a named StreamRegistry stream instead",
                )

        aliases = astutil.module_aliases(ctx.tree, "random")
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in aliases
                and node.attr not in ALLOWED_NAMES
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"random.{node.attr} uses the global generator; draw from "
                    f"a named StreamRegistry stream (des.random_streams)",
                )
