"""Built-in rule set.

Importing this package registers every rule with the registry; add a new
rule by dropping a module here (or anywhere) that defines a
:class:`~repro.lint.registry.Rule` subclass decorated with
:func:`~repro.lint.registry.register`, and importing it below.
"""

from repro.lint.rules import (  # noqa: F401
    broad_except,
    error_hierarchy,
    float_time_eq,
    frame_bounds,
    layer_purity,
    mutable_default,
    perf_pop0,
    perf_sched_alloc,
    unseeded_random,
    wall_clock,
)
