"""Rule ``broad-except`` — no silent catch-alls.

``except:`` and ``except Exception:`` that neither re-raise nor log
swallow the very protocol violations the domain hierarchies exist to
surface — a CRC mismatch silently eaten inside a polling loop shows up
only as an inexplicably wrong Table 4 row.  A broad handler is accepted
when its body re-raises (any ``raise``) or records the failure through a
logging-style call.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Exception names considered overbroad in an ``except`` clause.
BROAD_NAMES = frozenset({"Exception", "BaseException"})

#: Method/function names that count as "the failure was recorded".
LOGGING_NAMES = frozenset(
    {
        "debug",
        "info",
        "warning",
        "warn",
        "error",
        "exception",
        "critical",
        "log",
        "print",
        "record",
    }
)


@register
class BroadExceptRule(Rule):
    id = "broad-except"
    summary = "no bare except / except Exception without re-raise or logging"
    default_scope = None  # applies everywhere, tests included

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node)
            if broad is None:
                continue
            if astutil.contains_raise(node.body) or self._logs(node.body):
                continue
            clause = "bare 'except:'" if broad == "" else f"'except {broad}:'"
            yield self.finding(
                ctx,
                node,
                f"{clause} swallows errors silently; catch the narrow "
                f"repro.*.errors class, re-raise, or log the failure",
            )

    @staticmethod
    def _broad_name(handler: ast.ExceptHandler) -> str | None:
        """'' for bare except, the name for Exception/BaseException, else None."""
        if handler.type is None:
            return ""
        names = []
        if isinstance(handler.type, ast.Tuple):
            names = [astutil.terminal_name(e) for e in handler.type.elts]
        else:
            names = [astutil.terminal_name(handler.type)]
        for name in names:
            if name in BROAD_NAMES:
                return name
        return None

    @staticmethod
    def _logs(body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    name = astutil.terminal_name(node.func)
                    if name in LOGGING_NAMES:
                        return True
        return False
