"""Rule ``error-hierarchy`` — raise domain errors, not generic builtins.

Every subsystem ships an exception hierarchy (``repro.core.errors``,
``repro.des.errors``, ``repro.tpwire.errors``, ...).  Raising a bare
``Exception``/``RuntimeError`` instead makes failures indistinguishable
to callers that must react differently to, say, a CRC mismatch versus a
lease expiry — and forces the overbroad ``except Exception`` handlers
that rule ``broad-except`` rejects.

Builtin *contract* errors stay allowed by default (``ValueError``,
``TypeError``, ... — argument validation at API boundaries is their
idiomatic job); the ``allowed-builtins`` option controls the list.
Domain exceptions may still subclass a builtin (e.g. ``RuntimeError``)
so existing ``except`` clauses keep working.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator, Optional

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Builtin exceptions allowed in ``raise`` by default: contract errors
#: and control-flow exceptions with dedicated language semantics.
DEFAULT_ALLOWED = (
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "NotImplementedError",
    "AssertionError",
    "StopIteration",
    "StopAsyncIteration",
    "KeyboardInterrupt",
    "SystemExit",
)

#: Every builtin exception name.
BUILTIN_EXCEPTIONS = frozenset(
    name
    for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
)


@register
class ErrorHierarchyRule(Rule):
    id = "error-hierarchy"
    summary = (
        "raise the subsystem's repro.*.errors classes, not bare "
        "Exception/generic builtin errors"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        allowed = frozenset(self.options.get("allowed-builtins", DEFAULT_ALLOWED))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_name(node.exc)
            if name is None:
                continue
            if name in BUILTIN_EXCEPTIONS and name not in allowed:
                yield self.finding(
                    ctx,
                    node,
                    f"raise of generic builtin {name!r}; use the subsystem's "
                    f"repro.*.errors hierarchy (subclassing {name} keeps "
                    f"existing handlers working)",
                )

    @staticmethod
    def _raised_name(exc: ast.AST) -> Optional[str]:
        if isinstance(exc, ast.Call):
            exc = exc.func
        # Only bare names can be builtins; ``module.Error`` is a domain class.
        if isinstance(exc, ast.Name):
            return exc.id
        return None
