"""Rule ``wall-clock`` — no direct wall-clock reads in simulation code.

The paper's Table 3 validation holds only if a simulated run is a pure
function of its inputs.  A stray ``time.time()``/``time.sleep()`` in the
middleware or the models couples results to the host machine, so all
time must flow from the injected :class:`repro.core.clock.Clock` (or a
:class:`repro.des.Simulator`).  The clock implementations themselves —
``repro.core.clock`` and ``repro.des.realtime`` — are the single allowed
boundary to the OS clock (``allow-modules`` option).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Wall-clock attributes of the ``time`` module.
TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)

#: Wall-clock constructors on ``datetime.datetime`` / ``datetime.date``.
DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

DEFAULT_ALLOW = ("repro.core.clock", "repro.des.realtime")


@register
class WallClockRule(Rule):
    id = "wall-clock"
    summary = (
        "simulation code must use the injected Clock/Simulator time, "
        "never time.*/datetime.now directly"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        allow = tuple(self.options.get("allow-modules", DEFAULT_ALLOW))
        if ctx.in_package(*allow):
            return

        time_aliases = astutil.module_aliases(ctx.tree, "time")
        datetime_aliases = astutil.module_aliases(ctx.tree, "datetime")
        datetime_classes = {
            local
            for local, (_, name) in astutil.from_imported(
                ctx.tree, "datetime"
            ).items()
            if name in ("datetime", "date")
        }

        for local, (node, name) in astutil.from_imported(ctx.tree, "time").items():
            if name in TIME_ATTRS:
                yield self.finding(
                    ctx,
                    node,
                    f"'from time import {name}' bypasses the injected clock; "
                    f"take a Clock (repro.core.clock) instead",
                )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if (
                isinstance(value, ast.Name)
                and value.id in time_aliases
                and node.attr in TIME_ATTRS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"direct wall-clock call time.{node.attr}; simulation code "
                    f"must use the injected Clock/Simulator time",
                )
            elif node.attr in DATETIME_ATTRS and (
                (isinstance(value, ast.Name) and value.id in datetime_classes)
                or (
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id in datetime_aliases
                    and value.attr in ("datetime", "date")
                )
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"datetime.{node.attr}() reads the wall clock; simulation "
                    f"code must use the injected Clock/Simulator time",
                )
