"""Rule ``float-time-eq`` — no ``==``/``!=`` on simulated timestamps.

Simulated timestamps are floats accumulated through repeated addition
(event times, lease expiries, ``clock.now()`` readings).  Exact equality
between two such values depends on summation order, so an ``==`` that
holds in one scheduler interleaving fails in another — precisely the
kind of silent nondeterminism that corrupts Table 3/Table 4 numbers.
Compare with ``<=``/``>=`` against a deadline, or use an explicit
tolerance.

Detection is a name heuristic: an operand is timestamp-like when it is a
call to ``now()``/``.now()`` or an identifier matching the configured
patterns (``*_time``, ``*_at``, ``now``, ``deadline``, ``timestamp``,
``expiry``, ...).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint import astutil
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

DEFAULT_PATTERNS = (
    r".*_time$",
    r".*_at$",
    r".*_deadline$",
    r"^now$",
    r"^deadline$",
    r"^timestamp$",
    r"^expiry$",
    r"^expires$",
)


@register
class FloatTimeEqRule(Rule):
    id = "float-time-eq"
    summary = (
        "simulated timestamps are floats; compare with tolerance or "
        "ordering, never == / !="
    )

    def __init__(self, config):
        super().__init__(config)
        patterns = self.options.get("patterns", DEFAULT_PATTERNS)
        self._regex = re.compile("|".join(f"(?:{p})" for p in patterns))

    def _timestamp_like(self, node: ast.AST) -> Optional[str]:
        """A short description of why the operand looks like a timestamp."""
        if isinstance(node, ast.Call):
            name = astutil.terminal_name(node.func)
            if name == "now":
                return "now()"
            return None
        name = astutil.terminal_name(node)
        if name is not None and self._regex.match(name):
            return name
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                # `x == None`-style sentinel checks are not float equality.
                if any(
                    isinstance(o, ast.Constant) and o.value is None
                    for o in (left, right)
                ):
                    continue
                for operand in (left, right):
                    why = self._timestamp_like(operand)
                    if why is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"equality on timestamp-like value {why!r}; float "
                            f"sim times need ordering or tolerance comparisons",
                        )
                        break
