"""Rule ``perf-pop0`` — no ``list.pop(0)`` / ``insert(0, ...)`` on hot paths.

Popping or inserting at the head of a Python list shifts every remaining
element, turning a FIFO into an O(n) structure.  The simulator core
(``repro.des``), the bus model (``repro.tpwire``) and the network layer
(``repro.net``) run these operations once per event or frame, so the cost
scales with the whole run — exactly the churn Brown's calendar-queue
design (and this repo's DES hot-path work) exists to avoid.  Use
``collections.deque`` with ``popleft()`` / ``appendleft()`` instead.

The check is syntactic: any ``<obj>.pop(0)`` with a single argument and
any ``<obj>.insert(0, item)`` is flagged, whatever ``<obj>`` is.  For the
rare receiver where index 0 is not a FIFO head (e.g. a dict keyed by
``0``), suppress the line with ``# lint: disable=perf-pop0``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Dotted prefixes of the event/frame hot-path layers.
DEFAULT_HOT_LAYERS = ("repro.des", "repro.tpwire", "repro.net")


def _is_zero_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and type(node.value) is int
        and node.value == 0
    )


@register
class PerfPop0Rule(Rule):
    id = "perf-pop0"
    summary = (
        "hot-path modules must not use list.pop(0)/insert(0, ...); "
        "use collections.deque"
    )
    default_scope = DEFAULT_HOT_LAYERS

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            method = node.func.attr
            # dict.pop(0, default) takes two arguments; only the
            # single-argument list/deque form shifts elements.
            if (
                method == "pop"
                and len(node.args) == 1
                and not node.keywords
                and _is_zero_literal(node.args[0])
            ):
                yield self.finding(
                    ctx,
                    node,
                    "pop(0) shifts the whole list on every call; "
                    "use collections.deque and popleft()",
                )
            elif (
                method == "insert"
                and len(node.args) == 2
                and not node.keywords
                and _is_zero_literal(node.args[0])
            ):
                yield self.finding(
                    ctx,
                    node,
                    "insert(0, ...) shifts the whole list on every call; "
                    "use collections.deque and appendleft()",
                )
