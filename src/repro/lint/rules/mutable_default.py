"""Rule ``mutable-default`` — no mutable default argument values.

A ``def f(history=[])`` default is evaluated once and shared across
every call; in long-running simulations this aliases state between
supposedly independent components (two buses sharing one retry log) and
is a classic source of run-order-dependent results.  Use ``None`` plus
an in-body default instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Calls to these bare names as defaults build a fresh-but-shared object.
MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque", "defaultdict"})

MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


@register
class MutableDefaultRule(Rule):
    id = "mutable-default"
    summary = "default argument values must not be mutable objects"
    default_scope = None  # applies everywhere, tests included

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default in {label!r} is shared across calls; "
                        f"use None and create it in the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, MUTABLE_LITERALS):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in MUTABLE_CALLS
        )
