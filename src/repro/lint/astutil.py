"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Optional


def module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Local names that refer to ``module`` via ``import module [as alias]``.

    Dotted imports count when the root matches (``import time.x as t``
    does not occur for the modules we track, but ``import time as _time``
    must map ``_time`` -> ``time``).
    """
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module or alias.name.startswith(module + "."):
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def from_imported(tree: ast.Module, module: str) -> dict[str, tuple[ast.ImportFrom, str]]:
    """``from module import name [as alias]`` -> {local: (node, name)}."""
    imported: dict[str, tuple[ast.ImportFrom, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                imported[alias.asname or alias.name] = (node, alias.name)
    return imported


def terminal_name(node: ast.AST) -> Optional[str]:
    """The final identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def int_literal(node: ast.AST) -> Optional[int]:
    """The value of an int literal, including unary minus, else ``None``."""
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and type(node.operand.value) is int
    ):
        return -node.operand.value
    return None


def contains_raise(nodes: list[ast.stmt]) -> bool:
    """True when any statement (recursively) raises.

    Nested function/class definitions do not count — a ``raise`` in a
    callback defined inside the handler does not re-raise the exception.
    """
    stack: list[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False
