"""Per-function effect seeds, distilled during summarisation.

:func:`extract_effects` is called by
:func:`repro.lint.project.symbols.summarize_source` and returns a plain
JSON dict riding inside the :class:`ModuleSummary` — like the flow
facts, effect seeds are computed once per file *content* (in the
multiprocessing workers) and served from the incremental cache on warm
runs.  The interprocedural layer (:mod:`repro.lint.effects.infer`) then
works over summaries only.

Shape (keys omitted when empty)::

    {"functions": {qualname: {
        "line": 10, "is_async": true, "annotation": "pure",
        "effects":   {kind: [{"line", "what"}, ...]},
        "calls":     [[dotted, line], ...],     # raw names, for the graph
        "scheduled": [[dotted, line], ...],     # fn args of call_at/after
        "self_writes": [[line, attr], ...]}}}   # non-birth self mutation

Call names in ``calls`` stay *raw* (resolution needs the whole-project
index); seed classification alias-normalises them first, so
``import time as t; t.monotonic()`` still seeds ``wall-clock``.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint import astutil
from repro.lint.effects.model import (
    ANNOTATION_RE,
    ENV_READ,
    ENV_READ_ATTRS,
    GLOBAL_MUTATION,
    SCHEDULE_TAILS_ALWAYS,
    SCHEDULE_TAILS_GUARDED,
    SIMISH_RE,
    TRACKED_MODULES,
    UNORDERED_OS_CALLS,
    UNORDERED_OS_TAILS,
    UNSTABLE_ITER,
    BLOCKING,
    classify_call,
)
from repro.lint.flow.facts import MUTATOR_TAILS, _walk_in_scope, blocking_dotted
from repro.lint.flow.locks import dotted

#: Methods where self-mutation is construction, not observable mutation.
BIRTH_METHODS = frozenset({"__init__", "__new__", "__post_init__", "__del__"})

#: Builtins whose result order follows the iterable's order — converting
#: a set through them bakes hash order into the output.
_ORDER_SENSITIVE_CONVERTERS = frozenset({"list", "tuple", "iter", "enumerate"})

#: Set-producing binary operators (``a | b`` on sets).
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Set methods returning sets.
_SET_PRODUCER_TAILS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Per-function caps keeping summaries (and the JSON cache) small.
_MAX_SITES = 8
_MAX_SELF_WRITES = 4


def _alias_maps(tree: ast.Module) -> tuple[dict[str, str], dict[str, str]]:
    """(module-alias map, from-import map) for the tracked stdlib set.

    ``{"t": "time"}`` for ``import time as t``; ``{"sleep":
    "time.sleep", "datetime": "datetime.datetime"}`` for from-imports.
    """
    mod_aliases: dict[str, str] = {}
    from_names: dict[str, str] = {}
    for module in TRACKED_MODULES:
        for alias in astutil.module_aliases(tree, module):
            # ``import os.path`` binds ``os`` — prefer the shortest
            # (head) module so ``os.path.join`` normalises unchanged.
            if alias not in mod_aliases or len(module) < len(mod_aliases[alias]):
                mod_aliases[alias] = module.split(".")[0] if alias == module.split(".")[0] else module
        for local, (_node, name) in astutil.from_imported(tree, module).items():
            from_names[local] = f"{module}.{name}"
    return mod_aliases, from_names


def _normalize(name: str, mod_aliases: dict, from_names: dict) -> str:
    parts = name.split(".")
    head = parts[0]
    if head in mod_aliases:
        return ".".join([mod_aliases[head]] + parts[1:])
    if head in from_names:
        return ".".join([from_names[head]] + parts[1:])
    return name


def _collect_functions(body, prefix, class_name, out):
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = prefix + stmt.name
            out.append((qualname, stmt, class_name))
            _collect_functions(stmt.body, f"{qualname}.", None, out)
        elif isinstance(stmt, ast.ClassDef):
            _collect_functions(stmt.body, f"{prefix}{stmt.name}.", stmt.name, out)
        elif isinstance(stmt, (ast.If, ast.Try, ast.With)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    _collect_functions([child], prefix, class_name, out)
                elif isinstance(child, ast.ExceptHandler):
                    _collect_functions(child.body, prefix, class_name, out)


def _local_names(func) -> frozenset:
    args = func.args
    names = {
        a.arg
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    }
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.add(extra.arg)
    for node in _walk_in_scope(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


def _param_names(func) -> frozenset:
    args = func.args
    names = {
        a.arg
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    }
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.add(extra.arg)
    return frozenset(names)


def _root_name(node: ast.AST) -> Optional[str]:
    """Base Name of an Attribute/Subscript chain (``a.b[c].d`` -> ``a``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _SetTracker:
    """Which expressions in one function are set-valued (shallowly)."""

    def __init__(self, func):
        self.setish_locals: set[str] = set()
        for node in _walk_in_scope(func):
            if isinstance(node, ast.Assign) and self.is_setish(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.setish_locals.add(target.id)

    def is_setish(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_PRODUCER_TAILS
                and self.is_setish(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.Name):
            return node.id in self.setish_locals
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_setish(node.left) or self.is_setish(node.right)
        return False


class _FunctionEffects:
    def __init__(self, qualname, func, class_name, mod_aliases, from_names, lines):
        self.qualname = qualname
        self.func = func
        self.class_name = class_name or (
            qualname.split(".")[0] if "." in qualname else None
        )
        self.method = qualname.split(".")[-1]
        self.mod_aliases = mod_aliases
        self.from_names = from_names
        self.lines = lines
        self.locals = _local_names(func)
        self.params = _param_names(func)
        self.globals_decl: set[str] = set()
        for node in _walk_in_scope(func):
            if isinstance(node, ast.Global):
                self.globals_decl.update(node.names)
        self.effects: dict[str, list[dict]] = {}
        self.calls: dict[str, int] = {}
        self.scheduled: list[list] = []
        self.self_writes: list[list] = []
        self.sets = _SetTracker(func)

    # -- recording ----------------------------------------------------------

    def seed(self, kind: str, line: int, what: str) -> None:
        sites = self.effects.setdefault(kind, [])
        if len(sites) < _MAX_SITES and not any(
            s["line"] == line and s["what"] == what for s in sites
        ):
            sites.append({"line": line, "what": what})

    # -- the walk -----------------------------------------------------------

    def extract(self) -> dict:
        for node in _walk_in_scope(self.func):
            if isinstance(node, ast.Call):
                self._call(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
                self._write(node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._iteration(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    self._iteration(gen.iter)
            elif isinstance(node, ast.Attribute):
                self._attr(node)

        record: dict = {"line": self.func.lineno}
        if isinstance(self.func, ast.AsyncFunctionDef):
            record["is_async"] = True
        annotation = self._annotation()
        if annotation:
            record["annotation"] = annotation
        if self.effects:
            record["effects"] = {
                kind: self.effects[kind] for kind in sorted(self.effects)
            }
        if self.calls:
            record["calls"] = sorted(
                [[name, line] for name, line in self.calls.items()]
            )
        if self.scheduled:
            record["scheduled"] = sorted(self.scheduled)
        if self.self_writes:
            record["self_writes"] = self.self_writes
        return record

    def _annotation(self) -> Optional[str]:
        if 1 <= self.func.lineno <= len(self.lines):
            match = ANNOTATION_RE.search(self.lines[self.func.lineno - 1])
            if match:
                return match.group(1)
        return None

    def _call(self, call: ast.Call) -> None:
        raw = dotted(call.func)
        if raw is None:
            return
        if raw not in self.calls:
            self.calls[raw] = call.lineno
        name = _normalize(raw, self.mod_aliases, self.from_names)
        argc = len(call.args)
        for kind, what in classify_call(name, argc):
            self.seed(kind, call.lineno, what)
        if blocking_dotted(name):
            self.seed(BLOCKING, call.lineno, f"{name}()")
        self._schedule(call, raw)
        self._mutator_call(call, raw)

    def _schedule(self, call: ast.Call, raw: str) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        tail = func.attr
        if tail in SCHEDULE_TAILS_ALWAYS:
            pass
        elif tail in SCHEDULE_TAILS_GUARDED:
            receiver = dotted(func.value)
            if receiver is None or not SIMISH_RE.search(receiver.split(".")[-1]):
                return
        else:
            return
        if len(call.args) < 2:
            return
        target = dotted(call.args[1])
        if target is not None and len(self.scheduled) < _MAX_SITES:
            self.scheduled.append([target, call.lineno])

    def _mutator_call(self, call: ast.Call, raw: str) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in MUTATOR_TAILS):
            return
        root = _root_name(func.value)
        if root is None:
            return
        self._mutation(root, raw, call.lineno, attr_depth=len(raw.split(".")) - 1)

    def _write(self, node) -> None:
        targets = node.targets if isinstance(node, (ast.Assign, ast.Delete)) else [node.target]
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    self._write_target(element, node.lineno)
                continue
            self._write_target(target, node.lineno)

    def _write_target(self, target: ast.AST, line: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_decl:
                self.seed(GLOBAL_MUTATION, line, f"writes global '{target.id}'")
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        root = _root_name(target)
        if root is None:
            return
        name = dotted(target) if isinstance(target, ast.Attribute) else None
        self._mutation(root, name or root, line, attr_depth=2)

    def _mutation(self, root: str, name: str, line: int, attr_depth: int) -> None:
        if root in ("self", "cls"):
            if (
                self.class_name
                and self.method not in BIRTH_METHODS
                and len(self.self_writes) < _MAX_SELF_WRITES
            ):
                attr = name.split(".")[1] if "." in name else name
                entry = [line, attr]
                if entry not in self.self_writes:
                    self.self_writes.append(entry)
            return
        if root in self.globals_decl:
            self.seed(GLOBAL_MUTATION, line, f"writes global '{root}'")
        elif root in self.mod_aliases or (
            root in self.from_names and "." not in self.from_names[root]
        ):
            self.seed(GLOBAL_MUTATION, line, f"mutates module state '{name}'")
        elif root in self.params:
            self.seed(GLOBAL_MUTATION, line, f"mutates argument '{name}'")
        elif root not in self.locals:
            # A free name: module-level object or imported binding.
            self.seed(GLOBAL_MUTATION, line, f"mutates module-level '{name}'")

    def _iteration(self, expr: ast.AST) -> None:
        if self.sets.is_setish(expr):
            self.seed(
                UNSTABLE_ITER,
                expr.lineno,
                "iterates a set (hash order); wrap in sorted()",
            )

    def _attr(self, node: ast.Attribute) -> None:
        name = dotted(node)
        if name is None:
            return
        normalized = _normalize(name, self.mod_aliases, self.from_names)
        if normalized in ENV_READ_ATTRS and isinstance(node.ctx, ast.Load):
            self.seed(ENV_READ, node.lineno, f"reads {normalized}")


def _unordered_os(tree_func, fn: "_FunctionEffects", parents: dict) -> None:
    """Seed unstable-iteration for OS-ordered listings not under sorted()."""
    for node in _walk_in_scope(tree_func):
        if not isinstance(node, ast.Call):
            continue
        raw = dotted(node.func)
        if raw is None:
            continue
        name = _normalize(raw, fn.mod_aliases, fn.from_names)
        tail = name.split(".")[-1]
        if name not in UNORDERED_OS_CALLS and tail not in UNORDERED_OS_TAILS:
            continue
        parent = parents.get(id(node))
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
        ):
            continue
        fn.seed(
            UNSTABLE_ITER,
            node.lineno,
            f"{name}() returns entries in OS order; wrap in sorted()",
        )


def _converter_sets(tree_func, fn: "_FunctionEffects") -> None:
    """``list(a_set)`` / ``tuple(a_set)`` bake hash order into a sequence."""
    for node in _walk_in_scope(tree_func):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Name):
            continue
        if node.func.id not in _ORDER_SENSITIVE_CONVERTERS or not node.args:
            continue
        if fn.sets.is_setish(node.args[0]):
            fn.seed(
                UNSTABLE_ITER,
                node.lineno,
                f"{node.func.id}() over a set (hash order); wrap in sorted()",
            )


def extract_effects(tree: ast.Module, source: str, module: str) -> dict:
    """The per-module effect-seed dict (see module docstring)."""
    mod_aliases, from_names = _alias_maps(tree)
    lines = source.splitlines()
    functions: list = []
    _collect_functions(tree.body, "", None, functions)

    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node

    func_records: dict[str, dict] = {}
    for qualname, func, class_name in functions:
        extractor = _FunctionEffects(
            qualname, func, class_name, mod_aliases, from_names, lines
        )
        record = extractor.extract()
        _unordered_os(func, extractor, parents)
        _converter_sets(func, extractor)
        if extractor.effects:
            record["effects"] = {
                kind: extractor.effects[kind] for kind in sorted(extractor.effects)
            }
        func_records[qualname] = record
    return {"functions": func_records} if func_records else {}
