"""The project-wide call graph over effect summaries.

Nodes are ``"module:qualname"`` strings (JSON-friendly, so the inferred
results can ride the project cache).  Edges come from the raw per-call
names recorded by :mod:`repro.lint.effects.extract`; resolution is a
layered best-effort:

* ``self.m`` / ``cls.m``     — method lookup through the class's MRO,
  bases resolved across modules via the import machinery;
* bare names                 — nested function-locals, module functions,
  re-export chains (``resolve_symbol``), then class constructors
  (``Cls(...)`` edges to ``Cls.__init__``);
* ``alias.f`` / ``alias.Cls``— through module aliases;
* ``Cls.m``                  — static/class-method calls on a class
  visible in the calling module;
* anything else              — a bounded class-hierarchy fallback: an
  attribute call on an unknown receiver resolves to *every* project
  method with that name (dunders excluded).  Over-approximate, which is
  the sound direction for effect propagation; receivers with more than
  ``cha_cap`` same-named candidates are treated as unresolved instead,
  because a truncated candidate list would be arbitrary and a 30-way
  fan-out is pure noise.

Scheduler registrations (``sim.call_after(delay, fn, ...)``) resolve the
``fn`` reference with the same machinery and become *scheduled-entry*
records rather than call edges — the DES dispatch loop invokes them
dynamically, so they are roots for ``nondet-in-sim``, not callees of
``Simulator.run``.
"""

from __future__ import annotations

from typing import Optional

#: Method names never resolved through the hierarchy fallback — dunder
#: calls on unknown receivers are almost always builtin protocol hits.
_CHA_EXCLUDED_PREFIX = "__"

#: Tails shared with the builtin container/str/buffer protocols, also
#: excluded from the fallback: ``self._signals.get(...)`` is a dict
#: read, and resolving it to every project class that happens to define
#: ``get`` (DES ``Store.get``, ``Container.get``) manufactures false
#: effect edges.  Project-distinctive polymorphism (``recv_bytes``,
#: ``execute_observed``) is unaffected.
_CHA_BUILTIN_TAILS = frozenset(
    {
        # dict
        "get", "setdefault", "update", "pop", "popitem", "clear",
        "keys", "values", "items", "copy", "fromkeys",
        # list
        "append", "extend", "insert", "remove", "sort", "reverse",
        "index", "count",
        # set
        "add", "discard", "union", "intersection", "difference",
        # str
        "join", "split", "rsplit", "strip", "lstrip", "rstrip",
        "replace", "format", "startswith", "endswith", "encode",
        "decode", "lower", "upper",
        # file-like buffers
        "readline", "readlines", "writelines", "flush", "seek",
        "tell", "getvalue",
    }
)


def node_key(module: str, qualname: str) -> str:
    return f"{module}:{qualname}"


def split_node(node: str) -> tuple[str, str]:
    module, _, qualname = node.partition(":")
    return module, qualname


def effect_functions(summary) -> dict:
    """The per-function effect records of one module summary."""
    return summary.effects.get("functions", {})


class CallGraph:
    """Resolved edges plus scheduled-entry records."""

    def __init__(self) -> None:
        self.nodes: set[str] = set()
        #: caller -> [(callee, call line), ...] deterministic order.
        self.edges: dict[str, list[tuple[str, int]]] = {}
        #: (registering function, scheduled target, registration line).
        self.scheduled: list[tuple[str, str, int]] = []

    def to_dict(self) -> dict:
        return {
            "nodes": sorted(self.nodes),
            "edges": {n: [list(e) for e in self.edges[n]] for n in sorted(self.edges)},
            "scheduled": sorted([list(rec) for rec in self.scheduled]),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallGraph":
        graph = cls()
        graph.nodes = set(data.get("nodes", []))
        graph.edges = {
            node: [tuple(edge) for edge in edges]
            for node, edges in data.get("edges", {}).items()
        }
        graph.scheduled = [tuple(rec) for rec in data.get("scheduled", [])]
        return graph


class CallResolver:
    """Resolves one raw dotted call name to project function nodes."""

    def __init__(self, index, *, cha_cap: int = 8):
        self.index = index
        self.cha_cap = cha_cap
        self._cha: Optional[dict[str, list[str]]] = None
        self._mro_memo: dict[tuple[str, str], list[tuple[str, str]]] = {}

    # -- summaries ----------------------------------------------------------

    def functions_of(self, module: str) -> dict:
        summary = self.index.summaries.get(module)
        return effect_functions(summary) if summary is not None else {}

    # -- class hierarchy ----------------------------------------------------

    def _resolve_base(self, module: str, base: str) -> Optional[tuple[str, str]]:
        """(defining module, class name) for one dotted base string."""
        parts = base.split(".")
        if len(parts) == 1:
            resolved = self.index.resolve_symbol(module, base)
            if resolved is not None:
                def_module, binding = resolved
                if binding["kind"] == "class":
                    return (def_module, binding["name"])
            return None
        head = ".".join(parts[:-1])
        target = self.index.module_alias(module, parts[0])
        if target is not None and len(parts) == 2:
            summary = self.index.summaries.get(target)
            if summary is not None and parts[1] in summary.classes:
                return (target, parts[1])
        if head in self.index.summaries:
            if parts[-1] in self.index.summaries[head].classes:
                return (head, parts[-1])
        return None

    def mro(self, module: str, cls: str) -> list[tuple[str, str]]:
        """The class plus its project-visible ancestors, nearest first."""
        key = (module, cls)
        memo = self._mro_memo.get(key)
        if memo is not None:
            return memo
        order: list[tuple[str, str]] = []
        seen: set[tuple[str, str]] = set()
        queue: list[tuple[str, str]] = [key]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            mod, name = current
            summary = self.index.summaries.get(mod)
            if summary is None or name not in summary.classes:
                continue
            order.append(current)
            for base in summary.classes[name]["bases"]:
                resolved = self._resolve_base(mod, base)
                if resolved is not None:
                    queue.append(resolved)
        self._mro_memo[key] = order
        return order

    def resolve_method(self, module: str, cls: str, method: str) -> Optional[str]:
        for mod, name in self.mro(module, cls):
            if f"{name}.{method}" in self.functions_of(mod):
                return node_key(mod, f"{name}.{method}")
        return None

    def _ctor(self, module: str, cls: str) -> list[str]:
        """``Cls(...)`` edges into ``__init__`` (through the MRO)."""
        target = self.resolve_method(module, cls, "__init__")
        return [target] if target is not None else []

    # -- hierarchy fallback --------------------------------------------------

    def _cha_index(self) -> dict[str, list[str]]:
        if self._cha is None:
            cha: dict[str, list[str]] = {}
            for module in sorted(self.index.summaries):
                summary = self.index.summaries[module]
                for qualname in sorted(effect_functions(summary)):
                    parts = qualname.split(".")
                    if len(parts) != 2 or parts[0] not in summary.classes:
                        continue
                    method = parts[1]
                    if method.startswith(_CHA_EXCLUDED_PREFIX):
                        continue
                    cha.setdefault(method, []).append(node_key(module, qualname))
            self._cha = cha
        return self._cha

    def _cha_lookup(self, method: str) -> list[str]:
        if method.startswith(_CHA_EXCLUDED_PREFIX) or method in _CHA_BUILTIN_TAILS:
            return []
        candidates = self._cha_index().get(method, [])
        if not candidates or len(candidates) > self.cha_cap:
            return []
        return list(candidates)

    # -- the entry point -----------------------------------------------------

    def resolve(self, module: str, qualname: str, name: str) -> list[str]:
        """Project nodes one raw dotted call/reference may invoke."""
        summary = self.index.summaries.get(module)
        if summary is None:
            return []
        functions = self.functions_of(module)
        parts = name.split(".")

        if parts[0] in ("self", "cls"):
            cls = qualname.split(".")[0]
            if cls not in summary.classes:
                return []
            if len(parts) == 2:
                target = self.resolve_method(module, cls, parts[1])
                # The receiver class is known: an unresolved method is
                # out of model, not a hierarchy-fallback candidate.
                return [target] if target is not None else []
            return self._cha_lookup(parts[-1])

        if len(parts) == 1:
            nested = f"{qualname}.{name}"
            if nested in functions:
                return [node_key(module, nested)]
            if name in functions:
                return [node_key(module, name)]
            if name in summary.classes:
                return self._ctor(module, name)
            resolved = self.index.resolve_symbol(module, name)
            if resolved is not None:
                def_module, binding = resolved
                if binding["kind"] == "def" and binding["name"] in self.functions_of(
                    def_module
                ):
                    return [node_key(def_module, binding["name"])]
                if binding["kind"] == "class":
                    return self._ctor(def_module, binding["name"])
            return []

        if len(parts) == 2:
            head, tail = parts
            if head in summary.classes:
                target = self.resolve_method(module, head, tail)
                return [target] if target is not None else []
            alias = self.index.module_alias(module, head)
            if alias is not None:
                if tail in self.functions_of(alias):
                    return [node_key(alias, tail)]
                alias_summary = self.index.summaries.get(alias)
                if alias_summary is not None and tail in alias_summary.classes:
                    return self._ctor(alias, tail)
                return []
            resolved = self.index.resolve_symbol(module, head)
            if resolved is not None and resolved[1]["kind"] == "class":
                target = self.resolve_method(resolved[0], resolved[1]["name"], tail)
                if target is not None:
                    return [target]
            return self._cha_lookup(tail)

        # a.b.c...: module-qualified class methods, else the fallback.
        alias = self.index.module_alias(module, parts[0])
        if alias is not None and len(parts) == 3:
            alias_summary = self.index.summaries.get(alias)
            if alias_summary is not None and parts[1] in alias_summary.classes:
                target = self.resolve_method(alias, parts[1], parts[2])
                return [target] if target is not None else []
        return self._cha_lookup(parts[-1])


def build_call_graph(index, *, cha_cap: int = 8) -> CallGraph:
    """Resolve every summary call record into one project graph."""
    resolver = CallResolver(index, cha_cap=cha_cap)
    graph = CallGraph()
    for module in sorted(index.summaries):
        for qualname in effect_functions(index.summaries[module]):
            graph.nodes.add(node_key(module, qualname))
    for module in sorted(index.summaries):
        functions = effect_functions(index.summaries[module])
        for qualname in sorted(functions):
            caller = node_key(module, qualname)
            rec = functions[qualname]
            edges: list[tuple[str, int]] = []
            seen: set[str] = set()
            for name, line in rec.get("calls", []):
                for callee in resolver.resolve(module, qualname, name):
                    if callee != caller and callee not in seen:
                        seen.add(callee)
                        edges.append((callee, line))
            if edges:
                graph.edges[caller] = edges
            for target, line in rec.get("scheduled", []):
                for callee in resolver.resolve(module, qualname, target):
                    graph.scheduled.append((caller, callee, line))
    graph.scheduled.sort()
    return graph


def strongly_connected(graph: CallGraph) -> list[list[str]]:
    """Tarjan's SCCs, iteratively, emitted callees-first.

    With caller→callee edges Tarjan pops an SCC only after every SCC
    reachable from it, so processing components in emission order means
    every callee's effects are final before its callers join them in —
    exactly the order the fixpoint in :mod:`repro.lint.effects.infer`
    wants.  Iterative so deep call chains cannot hit the recursion
    limit.
    """
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in sorted(graph.nodes):
        if root in index_of:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_i = work.pop()
            if edge_i == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            edges = graph.edges.get(node, [])
            advanced = False
            while edge_i < len(edges):
                callee = edges[edge_i][0]
                edge_i += 1
                if callee not in graph.nodes:
                    continue
                if callee not in index_of:
                    work.append((node, edge_i))
                    work.append((callee, 0))
                    advanced = True
                    break
                if callee in on_stack:
                    low[node] = min(low[node], index_of[callee])
            if advanced:
                continue
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs
