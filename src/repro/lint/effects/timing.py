"""Effects timing guard: the interprocedural pass must stay cheap.

``python -m repro.lint.effects.timing [paths] --budget 5`` runs only the
determinism rule pack twice in one process — once against an empty
cache, once warm — and fails unless:

* the warm run re-parsed **zero** files (effect seeds ride inside the
  cached module summaries),
* the warm run rebuilt **zero** call graphs (the inferred effects are
  served from the cache's project-digest tier),
* cold and warm produced byte-identical findings,
* the warm pass fits the wall-clock budget.

Like the other timing gates it runs in-process so the numbers reflect
the analyzer, not interpreter start-up; it is likewise on the
``wall-clock`` rule's allow list (it measures the linter itself).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import Optional

from repro.lint.config import load_config
from repro.lint.project.timing import measure

#: The determinism rule pack (docs/determinism.md), in gating order.
EFFECT_RULE_IDS = (
    "nondet-in-sim",
    "unstable-iter-order",
    "obs-hook-mutation",
    "effect-annotation-drift",
    "async-unsafe-call",
)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint-effects-timing",
        description="assert the effect-inference pass is cache-friendly and cheap",
    )
    parser.add_argument("paths", nargs="*", default=["src"])
    parser.add_argument(
        "--budget",
        type=float,
        default=5.0,
        help="warm-pass wall-clock budget in seconds (default 5)",
    )
    parser.add_argument("--warm-runs", type=int, default=3)
    args = parser.parse_args(argv)

    config = load_config(Path.cwd())
    paths = [Path(p) for p in args.paths]
    with tempfile.TemporaryDirectory(prefix="repro-lint-effects-timing-") as tmp:
        result = measure(
            paths,
            config,
            Path(tmp) / "cache.json",
            warm_runs=args.warm_runs,
            select=list(EFFECT_RULE_IDS),
        )

    print(
        f"effects pass over {result['files']} files: "
        f"cold {result['cold_seconds']:.3f}s ({result['cold_parsed']} parsed, "
        f"{result['cold_effects_built']} graphs built), "
        f"warm {result['warm_seconds']:.3f}s ({result['warm_parsed']} parsed, "
        f"{result['warm_effects_built']} graphs built)"
    )
    failed = False
    if not result["identical"]:
        print("FAIL: warm findings differ from cold findings", file=sys.stderr)
        failed = True
    if result["warm_parsed"] != 0:
        print(
            f"FAIL: warm run re-parsed {result['warm_parsed']} files "
            "(effect seeds must come from the summary cache)",
            file=sys.stderr,
        )
        failed = True
    if result["warm_effects_built"] != 0:
        print(
            f"FAIL: warm run rebuilt {result['warm_effects_built']} call "
            "graphs (inferred effects must come from the digest tier)",
            file=sys.stderr,
        )
        failed = True
    if result["warm_seconds"] > args.budget:
        print(
            f"FAIL: warm pass took {result['warm_seconds']:.3f}s > budget "
            f"{args.budget:.3f}s",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
