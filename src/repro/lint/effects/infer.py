"""Interprocedural effect inference: the SCC-condensed fixpoint.

The effect of one function is the union of its local seeds
(:mod:`repro.lint.effects.extract`) and the effects of everything it
calls (:mod:`repro.lint.effects.callgraph`).  Over the powerset lattice
this is a monotone fixpoint; processing Tarjan components callees-first
makes every component's inputs final before it runs, and within a
component members iterate to their shared fixpoint (for a union lattice
that is simply the component-wide union).

For every ``(function, kind)`` pair the inference records one *cause* —
either the local seed site or the call edge that imported the effect.
Causes are recorded once, pointing at a function that already had the
kind, so cause chains are acyclic by construction and
:meth:`EffectIndex.witness` can walk them into a cross-file call-chain
witness (rendered as SARIF ``codeFlows``).

The whole inference result is cached in the project cache keyed on a
*project digest* — the hash of every module's content hash plus the
inference options — so warm runs deserialize instead of rebuilding the
graph: that is what the ``python -m repro.lint.effects.timing`` CI gate
asserts via the ``effects_built``/``effects_reused`` counters.
"""

from __future__ import annotations

import hashlib
import json
from fnmatch import fnmatch
from typing import Optional

from repro.lint.effects.callgraph import (
    CallGraph,
    build_call_graph,
    effect_functions,
    split_node,
    strongly_connected,
)

#: Functions assumed effect-free regardless of their bodies: the
#: sanctioned clock boundary.  ``repro.core.clock`` *is* the wall-clock
#: abstraction (``SystemClock`` reads the OS on purpose; every sim path
#: receives a ``SimClock``) and ``repro.des.realtime`` is the explicit
#: real-time pacing adapter.  Listing them here keeps the hierarchy
#: fallback from resolving ``self._clock.now()`` to ``SystemClock.now``
#: and poisoning every sim path with a false wall-clock effect.
DEFAULT_ASSUME_PURE = (
    "repro.core.clock:*",
    "repro.des.realtime:*",
)

#: Hierarchy-fallback candidate bound (see ``callgraph.CallResolver``).
DEFAULT_CHA_CAP = 8


def inference_options(config) -> dict:
    """The ``[tool.repro-lint.effects]`` options with defaults applied."""
    options = dict(config.rule_options.get("effects", {}))
    options.setdefault("assume-pure", list(DEFAULT_ASSUME_PURE))
    options.setdefault("barrier", [])
    options.setdefault("cha-cap", DEFAULT_CHA_CAP)
    return options


def effects_digest(module_sha: dict[str, str], options: dict) -> str:
    """Any file or option change must invalidate the inferred effects."""
    hasher = hashlib.sha256()
    for module in sorted(module_sha):
        hasher.update(f"{module}={module_sha[module]};".encode("utf-8"))
    hasher.update(json.dumps(options, sort_keys=True).encode("utf-8"))
    return hasher.hexdigest()


class EffectIndex:
    """Queryable result of one inference run (built or deserialized)."""

    def __init__(
        self,
        index,
        effects: dict[str, dict],
        mutating_callees: dict[str, list],
        scheduled: list,
    ):
        self._index = index
        #: node -> {kind: cause}; cause is ``{"t": "seed", "line", "what"}``
        #: or ``{"t": "call", "callee", "line"}``.
        self.effects = effects
        #: node -> [[callee, line], ...] for callees that mutate their
        #: own instance state (the obs read-only rule's raw material).
        self.mutating_callees = mutating_callees
        #: [[registering node, target node, line], ...].
        self.scheduled = scheduled

    # -- queries -------------------------------------------------------------

    def effects_of(self, node: str) -> dict:
        return self.effects.get(node, {})

    def nodes(self) -> list[str]:
        return sorted(self.effects)

    def record(self, node: str) -> dict:
        """The summary-side function record behind one node."""
        module, qualname = split_node(node)
        summary = self._index.summaries.get(module)
        if summary is None:
            return {}
        return effect_functions(summary).get(qualname, {})

    def path_of(self, node: str) -> str:
        module, _ = split_node(node)
        summary = self._index.summaries.get(module)
        return summary.path if summary is not None else module

    def witness(self, node: str, kind: str) -> list[tuple[int, str, str]]:
        """Cause-chain steps ``(line, note, path)`` from ``node`` down to
        the primitive seed of ``kind`` (cross-file: each step carries its
        own path, which the SARIF writer renders per location)."""
        steps: list[tuple[int, str, str]] = []
        seen: set[str] = set()
        current = node
        while current not in seen:
            seen.add(current)
            cause = self.effects.get(current, {}).get(kind)
            if cause is None:
                break
            path = self.path_of(current)
            if cause["t"] == "seed":
                steps.append((cause["line"], cause["what"], path))
                break
            callee = cause["callee"]
            _, callee_qual = split_node(callee)
            steps.append((cause["line"], f"calls {callee_qual}()", path))
            current = callee
        return steps

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "effects": self.effects,
            "mutating_callees": self.mutating_callees,
            "scheduled": [list(rec) for rec in self.scheduled],
        }

    @classmethod
    def from_dict(cls, index, data: dict) -> "EffectIndex":
        return cls(
            index,
            data.get("effects", {}),
            data.get("mutating_callees", {}),
            [tuple(rec) for rec in data.get("scheduled", [])],
        )


def _propagate(
    graph: CallGraph, seeds: dict[str, dict], pure: set[str], barrier: set[str]
) -> None:
    """Join callee effects into callers, in place, to the fixpoint."""
    for component in strongly_connected(graph):
        members = set(component)
        changed = True
        while changed:
            changed = False
            for node in component:
                if node in pure:
                    continue
                mine = seeds[node]
                for callee, line in graph.edges.get(node, []):
                    if callee in barrier:
                        continue
                    for kind in seeds.get(callee, {}):
                        if kind not in mine:
                            mine[kind] = {"t": "call", "callee": callee, "line": line}
                            changed = True
            # Only intra-component edges can still move anything; a
            # singleton without a self-loop converges in one pass.
            if len(members) == 1:
                break


def infer_effects(index, options: Optional[dict] = None) -> EffectIndex:
    """Build the call graph and run the fixpoint (the cold path)."""
    options = options if options is not None else inference_options(index.config)
    assume_pure = tuple(options.get("assume-pure", ()))
    graph = build_call_graph(index, cha_cap=int(options.get("cha-cap", DEFAULT_CHA_CAP)))

    pure = {
        node
        for node in graph.nodes
        if any(fnmatch(node, pattern) for pattern in assume_pure)
    }
    # Barrier functions keep their own seeds (rules targeting them
    # directly still fire) but callers do not inherit them: the
    # canonical use is a dispatch seam like the Connection protocol,
    # where the hierarchy fallback resolves ``conn.recv_bytes()`` to
    # every implementation while the sim wiring only ever injects the
    # in-memory one.
    barrier = {
        node
        for node in graph.nodes
        if any(fnmatch(node, pattern) for pattern in options.get("barrier", ()))
    }

    effects: dict[str, dict] = {}
    for node in graph.nodes:
        module, qualname = split_node(node)
        rec = effect_functions(index.summaries[module]).get(qualname, {})
        mine: dict[str, dict] = {}
        if node not in pure:
            for kind, sites in rec.get("effects", {}).items():
                site = sites[0]
                mine[kind] = {"t": "seed", "line": site["line"], "what": site["what"]}
        effects[node] = mine

    _propagate(graph, effects, pure, barrier)

    mutating: dict[str, list] = {}
    for node in graph.nodes:
        if node in pure:
            continue
        hits = []
        for callee, line in graph.edges.get(node, []):
            if callee in pure or callee in barrier:
                continue
            callee_module, callee_qual = split_node(callee)
            callee_rec = effect_functions(
                index.summaries[callee_module]
            ).get(callee_qual, {})
            if callee_rec.get("self_writes"):
                hits.append([callee, line])
        if hits:
            mutating[node] = hits

    return EffectIndex(index, effects, mutating, list(graph.scheduled))


def effect_index(index) -> EffectIndex:
    """The (memoized, cached) effect index of one project index.

    All five effect rules run against the same project index within one
    lint invocation, so the result is memoized on the index; across
    invocations it is served from the project cache when the project
    digest (content hashes + options) matches.
    """
    memo = getattr(index, "_effects_index", None)
    if memo is not None:
        return memo

    options = inference_options(index.config)
    digest = None
    if index.cache is not None and index.module_sha:
        digest = effects_digest(index.module_sha, options)
        cached = index.cache.effects_for(digest)
        if cached is not None:
            result = EffectIndex.from_dict(index, cached)
            index.stats.effects_reused += 1
            index._effects_index = result
            return result

    result = infer_effects(index, options)
    index.stats.effects_built += 1
    if index.cache is not None and digest is not None:
        index.cache.store_effects(digest, result.to_dict())
    index._effects_index = result
    return result
