"""The determinism rule pack over inferred effects.

Five project rules riding the :mod:`repro.lint.effects.infer` fixpoint
(see ``docs/determinism.md`` for the contract they enforce):

* ``nondet-in-sim``          — no wall-clock / OS-entropy / real-io
  effect reachable from a sim-critical entry: DES-scheduled callbacks,
  trace/VCD/export emission, chaos ``fingerprint()``/``stream()``.
  Findings carry the cross-file call-chain witness as a SARIF codeFlow.
* ``unstable-iter-order``    — no hash-ordered or OS-ordered iteration
  reachable from trace/codec/fingerprint sinks (byte-stable goldens).
* ``obs-hook-mutation``      — the observability layer stays read-only:
  no global/argument mutation inside ``repro.obs``, and no calls from
  obs code into project methods that mutate their own state.
* ``effect-annotation-drift``— ``# lint: effect=pure|sim-safe`` def-line
  annotations are *verified* against the inference, never trusted.
* ``async-unsafe-call``      — coroutines must not transitively block
  or spawn threads (armed ahead of the asyncio front-end; direct
  blocking calls stay with the flow pack's ``async-blocking``).

All rules consume the inference result only — sources are never
re-read — so a warm run serves them entirely from the project cache.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Iterator

from repro.lint.effects.infer import effect_index
from repro.lint.effects.model import (
    BLOCKING,
    GLOBAL_MUTATION,
    NONDET_KINDS,
    SIM_SAFE_FORBIDDEN,
    THREAD_SPAWN,
    UNSTABLE_ITER,
)
from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register


def _node_module(node: str) -> str:
    return node.partition(":")[0]


def _node_qual(node: str) -> str:
    return node.partition(":")[2]


class _EffectRule(ProjectRule):
    """Shared scaffolding: options, allow-listing, witness rendering."""

    def _allowed(self, node: str) -> bool:
        return any(fnmatch(node, pattern) for pattern in self.options.get("allow", ()))

    def _witness_flow(self, effects, node: str, kind: str, head=None) -> list:
        steps = list(head or [])
        steps.extend(
            [line, note, path] for line, note, path in effects.witness(node, kind)
        )
        return steps

    def _seed_what(self, effects, node: str, kind: str) -> str:
        chain = effects.witness(node, kind)
        return chain[-1][1] if chain else kind


@register
class NondetInSimRule(_EffectRule):
    id = "nondet-in-sim"
    summary = (
        "no wall-clock, OS-entropy or real-I/O effect may be reachable "
        "from DES-scheduled callbacks, trace/VCD emission or chaos "
        "fingerprint paths — sim runs must replay bit-for-bit"
    )

    #: Sim-critical entry functions beyond scheduled callbacks.  The
    #: tracer/VCD/export writers produce the byte-stable goldens, and a
    #: chaos plan's stream/fingerprint pair is what makes fault runs
    #: replayable.
    default_entries = (
        "repro.des.simulator:Simulator.*",
        "repro.des.scheduler:*",
        "repro.obs.tracer:*",
        "repro.obs.vcd:*",
        "repro.obs.export:*",
        "repro.chaos.plan:FaultPlan.stream",
        "repro.chaos.plan:FaultPlan.fingerprint",
    )

    def check(self, index) -> Iterator[Finding]:
        effects = effect_index(index)
        entries = tuple(self.options.get("entries", self.default_entries))
        reported: set[tuple[str, str]] = set()

        # Scheduled callbacks: report at the registration site, where
        # the nondeterministic target enters the simulator.
        for caller, target, line in effects.scheduled:
            if not self.in_scope(_node_module(caller)) or self._allowed(target):
                continue
            for kind in sorted(NONDET_KINDS & set(effects.effects_of(target))):
                if (target, kind) in reported:
                    continue
                reported.add((target, kind))
                head = [
                    [line, f"{_node_qual(target)} scheduled here", effects.path_of(caller)]
                ]
                yield self.finding_at(
                    effects.path_of(caller),
                    line,
                    f"scheduled callback {_node_qual(target)} has a {kind} "
                    f"effect ({self._seed_what(effects, target, kind)}); "
                    "sim-scheduled code must be deterministic — inject the "
                    "sim clock / a seeded stream instead",
                    code_flow=self._witness_flow(effects, target, kind, head),
                )

        for node in effects.nodes():
            if not self.in_scope(_node_module(node)) or self._allowed(node):
                continue
            if not any(fnmatch(node, pattern) for pattern in entries):
                continue
            rec = effects.record(node)
            for kind in sorted(NONDET_KINDS & set(effects.effects_of(node))):
                if (node, kind) in reported:
                    continue
                reported.add((node, kind))
                yield self.finding_at(
                    effects.path_of(node),
                    rec.get("line", 1),
                    f"sim-critical entry {_node_qual(node)} reaches a "
                    f"{kind} effect "
                    f"({self._seed_what(effects, node, kind)}); replayed "
                    "runs will diverge — inject the sim clock / a seeded "
                    "stream instead",
                    code_flow=self._witness_flow(effects, node, kind),
                )


@register
class UnstableIterOrderRule(_EffectRule):
    id = "unstable-iter-order"
    summary = (
        "no set/OS-ordered iteration may feed trace, codec or "
        "fingerprint sinks — golden artifacts must be byte-stable; "
        "wrap the iterable in sorted()"
    )

    default_entries = (
        "repro.obs.tracer:*",
        "repro.obs.vcd:*",
        "repro.obs.export:*",
        "repro.core.xmlcodec:*",
        "repro.chaos.plan:FaultPlan.*",
    )

    def check(self, index) -> Iterator[Finding]:
        effects = effect_index(index)
        entries = tuple(self.options.get("entries", self.default_entries))
        seen_seeds: set[tuple] = set()
        for node in effects.nodes():
            if not self.in_scope(_node_module(node)) or self._allowed(node):
                continue
            if not any(fnmatch(node, pattern) for pattern in entries):
                continue
            if UNSTABLE_ITER not in effects.effects_of(node):
                continue
            chain = effects.witness(node, UNSTABLE_ITER)
            seed = chain[-1] if chain else None
            if seed is None or (seed[2], seed[0]) in seen_seeds:
                continue
            seen_seeds.add((seed[2], seed[0]))
            yield self.finding_at(
                seed[2],
                seed[0],
                f"{seed[1]} — this iteration order reaches the "
                f"byte-stable sink {_node_qual(node)}",
                code_flow=[[line, note, path] for line, note, path in chain],
            )


@register
class ObsHookMutationRule(_EffectRule):
    id = "obs-hook-mutation"
    summary = (
        "observability code (repro.obs) must stay read-only: no "
        "global/argument mutation, and no calls into methods that "
        "mutate core state"
    )

    #: Module prefixes that make up the read-only observability layer.
    default_layers = ("repro.obs",)

    @staticmethod
    def _in_layers(module: str, layers: tuple) -> bool:
        return any(
            module == layer or module.startswith(layer + ".") for layer in layers
        )

    def _layer_mutation(self, effects, node: str, layers: tuple):
        """The node's global-mutation cause, but only when the whole
        cause chain down to the seed stays inside the obs layers — a
        mutation that happens inside a *core* callee is that callee's
        own contract (and the call into it, if it mutates instance
        state, is the mutating-callee finding below), not an obs one."""
        seen: set[str] = set()
        current = node
        while current not in seen:
            seen.add(current)
            cause = effects.effects_of(current).get(GLOBAL_MUTATION)
            if cause is None:
                return None
            if cause["t"] == "seed":
                return effects.effects_of(node).get(GLOBAL_MUTATION)
            callee = cause["callee"]
            if not self._in_layers(_node_module(callee), layers):
                return None
            current = callee
        return None

    def check(self, index) -> Iterator[Finding]:
        effects = effect_index(index)
        layers = tuple(self.options.get("layers", self.default_layers))
        for node in effects.nodes():
            module = _node_module(node)
            if not self.in_scope(module) or self._allowed(node):
                continue
            if not self._in_layers(module, layers):
                continue
            rec = effects.record(node)
            cause = self._layer_mutation(effects, node, layers)
            if cause is not None:
                line = cause["line"] if cause["t"] == "seed" else rec.get("line", 1)
                yield self.finding_at(
                    effects.path_of(node),
                    line,
                    f"{_node_qual(node)} mutates state outside its own "
                    f"instance ({self._seed_what(effects, node, GLOBAL_MUTATION)}); "
                    "the observability layer must only read",
                    code_flow=self._witness_flow(effects, node, GLOBAL_MUTATION),
                )
            for callee, line in effects.mutating_callees.get(node, []):
                if self._in_layers(_node_module(callee), layers):
                    continue
                if self._allowed(callee):
                    continue
                yield self.finding_at(
                    effects.path_of(node),
                    line,
                    f"{_node_qual(node)} calls {_node_qual(callee)}(), "
                    "which mutates its instance state; observability "
                    "hooks must not drive core-state changes",
                )


@register
class EffectAnnotationDriftRule(_EffectRule):
    id = "effect-annotation-drift"
    summary = (
        "'# lint: effect=pure|sim-safe' def-line annotations are "
        "checked against the inferred effects — an annotation that "
        "drifts from reality is worse than none"
    )

    def check(self, index) -> Iterator[Finding]:
        effects = effect_index(index)
        for node in effects.nodes():
            if not self.in_scope(_node_module(node)) or self._allowed(node):
                continue
            rec = effects.record(node)
            annotation = rec.get("annotation")
            if annotation is None:
                continue
            forbidden = (
                set(effects.effects_of(node))
                if annotation == "pure"
                else SIM_SAFE_FORBIDDEN & set(effects.effects_of(node))
            )
            for kind in sorted(forbidden):
                yield self.finding_at(
                    effects.path_of(node),
                    rec.get("line", 1),
                    f"{_node_qual(node)} is annotated effect={annotation} "
                    f"but has an inferred {kind} effect "
                    f"({self._seed_what(effects, node, kind)}); fix the "
                    "function or drop the annotation",
                    code_flow=self._witness_flow(effects, node, kind),
                )


@register
class AsyncUnsafeCallRule(_EffectRule):
    id = "async-unsafe-call"
    summary = (
        "coroutines must not transitively block the event loop or "
        "spawn OS threads — armed ahead of the asyncio wire front-end"
    )

    def check(self, index) -> Iterator[Finding]:
        effects = effect_index(index)
        for node in effects.nodes():
            if not self.in_scope(_node_module(node)) or self._allowed(node):
                continue
            rec = effects.record(node)
            if not rec.get("is_async"):
                continue
            node_effects = effects.effects_of(node)
            blocking = node_effects.get(BLOCKING)
            # Direct blocking seeds are async-blocking's (the flow
            # pack's) findings; this rule adds the transitive closure.
            if blocking is not None and blocking["t"] == "call":
                yield self.finding_at(
                    effects.path_of(node),
                    blocking["line"],
                    f"async def {_node_qual(node)} calls "
                    f"{_node_qual(blocking['callee'])}(), which blocks "
                    f"(via {self._seed_what(effects, node, BLOCKING)}); "
                    "it stalls the event loop",
                    code_flow=self._witness_flow(effects, node, BLOCKING),
                )
            spawn = node_effects.get(THREAD_SPAWN)
            if spawn is not None:
                line = spawn["line"]
                yield self.finding_at(
                    effects.path_of(node),
                    line,
                    f"async def {_node_qual(node)} spawns OS-scheduled "
                    f"work ({self._seed_what(effects, node, THREAD_SPAWN)}); "
                    "hand it to the loop's executor instead",
                    code_flow=self._witness_flow(effects, node, THREAD_SPAWN),
                )
