"""The effect lattice and the curated seed tables.

An *effect* is an observable a function may produce that the simulated
stack must keep away from sim-critical paths.  Effects form a powerset
lattice over eight kinds (join is set union), so interprocedural
propagation is a monotone fixpoint:

``wall-clock``
    Reads the OS clock (``time.*``, ``datetime.now`` family).
``os-entropy``
    Draws from unseeded OS randomness (module-level ``random.*``,
    ``os.urandom``, ``secrets``, ``uuid.uuid1/uuid4``).
``real-io``
    Talks to the world: sockets, subprocesses, ``select``, raw fd I/O.
    Writing to an injected file object is *not* real-io — that is how
    the tracer emits deterministically.
``thread-spawn``
    Creates threads/processes/executors (scheduling is OS-dependent).
``env-read``
    Reads host identity: ``os.environ``, ``sys.argv``, ``platform``,
    pids, hostnames, CPU counts.
``global-mutation``
    Writes state that outlives the call and is not ``self``: module
    globals, foreign-module attributes, or attributes of arguments.
``unstable-iteration``
    Iterates a hash-ordered or OS-ordered collection (sets,
    ``os.listdir``/``glob``) without ``sorted()``.
``blocking``
    May park the calling thread (the flow pack's curated primitives).

Seed classification is *name-based over alias-normalised dotted calls*:
extraction rewrites ``import time as t; t.monotonic()`` to
``time.monotonic`` before consulting these tables, so the tables stay
alias-free.  A seeded ``random.Random(seed)`` instance is deliberately
not entropy — drawing from it is the repo's sanctioned determinism
idiom (``repro.des.random_streams``).
"""

from __future__ import annotations

import re
from typing import Optional

from repro.lint.rules.wall_clock import DATETIME_ATTRS, TIME_ATTRS

WALL_CLOCK = "wall-clock"
OS_ENTROPY = "os-entropy"
REAL_IO = "real-io"
THREAD_SPAWN = "thread-spawn"
ENV_READ = "env-read"
GLOBAL_MUTATION = "global-mutation"
UNSTABLE_ITER = "unstable-iteration"
BLOCKING = "blocking"

ALL_KINDS = (
    WALL_CLOCK,
    OS_ENTROPY,
    REAL_IO,
    THREAD_SPAWN,
    ENV_READ,
    GLOBAL_MUTATION,
    UNSTABLE_ITER,
    BLOCKING,
)

#: Kinds that make a run irreproducible outright — what ``nondet-in-sim``
#: forbids below scheduler/trace/fingerprint entries.
NONDET_KINDS = frozenset({WALL_CLOCK, OS_ENTROPY, REAL_IO})

#: What a ``# lint: effect=sim-safe`` annotation promises the function
#: (and its callees) never do.
SIM_SAFE_FORBIDDEN = frozenset({WALL_CLOCK, OS_ENTROPY, REAL_IO, BLOCKING})

#: Stdlib modules whose aliases extraction normalises before lookup.
TRACKED_MODULES = (
    "time",
    "datetime",
    "random",
    "os",
    "os.path",
    "sys",
    "secrets",
    "uuid",
    "socket",
    "subprocess",
    "select",
    "selectors",
    "platform",
    "threading",
    "multiprocessing",
    "concurrent.futures",
    "glob",
)

#: Module-level ``random`` draws (entropy unless the module was seeded —
#: statically unknowable, so over-approximated as entropy; the sanctioned
#: idiom is a seeded ``random.Random`` instance, which never matches).
RANDOM_DRAWS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Exact dotted names that are entropy regardless of arguments.
ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "random.SystemRandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Exact dotted names that reach the real world.
REAL_IO_CALLS = frozenset(
    {
        "socket.socket",
        "socket.create_connection",
        "socket.create_server",
        "socket.socketpair",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "socket.gethostbyaddr",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "select.select",
        "select.poll",
        "select.epoll",
        "selectors.DefaultSelector",
        "os.read",
        "os.write",
        "os.pipe",
        "os.popen",
        "os.system",
        "os.fork",
    }
)

#: Method tails that are socket I/O on any receiver (no other common
#: Python object spells these).
SOCKET_TAILS_ALWAYS = frozenset({"sendall", "sendto", "recvfrom", "recv_into"})

#: Method tails that are socket I/O only on a socket-looking receiver —
#: ``conn.recv`` in the real-socket server counts, a simulated
#: ``link.connect`` does not.
SOCKET_TAILS_GUARDED = frozenset({"recv", "accept", "bind", "listen"})

SOCKISH_RE = re.compile(r"(sock|socket|listener)", re.IGNORECASE)

#: Thread/process/executor constructors (``threading.Timer`` included:
#: unlike the flow pack's lifecycle rule, *any* OS-scheduled execution
#: is nondeterministic relative to sim time).
THREAD_SPAWN_CALLS = frozenset(
    {
        "threading.Thread",
        "threading.Timer",
        "multiprocessing.Process",
        "multiprocessing.Pool",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
    }
)

#: Host-identity reads (calls).
ENV_READ_CALLS = frozenset(
    {
        "os.getenv",
        "os.getcwd",
        "os.getpid",
        "os.getppid",
        "os.uname",
        "os.cpu_count",
        "os.getlogin",
        "platform.system",
        "platform.node",
        "platform.machine",
        "platform.platform",
        "platform.python_version",
        "platform.release",
        "socket.gethostname",
        "socket.getfqdn",
    }
)

#: Host-identity reads (plain attribute access, no call needed).
ENV_READ_ATTRS = frozenset({"os.environ", "sys.argv", "sys.platform"})

#: OS-ordered listing calls — unstable unless wrapped in ``sorted()``.
UNORDERED_OS_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Method tail for ``Path.iterdir()`` — OS-ordered on any receiver.
UNORDERED_OS_TAILS = frozenset({"iterdir"})

#: ``# lint: effect=pure`` / ``# lint: effect=sim-safe`` on the def line.
ANNOTATION_RE = re.compile(r"#\s*lint:\s*effect=(pure|sim-safe)\b")

#: Scheduler registration tails: ``fn`` is the second positional arg.
#: ``call_at``/``call_after`` are distinctive; bare ``at``/``after``
#: additionally need a simulator-looking receiver.
SCHEDULE_TAILS_ALWAYS = frozenset({"call_at", "call_after"})
SCHEDULE_TAILS_GUARDED = frozenset({"at", "after"})
SIMISH_RE = re.compile(r"(sim|sched|env)", re.IGNORECASE)


def classify_call(name: str, argc: int) -> list[tuple[str, str]]:
    """Effect seeds of one alias-normalised dotted call.

    ``argc`` is the positional-argument count — ``random.seed()`` with
    no argument seeds from the OS, ``random.seed(x)`` is deterministic.
    Returns ``[(kind, what), ...]`` (one call can seed several kinds:
    ``time.sleep`` is wall-clock *and* blocking).
    """
    seeds: list[tuple[str, str]] = []
    parts = name.split(".")
    head, tail = parts[0], parts[-1]

    if head == "time" and len(parts) == 2 and tail in TIME_ATTRS:
        seeds.append((WALL_CLOCK, f"{name}()"))
    elif head == "datetime" and tail in DATETIME_ATTRS and len(parts) == 3:
        if parts[1] in ("datetime", "date"):
            seeds.append((WALL_CLOCK, f"{name}()"))

    if head == "random" and len(parts) == 2:
        if tail in RANDOM_DRAWS:
            seeds.append((OS_ENTROPY, f"{name}()"))
        elif tail == "seed" and argc == 0:
            seeds.append((OS_ENTROPY, "random.seed() with no arguments"))
    if name in ENTROPY_CALLS or head == "secrets":
        seeds.append((OS_ENTROPY, f"{name}()"))

    if name in REAL_IO_CALLS:
        seeds.append((REAL_IO, f"{name}()"))
    elif len(parts) > 1 and tail in SOCKET_TAILS_ALWAYS:
        seeds.append((REAL_IO, f"socket {tail}() via {name}"))
    elif (
        len(parts) > 1
        and tail in SOCKET_TAILS_GUARDED
        and SOCKISH_RE.search(parts[-2])
    ):
        seeds.append((REAL_IO, f"socket {tail}() via {name}"))

    if name in THREAD_SPAWN_CALLS:
        seeds.append((THREAD_SPAWN, f"{name}()"))

    if name in ENV_READ_CALLS:
        seeds.append((ENV_READ, f"{name}()"))

    return seeds
