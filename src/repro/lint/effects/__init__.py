"""Interprocedural effect & determinism analysis (docs/determinism.md).

The effects layer turns the repo's determinism guarantees — byte-stable
golden traces, run-twice equality, replayable chaos plans — from
test-coverage luck into statically checked invariants:

* :mod:`repro.lint.effects.model`     — the effect lattice (eight kinds)
  and the curated seed tables that map stdlib calls to effects;
* :mod:`repro.lint.effects.extract`   — per-function effect seeds, call
  sites, scheduler registrations and ``# lint: effect=`` annotations,
  distilled during summarisation so they ride the incremental cache;
* :mod:`repro.lint.effects.callgraph` — the project-wide call graph:
  method resolution through class bases (MRO), aliased imports and
  function-locals, with a bounded class-hierarchy fallback for dynamic
  dispatch;
* :mod:`repro.lint.effects.infer`     — SCC-condensed fixpoint
  propagation of effects over the call graph, with cause links for
  call-chain witnesses, cached across runs keyed on a project digest;
* :mod:`repro.lint.effects.rules`     — the five project rules
  (``nondet-in-sim``, ``unstable-iter-order``, ``obs-hook-mutation``,
  ``effect-annotation-drift``, ``async-unsafe-call``);
* :mod:`repro.lint.effects.timing`    — the CI gate asserting the warm
  pass parses no files and rebuilds no call graphs.
"""

from repro.lint.effects.model import (  # noqa: F401
    ALL_KINDS,
    BLOCKING,
    ENV_READ,
    GLOBAL_MUTATION,
    NONDET_KINDS,
    OS_ENTROPY,
    REAL_IO,
    THREAD_SPAWN,
    UNSTABLE_ITER,
    WALL_CLOCK,
)
