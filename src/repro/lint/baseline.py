"""Baseline mode: record today's findings, fail only on new ones.

Large rules (like the interprocedural effect pack) can land before
every historical finding is fixed: ``--update-baseline`` snapshots the
current findings into a JSON file, and subsequent runs with
``--baseline <file>`` report and gate only on findings *not* in the
snapshot.  The file is meant to shrink over time and be deleted.

Keys are ``(path, rule, message)`` **without line numbers**, counted as
a multiset — editing an unrelated part of a file moves line numbers but
must not resurrect baselined findings, while adding a *second* instance
of an already-baselined message in the same file is still new.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.lint.errors import LintError
from repro.lint.findings import Finding

BASELINE_VERSION = 1


def finding_key(finding: Finding) -> str:
    return f"{finding.path}::{finding.rule}::{finding.message}"


def load_baseline(path: Path) -> Counter:
    """The baselined multiset; a missing or damaged file is a usage
    error (a silently-empty baseline would fail the whole run)."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if (
        not isinstance(data, dict)
        or data.get("version") != BASELINE_VERSION
        or not isinstance(data.get("findings"), dict)
    ):
        raise LintError(
            f"baseline {path} has an unrecognised format "
            f"(expected version {BASELINE_VERSION}; regenerate with "
            "--update-baseline)"
        )
    counts: Counter = Counter()
    for key, count in data["findings"].items():
        if isinstance(key, str) and isinstance(count, int) and count > 0:
            counts[key] = count
    return counts


def save_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Snapshot ``findings``; returns how many were recorded."""
    counts = Counter(finding_key(f) for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    except OSError as exc:
        raise LintError(f"cannot write baseline {path}: {exc}") from exc
    return sum(counts.values())


def filter_new(findings: list[Finding], baseline: Counter) -> list[Finding]:
    """Findings not covered by the baseline multiset (order preserved).

    Consumes baseline entries one occurrence at a time, so N baselined
    copies of a message admit exactly N findings and the N+1st is new.
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    for finding in findings:
        key = finding_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new.append(finding)
    return new
