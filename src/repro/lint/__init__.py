"""repro.lint — AST-based determinism & protocol-invariant checker.

A self-contained static-analysis framework (stdlib ``ast`` only) whose
rules encode the invariants this reproduction's validation rests on: the
DES core must stay bit-reproducible (no wall clock, no global RNG, no OS
concurrency in the pure layers) and the TpWIRE frame/CRC layer must stay
within protocol bounds.  See ``docs/lint.md`` for the rule catalogue.

Usage::

    python -m repro.lint src tests          # CLI (exit 1 on findings)

    from repro.lint import lint_paths, load_config
    reports = lint_paths([Path("src")], config=load_config())

Rules are pluggable: subclass :class:`~repro.lint.registry.Rule` and
decorate it with :func:`~repro.lint.registry.register`.
"""

from repro.lint.checker import lint_file, lint_paths, lint_source
from repro.lint.config import LintConfig, config_from_dict, load_config
from repro.lint.errors import ConfigError, LintError, RegistryError
from repro.lint.findings import FileReport, Finding, Severity
from repro.lint.registry import Rule, all_rule_classes, instantiate, register

__all__ = [
    "ConfigError",
    "FileReport",
    "Finding",
    "LintConfig",
    "LintError",
    "RegistryError",
    "Rule",
    "Severity",
    "all_rule_classes",
    "config_from_dict",
    "instantiate",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
]
