"""Command-line front end: ``python -m repro.lint [paths]``.

Exit status: 0 when clean (or warnings only), 1 when any error-severity
finding survives suppression, 2 on usage/configuration problems.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.lint.checker import lint_paths
from repro.lint.config import LintConfig, load_config
from repro.lint.errors import LintError
from repro.lint.findings import Severity
from repro.lint.registry import all_rule_classes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & protocol-invariant checker for the "
            "tuplespace reproduction"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="explicit pyproject.toml (default: discovered from cwd upward)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml and run with built-in defaults",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (overrides config)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by '# lint: disable' comments",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="print findings only, no summary line",
    )
    return parser


def _list_rules(config: LintConfig) -> int:
    classes = all_rule_classes()
    width = max(len(rule_id) for rule_id in classes)
    for rule_id in sorted(classes):
        rule = classes[rule_id](config)
        scope = ", ".join(rule.scope) if rule.scope else "all modules"
        print(f"{rule_id:<{width}}  [{rule.severity.value}] {rule.summary}")
        print(f"{'':<{width}}  scope: {scope}")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.no_config:
            config = LintConfig(root=Path.cwd())
        else:
            start = Path(args.config) if args.config else Path.cwd()
            config = load_config(start)

        if args.list_rules:
            return _list_rules(config)

        select = None
        if args.select:
            select = [rule.strip() for rule in args.select.split(",") if rule.strip()]

        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(
                f"repro-lint: no such path: {', '.join(map(str, missing))}",
                file=sys.stderr,
            )
            return 2
        reports = lint_paths(paths, config=config, select=select)
    except LintError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    findings = [f for report in reports for f in report.findings]
    suppressed = [f for report in reports for f in report.suppressed]

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.as_dict() for f in findings],
                    "suppressed": [f.as_dict() for f in suppressed],
                    "files": len(reports),
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        if args.show_suppressed:
            for finding in suppressed:
                print(f"{finding.format()} (suppressed)")
        if not args.quiet:
            errors = sum(1 for f in findings if f.severity is Severity.ERROR)
            warnings = len(findings) - errors
            print(
                f"repro-lint: {len(reports)} files, {errors} errors, "
                f"{warnings} warnings, {len(suppressed)} suppressed"
            )

    return 1 if any(f.severity is Severity.ERROR for f in findings) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
