"""Command-line front end: ``python -m repro.lint [paths]``.

Runs two passes over the tree and merges their findings:

* the **per-file pass** (:mod:`repro.lint.checker`) — one module at a
  time, rules like ``wall-clock`` and ``frame-bounds``;
* the **project pass** (:mod:`repro.lint.project`) — whole-program
  rules like ``layer-cycle`` and ``proto-const-drift``, backed by an
  incremental cache.  The project index always covers the configured
  roots; the CLI paths only filter which findings are reported.

Exit status: 0 when clean (or warnings only), 1 when any error-severity
finding survives suppression, 2 on usage/configuration problems.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.lint.checker import lint_paths
from repro.lint.config import LintConfig, load_config
from repro.lint.errors import LintError
from repro.lint.findings import Finding, Severity
from repro.lint.registry import all_rule_classes, instantiate, is_project_rule
from repro.lint.sarif import to_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & protocol-invariant checker for the "
            "tuplespace reproduction"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="explicit pyproject.toml (default: discovered from cwd upward)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml and run with built-in defaults",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (overrides config)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the whole-program pass (per-file rules only)",
    )
    parser.add_argument(
        "--project-only",
        action="store_true",
        help="run only the whole-program pass",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the project-pass cache",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="worker processes for the project pass (default: auto)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "report and gate only on findings not recorded in FILE "
            "(create/refresh it with --update-baseline)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the --baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by '# lint: disable' comments",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="print findings only, no summary line",
    )
    return parser


def _list_rules(config: LintConfig) -> int:
    classes = all_rule_classes()
    width = max(len(rule_id) for rule_id in classes)
    for rule_id in sorted(classes):
        rule = classes[rule_id](config)
        scope = ", ".join(rule.scope) if rule.scope else "all modules"
        kind = "project" if is_project_rule(classes[rule_id]) else "file"
        print(f"{rule_id:<{width}}  [{rule.severity.value}, {kind}] {rule.summary}")
        print(f"{'':<{width}}  scope: {scope}")
    return 0


def _dedup(findings: list[Finding]) -> list[Finding]:
    """Drop exact duplicates (both passes report parse errors)."""
    seen: set[tuple] = set()
    unique: list[Finding] = []
    for finding in findings:
        key = (finding.path, finding.line, finding.col, finding.rule, finding.message)
        if key in seen:
            continue
        seen.add(key)
        unique.append(finding)
    return unique


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.no_project and args.project_only:
        print(
            "repro-lint: --no-project and --project-only are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.update_baseline and not args.baseline:
        print(
            "repro-lint: --update-baseline requires --baseline FILE",
            file=sys.stderr,
        )
        return 2
    try:
        if args.no_config:
            config = LintConfig(root=Path.cwd())
        else:
            start = Path(args.config) if args.config else Path.cwd()
            config = load_config(start)

        if args.list_rules:
            return _list_rules(config)

        select = None
        if args.select is not None:
            select = [rule.strip() for rule in args.select.split(",") if rule.strip()]
            if not select:
                print(
                    "repro-lint: --select given but names no rules",
                    file=sys.stderr,
                )
                return 2

        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(
                f"repro-lint: no such path: {', '.join(map(str, missing))}",
                file=sys.stderr,
            )
            return 2

        rules = instantiate(config, select=select)
        project_rules = instantiate(config, select=select, project=True)

        reports = []
        if not args.project_only:
            reports = lint_paths(paths, config=config, select=select)
        project_reports = []
        if not args.no_project and project_rules:
            from repro.lint.project import run_project

            project_reports, _stats = run_project(
                paths,
                config=config,
                select=select,
                use_cache=not args.no_cache,
                jobs=args.jobs,
            )
    except LintError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    findings = _dedup(
        sorted(
            [f for report in reports for f in report.findings]
            + [f for report in project_reports for f in report.findings],
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )
    )
    suppressed = _dedup(
        sorted(
            [f for report in reports for f in report.suppressed]
            + [f for report in project_reports for f in report.suppressed],
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )
    )
    files = len(reports) if reports else len(project_reports)

    if args.baseline:
        from repro.lint.baseline import filter_new, load_baseline, save_baseline

        baseline_path = Path(args.baseline)
        try:
            if args.update_baseline:
                recorded = save_baseline(baseline_path, findings)
                if not args.quiet:
                    print(
                        f"repro-lint: baseline {baseline_path} updated "
                        f"({recorded} findings recorded)"
                    )
                return 0
            findings = filter_new(findings, load_baseline(baseline_path))
        except LintError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.as_dict() for f in findings],
                    "suppressed": [f.as_dict() for f in suppressed],
                    "files": files,
                },
                indent=2,
            )
        )
    elif args.format == "sarif":
        print(json.dumps(to_sarif(findings, suppressed, rules + project_rules), indent=2))
    else:
        for finding in findings:
            print(finding.format())
        if args.show_suppressed:
            for finding in suppressed:
                print(f"{finding.format()} (suppressed)")
        if not args.quiet:
            errors = sum(1 for f in findings if f.severity is Severity.ERROR)
            warnings = len(findings) - errors
            print(
                f"repro-lint: {files} files, {errors} errors, "
                f"{warnings} warnings, {len(suppressed)} suppressed"
            )

    return 1 if any(f.severity is Severity.ERROR for f in findings) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
