"""Finding and severity types shared by every lint rule."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a finding affects the exit status.

    ``ERROR`` findings fail the run (non-zero exit); ``WARNING`` findings
    are printed but do not gate.  Severities are per rule, overridable
    from ``[tool.repro-lint.severity]``.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    #: Optional witness path as ``(line, note)`` pairs within ``path``,
    #: or ``(line, note, step_path)`` triples when a step lives in a
    #: different file (effect rules attach cross-module call chains) —
    #: flow rules attach the acquire→leak trace here and the SARIF
    #: writer renders it as a ``codeFlow``.  A tuple (not a list) so
    #: the dataclass stays hashable.
    code_flow: tuple = ()

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity.value}: {self.message}"
        )

    def as_dict(self) -> dict:
        data = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity.value,
        }
        if self.code_flow:
            data["code_flow"] = [list(step) for step in self.code_flow]
        return data


@dataclass
class FileReport:
    """All findings for one source file, pre- and post-suppression."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)
