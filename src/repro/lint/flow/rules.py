"""The concurrency-discipline rule pack.

Seven project rules over the flow facts
(:mod:`repro.lint.flow.facts`) riding in every module summary:

* ``lock-balance``       — every acquire is released on all CFG paths,
  exception edges included; leaks carry an acquire→exit code flow.
* ``lock-order``         — the cross-module lock-acquisition-order
  graph must be acyclic (a cycle is a potential deadlock).
* ``guarded-state``      — attributes declared ``# lint:
  guarded-by=<lock>`` are never written without that lock (ERROR);
  attributes observed written both under a lock and lock-free are
  flagged as advisory inference findings (WARNING).
* ``blocking-under-lock``— no blocking primitive (socket I/O, sleep,
  thread join, queue get/put) runs while a lock is held, directly or
  through a project-internal call chain.
* ``cond-wait-loop``     — ``Condition.wait`` is re-checked in a loop
  (wakeups can be spurious).
* ``async-blocking``     — no blocking primitive inside ``async def``
  (dormant until the asyncio front-end lands, but fully tested).
* ``thread-lifecycle``   — a module that creates ``threading.Thread``
  objects must join threads somewhere (``Timer`` excluded by design).

All of them consume summaries only — sources are never re-read — so
they inherit the incremental cache, suppression and SARIF machinery of
the project pass for free.  See ``docs/concurrency.md``.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Iterator, Optional

from repro.lint.findings import Finding, Severity
from repro.lint.flow.facts import blocking_dotted
from repro.lint.project.graph import ModuleGraph
from repro.lint.registry import ProjectRule, register

#: Methods allowed to write guarded attributes lock-free: the object is
#: not shared yet (or is being torn down) while these run.
_BIRTH_METHODS = {"__init__", "__new__", "__del__"}


def _iter_functions(index):
    """``(module, summary, qualname, facts)`` for every function with
    flow facts, deterministically ordered."""
    for module in sorted(index.summaries):
        summary = index.summaries[module]
        functions = summary.flow.get("functions", {})
        for qualname in sorted(functions):
            yield module, summary, qualname, functions[qualname]


def _held_class(qualname: str, summary) -> Optional[str]:
    head = qualname.split(".")[0]
    return head if head in summary.classes else None


def _resolve_call(index, module: str, qualname: str, call: str):
    """Project function a dotted call refers to, as ``(module, qualname)``.

    Context-light resolution: ``self.f`` → a sibling method, a bare name
    → a module-level function, ``alias.f`` → another project module's
    function (through import aliases and re-export chains).  Anything
    else is out of model.
    """
    summary = index.summaries.get(module)
    if summary is None:
        return None
    parts = call.split(".")
    if parts[0] == "self" and len(parts) == 2:
        cls = _held_class(qualname, summary)
        if cls is not None and f"{cls}.{parts[1]}" in summary.functions:
            return (module, f"{cls}.{parts[1]}")
        return None
    if len(parts) == 1:
        if call in summary.functions:
            return (module, call)
        resolved = index.resolve_symbol(module, call)
        if resolved is not None:
            def_module, binding = resolved
            if binding["kind"] == "def" and binding["name"] in index.summaries[
                def_module
            ].functions:
                return (def_module, binding["name"])
        return None
    if len(parts) == 2:
        target = index.module_alias(module, parts[0])
        if target is not None:
            target_summary = index.summaries.get(target)
            if target_summary is not None and parts[1] in target_summary.functions:
                return (target, parts[1])
    return None


def _global_lock_id(index, module: str, canon: str) -> Optional[str]:
    """Module-qualified lock id for the order graph; None for locals.

    A simple module-level name is resolved through the import graph so
    ``from repro.core.locks import IO_LOCK`` and the defining module
    agree on one id; ``alias.LOCK`` resolves through module aliases.
    ``Class.attr`` ids stay module-local (classes are compared where
    they are defined).
    """
    if ":" in canon:
        return None
    parts = canon.split(".")
    if len(parts) == 1:
        resolved = index.resolve_symbol(module, canon)
        if resolved is not None:
            def_module, binding = resolved
            return f"{def_module}.{binding['name']}"
        return f"{module}.{canon}"
    if len(parts) == 2:
        target = index.module_alias(module, parts[0])
        if target is not None:
            return f"{target}.{parts[1]}"
    return f"{module}.{canon}"


def _blocking_closure(index) -> dict:
    """``(module, qualname) -> primitive`` for every project function
    that blocks, directly or transitively (the context-light fixpoint).

    The per-function ``calls`` lists in the summaries are the edges;
    seeds are functions whose calls include a curated blocking
    primitive.  Iterating to the fixpoint makes ``a() -> b() ->
    sock.recv()`` attribute the recv to ``a`` as well.
    """
    blocking: dict[tuple, str] = {}
    calls_of: dict[tuple, list] = {}
    for module in index.summaries:
        summary = index.summaries[module]
        for qualname, rec in summary.functions.items():
            key = (module, qualname)
            calls_of[key] = rec.get("calls", [])
            for call in calls_of[key]:
                if blocking_dotted(call):
                    blocking.setdefault(key, call)
    changed = True
    while changed:
        changed = False
        for key, calls in calls_of.items():
            if key in blocking:
                continue
            module, qualname = key
            for call in calls:
                target = _resolve_call(index, module, qualname, call)
                if target is not None and target in blocking:
                    blocking[key] = blocking[target]
                    changed = True
                    break
    return blocking


@register
class LockBalanceRule(ProjectRule):
    id = "lock-balance"
    summary = (
        "every lock acquired must be released on all paths out of the "
        "function, exception edges included (use with or try/finally)"
    )

    def check(self, index) -> Iterator[Finding]:
        for module, summary, qualname, facts in _iter_functions(index):
            if not self.in_scope(module):
                continue
            for leak in facts.get("leaks", []):
                yield self.finding_at(
                    summary.path,
                    leak["line"],
                    f"'{leak['lock']}' acquired in {qualname} is not "
                    "released on every path out of the function "
                    "(exception paths included); hold it in a with "
                    "block or release in try/finally",
                    code_flow=leak.get("path", []),
                )
            for rec in facts.get("releases_unheld", []):
                yield self.finding_at(
                    summary.path,
                    rec["line"],
                    f"{qualname} releases '{rec['lock']}', which is not "
                    "held on any path reaching this statement",
                )


@register
class LockOrderRule(ProjectRule):
    id = "lock-order"
    summary = (
        "the project-wide lock acquisition order must be acyclic; a "
        "cycle means two threads can deadlock taking the locks in "
        "opposite orders"
    )

    def check(self, index) -> Iterator[Finding]:
        edges: dict[str, set] = {}
        sites: dict[tuple, tuple] = {}  # (held, acquired) -> (path, line, module)
        for module, summary, _qualname, facts in _iter_functions(index):
            for acq in facts.get("acquires", []):
                acquired = _global_lock_id(index, module, acq["lock"])
                if acquired is None:
                    continue
                for held_local in acq.get("held", []):
                    held = _global_lock_id(index, module, held_local)
                    if held is None or held == acquired:
                        continue
                    edges.setdefault(held, set()).add(acquired)
                    sites.setdefault(
                        (held, acquired), (summary.path, acq["line"], module)
                    )
        for cycle in ModuleGraph(edges).cycles():
            ring = cycle + [cycle[0]]
            site = None
            for held, acquired in zip(ring, ring[1:]):
                site = sites.get((held, acquired))
                if site is not None:
                    break
            if site is None:
                continue
            path, line, module = site
            if not self.in_scope(module):
                continue
            chain = " -> ".join(ring)
            yield self.finding_at(
                path,
                line,
                f"lock acquisition order cycle (potential deadlock): {chain}",
            )


@register
class GuardedStateRule(ProjectRule):
    id = "guarded-state"
    summary = (
        "attributes annotated '# lint: guarded-by=<lock>' must only be "
        "written with that lock held; mixed locked/lock-free writes are "
        "flagged as inferred races"
    )

    def check(self, index) -> Iterator[Finding]:
        for module in sorted(index.summaries):
            if not self.in_scope(module):
                continue
            summary = index.summaries[module]
            guarded = summary.flow.get("guarded_by", {})
            writes: dict[str, list] = {}
            for qualname, facts in sorted(
                summary.flow.get("functions", {}).items()
            ):
                method = qualname.split(".")[-1]
                for rec in facts.get("attr_writes", []):
                    writes.setdefault(rec["attr"], []).append(
                        (qualname, method, rec)
                    )
            yield from self._annotated(summary, guarded, writes)
            yield from self._inferred(summary, guarded, writes)

    def _annotated(self, summary, guarded, writes) -> Iterator[Finding]:
        for attr, lock in sorted(guarded.items()):
            for qualname, method, rec in writes.get(attr, []):
                if method in _BIRTH_METHODS:
                    continue
                if lock not in rec["held"]:
                    yield self.finding_at(
                        summary.path,
                        rec["line"],
                        f"'{attr}' is declared guarded-by '{lock}' but "
                        f"{qualname} writes it without holding the lock",
                    )

    def _inferred(self, summary, guarded, writes) -> Iterator[Finding]:
        for attr, recs in sorted(writes.items()):
            if attr in guarded:
                continue
            locked = [r for _q, m, r in recs if r["held"] and m not in _BIRTH_METHODS]
            if not locked:
                continue
            # The inferred guard: a lock held at every locked write.
            common = set(locked[0]["held"])
            for rec in locked[1:]:
                common &= set(rec["held"])
            if not common:
                continue
            guard = sorted(common)[0]
            for qualname, method, rec in recs:
                if method in _BIRTH_METHODS or rec["held"]:
                    continue
                yield self.finding_at(
                    summary.path,
                    rec["line"],
                    f"'{attr}' is written under '{guard}' elsewhere but "
                    f"{qualname} writes it lock-free; annotate it with "
                    f"'# lint: guarded-by=...' or take the lock",
                    severity=Severity.WARNING,
                )


@register
class BlockingUnderLockRule(ProjectRule):
    id = "blocking-under-lock"
    summary = (
        "no blocking call (socket I/O, sleep, join, queue get/put) "
        "while a lock is held — directly or through a call chain"
    )

    def check(self, index) -> Iterator[Finding]:
        allow = tuple(self.options.get("allow", ()))
        allow_modules = tuple(self.options.get("allow-modules", ()))
        closure = _blocking_closure(index)
        for module, summary, qualname, facts in _iter_functions(index):
            if not self.in_scope(module):
                continue
            if any(fnmatch(module, pattern) for pattern in allow_modules):
                continue
            for rec in facts.get("calls_held", []):
                call = rec["call"]
                if any(fnmatch(call, pattern) for pattern in allow):
                    continue
                held = ", ".join(f"'{lock}'" for lock in rec["held"])
                if blocking_dotted(call):
                    yield self.finding_at(
                        summary.path,
                        rec["line"],
                        f"blocking call {call}() while holding {held}; "
                        "move the blocking operation outside the lock",
                    )
                    continue
                target = _resolve_call(index, module, qualname, call)
                if target is not None and target in closure:
                    primitive = closure[target]
                    yield self.finding_at(
                        summary.path,
                        rec["line"],
                        f"{call}() blocks (via {primitive}()) and is "
                        f"called while holding {held}; move it outside "
                        "the lock",
                    )


@register
class CondWaitLoopRule(ProjectRule):
    id = "cond-wait-loop"
    summary = (
        "Condition.wait must be re-checked in a loop — wakeups can be "
        "spurious and the predicate may already be false again"
    )

    def check(self, index) -> Iterator[Finding]:
        for module, summary, qualname, facts in _iter_functions(index):
            if not self.in_scope(module):
                continue
            for rec in facts.get("waits", []):
                if rec.get("in_loop"):
                    continue
                yield self.finding_at(
                    summary.path,
                    rec["line"],
                    f"{qualname} calls wait on '{rec['lock']}' outside "
                    "a loop; use 'while not predicate: cond.wait()' "
                    "(wakeups can be spurious)",
                )


@register
class AsyncBlockingRule(ProjectRule):
    id = "async-blocking"
    summary = (
        "no blocking call inside 'async def' — it stalls the entire "
        "event loop (use the asyncio equivalent or a thread executor)"
    )

    def check(self, index) -> Iterator[Finding]:
        closure = _blocking_closure(index)
        for module, summary, qualname, facts in _iter_functions(index):
            if not self.in_scope(module) or not facts.get("is_async"):
                continue
            for rec in facts.get("blocking", []):
                yield self.finding_at(
                    summary.path,
                    rec["line"],
                    f"blocking call {rec['call']}() inside async def "
                    f"{qualname}; it stalls the event loop",
                )
            reported = {rec["call"] for rec in facts.get("blocking", [])}
            for call in index.summaries[module].functions.get(qualname, {}).get(
                "calls", []
            ):
                if call in reported or blocking_dotted(call):
                    continue
                target = _resolve_call(index, module, qualname, call)
                if target is not None and target in closure:
                    yield self.finding_at(
                        summary.path,
                        facts.get("line", 1),
                        f"async def {qualname} calls {call}(), which "
                        f"blocks (via {closure[target]}()); it stalls "
                        "the event loop",
                    )


@register
class ThreadLifecycleRule(ProjectRule):
    id = "thread-lifecycle"
    summary = (
        "a module creating threading.Thread objects must join threads "
        "somewhere (with a timeout), or stopped threads leak"
    )
    default_severity = Severity.WARNING

    def check(self, index) -> Iterator[Finding]:
        for module in sorted(index.summaries):
            if not self.in_scope(module):
                continue
            summary = index.summaries[module]
            threads = summary.flow.get("threads", {})
            creates = threads.get("creates", [])
            if not creates or threads.get("joins"):
                continue
            for rec in creates:
                yield self.finding_at(
                    summary.path,
                    rec["line"],
                    "threading.Thread created here but nothing in this "
                    "module ever joins a thread; track the thread and "
                    "join it (with a timeout) on shutdown",
                )
