"""Generic forward dataflow over a :class:`~repro.lint.flow.cfg.CFG`.

The engine is deliberately small: an analysis supplies a *boundary*
state for the function entry, a *join* (the lattice's least upper
bound) and a *transfer* function over CFG events.  :func:`run_forward`
iterates a worklist to the fixpoint and returns the in/out state of
every reachable block (unreachable blocks stay at bottom, represented
as absence from the maps).

One convention matters: an ``exc`` edge propagates the source block's
**in**-state, not its out-state.  The CFG builder guarantees that a
statement that may raise always begins its own block, so the in-state
is exactly the program state *before* the potentially-raising statement
— which is what an exception path observes.

States must be hashable-equality values (``frozenset`` is the usual
choice); the engine only ever compares them with ``==``.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.lint.flow.cfg import CFG
from repro.lint.errors import LintError

#: Fixpoint-iteration safety valve; generous (blocks * lattice height is
#: tiny for real functions) but keeps a buggy lattice from spinning.
MAX_STEPS = 100_000


class ForwardAnalysis:
    """Base class for one forward analysis (a lattice + transfer)."""

    def boundary(self):
        """State on entry to the function."""
        raise NotImplementedError

    def join(self, a, b):
        """Least upper bound of two states."""
        raise NotImplementedError

    def transfer(self, state, event):
        """State after one CFG event; must not mutate ``state``."""
        raise NotImplementedError


def run_forward(cfg: CFG, analysis: ForwardAnalysis) -> tuple[dict, dict]:
    """Iterate to the fixpoint; returns ``(in_states, out_states)`` keyed
    by block id (reachable blocks only)."""
    in_states: dict[int, object] = {cfg.entry: analysis.boundary()}
    out_states: dict[int, object] = {}
    worklist: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    steps = 0
    while worklist:
        steps += 1
        if steps > MAX_STEPS:
            raise LintError(
                f"dataflow did not converge on {cfg.name!r} "
                f"({len(cfg.blocks)} blocks)"
            )
        block_id = worklist.popleft()
        queued.discard(block_id)
        block = cfg.block(block_id)
        state = in_states[block_id]
        for event in block.events:
            state = analysis.transfer(state, event)
        out_states[block_id] = state
        for target, kind in block.succ:
            edge_state = in_states[block_id] if kind == "exc" else state
            known = in_states.get(target)
            merged = edge_state if known is None else analysis.join(known, edge_state)
            if known is None or merged != known:
                in_states[target] = merged
                if target not in queued:
                    worklist.append(target)
                    queued.add(target)
    return in_states, out_states


def event_states(cfg: CFG, analysis: ForwardAnalysis, in_states: dict):
    """Yield ``(block, event, pre_state)`` for every event of every
    reachable block — the per-event view fact extraction consumes."""
    for block in cfg.blocks:
        state = in_states.get(block.id)
        if state is None:
            continue
        for event in block.events:
            yield block, event, state
            state = analysis.transfer(state, event)


def reachable_path(
    cfg: CFG,
    start: int,
    goal: int,
    admit,
) -> Optional[list[int]]:
    """Shortest block path from ``start`` to ``goal`` through blocks for
    which ``admit(block_id)`` holds (both endpoints included) — used to
    reconstruct a witness path for a fact found by the fixpoint."""
    if start == goal:
        return [start]
    frontier = deque([start])
    parent: dict[int, int] = {start: start}
    while frontier:
        block_id = frontier.popleft()
        for target, _kind in cfg.block(block_id).succ:
            if target in parent:
                continue
            if target != goal and not admit(target):
                continue
            parent[target] = block_id
            if target == goal:
                path = [goal]
                while path[-1] != start:
                    path.append(parent[path[-1]])
                return list(reversed(path))
            frontier.append(target)
    return None
