"""The lock model: what counts as a lock, and how locks are named.

Canonical lock ids are plain strings, stable across runs and JSON-safe:

* ``ClassName.attr`` — an instance attribute (``self._lock``),
* ``name``           — a module-level binding,
* ``qualname:name``  — a local variable or parameter of one function.

A *global* id (used by the cross-module lock-order graph) prefixes the
module: ``repro.core.transports.SocketSpaceServer._lock``.  Function-
local locks never get a global id — their ordering cannot conflict
across modules.

Something is treated as a lock when any of these hold:

* it was created by a known constructor (``threading.Lock`` and
  friends, ``multiprocessing``/``asyncio`` equivalents, or the DES
  ``Resource``),
* its name looks lock-ish (``LOCKISH_RE``) — what makes
  ``with self._send_lock:`` work even when the creation is in another
  method or module,
* it is the receiver of an ``.acquire()`` call (a strong signal on its
  own; ``.request()`` — the DES spelling — additionally requires a
  lock-ish receiver so ``requests.request`` stays out).
"""

from __future__ import annotations

import ast
import re
from typing import Optional

#: Constructor tails that create a lock-like object.  ``Event`` is
#: deliberately absent (no ownership to balance); ``Timer`` likewise.
LOCK_CTOR_TAILS = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Resource",  # the DES engine's capacity-limited resource
}

#: Constructors whose product supports ``wait`` (cond-wait-loop rule).
CONDITION_CTOR_TAILS = {"Condition"}

#: Method tails that take the lock / give it back.
ACQUIRE_TAILS = {"acquire", "request"}
RELEASE_TAILS = {"release"}
WAIT_TAILS = {"wait", "wait_for"}

LOCKISH_RE = re.compile(r"(lock|mutex|sem|cond|cv)", re.IGNORECASE)


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def lock_ctor_tail(node: ast.expr) -> Optional[str]:
    """The constructor tail when ``node`` is a known lock creation."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted(node.func)
    if name is None:
        return None
    tail = name.split(".")[-1]
    return tail if tail in LOCK_CTOR_TAILS else None


def lockish_name(name: str) -> bool:
    """Does any dotted component look like a lock name?"""
    return bool(LOCKISH_RE.search(name.split(".")[-1]))


class LockNamer:
    """Maps lock expressions to canonical ids within one function."""

    def __init__(
        self,
        *,
        qualname: str,
        class_name: Optional[str] = None,
        known: Optional[dict] = None,
        local_names: frozenset = frozenset(),
    ):
        self.qualname = qualname
        self.class_name = class_name
        #: canonical id -> {"kind": ctor tail, "line": int} for lock
        #: creations already discovered in the module.
        self.known = known or {}
        #: Names bound inside the function (params, assignments) — these
        #: get function-local ids; everything else is module scope, so
        #: an imported lock keeps a resolvable name for lock-order.
        self.local_names = local_names

    def canonical(self, expr: ast.expr) -> Optional[str]:
        """Canonical id of a lock expression; None for anything that is
        not a Name/self-attribute chain (``locks[i]`` is out of model)."""
        name = dotted(expr)
        if name is None:
            return None
        parts = name.split(".")
        if parts[0] == "self" and self.class_name and len(parts) == 2:
            return f"{self.class_name}.{parts[1]}"
        if len(parts) == 1:
            if name in self.known:
                return name
            if name in self.local_names:
                return f"{self.qualname}:{name}"
            return name
        return name  # e.g. an imported module-level lock: "config.LOCK"

    def is_lock(self, canon: str, source_name: str) -> bool:
        """Is the canonically-named receiver a lock at all?"""
        return canon in self.known or lockish_name(source_name)


def global_lock_id(module: str, canon: str) -> Optional[str]:
    """Module-qualified id for the lock-order graph; None for locals."""
    if ":" in canon:
        return None
    return f"{module}.{canon}"
