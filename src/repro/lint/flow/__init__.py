"""Flow-sensitive analysis stage of :mod:`repro.lint`.

The third stage of the linter (after the per-file AST rules and the
whole-program summary pass): a per-function control-flow graph
(:mod:`repro.lint.flow.cfg`), a generic forward-dataflow engine
(:mod:`repro.lint.flow.dataflow`) and a lock/async fact extractor
(:mod:`repro.lint.flow.facts`) whose distilled, JSON-serialisable facts
ride along inside every :class:`~repro.lint.project.symbols.ModuleSummary`
— so the concurrency rules (:mod:`repro.lint.flow.rules`) run as
ordinary project rules with the registry, suppression, incremental-cache
and SARIF machinery they already get for free.

See ``docs/concurrency.md`` for the rule pack and the ``guarded-by``
annotation convention, and ``docs/lint.md`` for the architecture.
"""

from repro.lint.flow.cfg import CFG, Block, build_cfg
from repro.lint.flow.dataflow import ForwardAnalysis, run_forward

__all__ = ["CFG", "Block", "build_cfg", "ForwardAnalysis", "run_forward"]
