"""Per-function control-flow graphs.

:func:`build_cfg` turns one ``ast.FunctionDef`` / ``AsyncFunctionDef``
into a :class:`CFG` of basic blocks connected by kind-tagged edges:

* ``next``  — unconditional fall-through (including loop back-edges),
* ``true`` / ``false`` — the two arms of a branch or loop test,
* ``exc``   — the path taken when the block's *last-started* statement
  raises.

Blocks hold a list of **events** rather than raw statements, so a
dataflow analysis never has to re-discover control structure:

* ``("stmt", node)``   — a simple statement (no internal control flow),
* ``("test", expr)``   — a branch/loop condition evaluated here,
* ``("iter", node)``   — one ``for``-loop iteration step (binds the target),
* ``("enter", item)``  — a ``with`` context entered (``ast.withitem``),
* ``("exit", item)``   — that context exited (on *every* path out),
* ``("except", handler)`` — an except clause binding its name,
* ``("case", case)``   — a ``match`` case pattern that matched,
* ``("def", node)``    — a nested function/class definition (analyses
  must not descend into it).

Exception edges use a deliberate convention the dataflow engine relies
on: **a statement that may raise always starts a fresh block**, and an
``exc`` edge propagates the block's *in*-state (the state before the
potentially-raising statement ran).  That is what makes
``lock.acquire(); work(); lock.release()`` show the lock held on the
exception path out of ``work()`` while keeping ``lock.acquire()``
itself, or a bare ``acquire(); release()`` pair, leak-free.

Abrupt exits (``return`` / ``raise`` / ``break`` / ``continue``) unwind
the enclosing context stack: ``with`` blocks emit their ``exit`` events
and ``finally`` bodies are inlined along the unwind path (so a
``try/finally`` with a ``return`` in both arms is modelled exactly);
unwind chains are memoised per context stack so sibling statements share
them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Edge kinds, in the order render() lists them.
EDGE_KINDS = ("next", "true", "false", "exc")


@dataclass
class Block:
    """One basic block: an event list plus kind-tagged successor edges."""

    id: int
    label: str
    events: list = field(default_factory=list)
    succ: list[tuple[int, str]] = field(default_factory=list)


class CFG:
    """Control-flow graph of one function; block 0 is the entry, block 1
    the (shared normal/exceptional) exit."""

    def __init__(self, name: str, lineno: int):
        self.name = name
        self.lineno = lineno
        self.blocks: list[Block] = []

    @property
    def entry(self) -> int:
        return 0

    @property
    def exit(self) -> int:
        return 1

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def edge_set(self) -> set[tuple[int, int, str]]:
        """Every edge as ``(src, dst, kind)`` — what the CFG tests assert."""
        return {
            (block.id, dst, kind)
            for block in self.blocks
            for dst, kind in block.succ
        }

    def render(self) -> str:
        """Human-readable dump (debugging and documentation)."""
        lines = []
        for block in self.blocks:
            events = ", ".join(
                f"{kind}@{getattr(node, 'lineno', '?')}" for kind, node in block.events
            )
            succ = ", ".join(f"b{dst}[{kind}]" for dst, kind in block.succ)
            lines.append(
                f"b{block.id} {block.label}: [{events}] -> {succ or '-'}"
            )
        return "\n".join(lines)


def default_may_raise(stmt: ast.stmt) -> bool:
    """A statement may raise when it evaluates a call/await or asserts."""
    if isinstance(stmt, (ast.Assert, ast.Raise)):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Await)):
            return True
    return False


class _Loop:
    def __init__(self, header: Block, after: Block):
        self.header = header
        self.after = after


class _Finally:
    def __init__(self, body: list[ast.stmt]):
        self.body = body


class _Except:
    def __init__(self, dispatch: Block):
        self.dispatch = dispatch


class _With:
    def __init__(self, items: list[ast.withitem]):
        self.items = items


class CFGBuilder:
    """Builds one :class:`CFG`; ``may_raise`` is injectable so callers
    can exempt statements they model as non-raising (lock primitives)."""

    def __init__(self, may_raise: Optional[Callable[[ast.stmt], bool]] = None):
        self.may_raise = may_raise if may_raise is not None else default_may_raise

    def build(self, func) -> CFG:
        self.cfg = CFG(func.name, func.lineno)
        entry = self._block("entry")
        self.exit_block = self._block("exit")
        self.current: Optional[Block] = entry
        self.stack: list = []
        self._unwind_cache: dict = {}
        self._stmts(func.body)
        if self.current is not None:
            self._edge(self.current, self.exit_block, "next")
        return self.cfg

    # -- low-level helpers ---------------------------------------------------

    def _block(self, label: str) -> Block:
        block = Block(id=len(self.cfg.blocks), label=label)
        self.cfg.blocks.append(block)
        return block

    def _edge(self, src: Block, dst: Block, kind: str) -> None:
        if (dst.id, kind) not in src.succ:
            src.succ.append((dst.id, kind))

    def _fresh(self, label: str) -> Block:
        """Start a new block linked from the current one by ``next``."""
        block = self._block(label)
        if self.current is not None:
            self._edge(self.current, block, "next")
        self.current = block
        return block

    # -- statement dispatch --------------------------------------------------

    def _stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if self.current is None:
                # Unreachable code still gets blocks (no predecessors),
                # so the CFG covers the whole function body.
                self.current = self._block("dead")
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, ast.Match):
            self._match(stmt)
        elif isinstance(stmt, ast.Return):
            self._return(stmt)
        elif isinstance(stmt, ast.Raise):
            self._raise(stmt)
        elif isinstance(stmt, ast.Break):
            self._abrupt("break")
        elif isinstance(stmt, ast.Continue):
            self._abrupt("continue")
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self.current.events.append(("def", stmt))
        else:
            self._simple(stmt)

    def _simple(self, stmt: ast.stmt) -> None:
        if self.may_raise(stmt):
            # May-raise statements start their own block so the exc
            # edge's in-state is exactly the pre-statement state.
            if self.current.events:
                self._fresh("stmt")
            self.current.events.append(("stmt", stmt))
            self._edge(self.current, self._unwind_entry("exc"), "exc")
        else:
            self.current.events.append(("stmt", stmt))

    # -- abrupt exits ----------------------------------------------------------

    def _return(self, stmt: ast.Return) -> None:
        if self.may_raise(stmt) and self.current.events:
            self._fresh("return")
        self.current.events.append(("stmt", stmt))
        if self.may_raise(stmt):
            self._edge(self.current, self._unwind_entry("exc"), "exc")
        self._edge(self.current, self._unwind_entry("return"), "next")
        self.current = None

    def _raise(self, stmt: ast.Raise) -> None:
        if self.current.events:
            self._fresh("raise")
        self.current.events.append(("stmt", stmt))
        self._edge(self.current, self._unwind_entry("exc"), "exc")
        self.current = None

    def _abrupt(self, kind: str) -> None:
        self._edge(self.current, self._unwind_entry(kind), "next")
        self.current = None

    # -- unwinding through the context stack ----------------------------------

    def _unwind_entry(self, kind: str) -> Block:
        """Target of a ``kind`` exit from the current context stack.

        Walks the stack top-down: ``with`` frames contribute their exit
        events, ``finally`` frames inline their bodies, an ``except``
        frame terminates an ``exc`` unwind at its dispatch block, a loop
        frame terminates ``break``/``continue``.  Exhausting the stack
        lands on the function exit.  Chains are memoised per stack.
        """
        key = (kind, tuple(id(frame) for frame in self.stack))
        cached = self._unwind_cache.get(key)
        if cached is not None:
            return cached
        target = self._direct_target(kind)
        if target is None:
            target = self._build_unwind(kind)
        self._unwind_cache[key] = target
        return target

    def _direct_target(self, kind: str) -> Optional[Block]:
        """The unwind target when no intermediate work is needed."""
        for frame in reversed(self.stack):
            if isinstance(frame, (_With, _Finally)):
                return None
            if isinstance(frame, _Except) and kind == "exc":
                return frame.dispatch
            if isinstance(frame, _Loop) and kind in ("break", "continue"):
                return frame.after if kind == "break" else frame.header
        if kind in ("exc", "return"):
            return self.exit_block
        return None  # break/continue outside a loop: SyntaxError anyway

    def _build_unwind(self, kind: str) -> Block:
        saved_current, saved_stack = self.current, self.stack
        work = self._block(f"unwind-{kind}")
        self.current = work
        i = len(saved_stack) - 1
        while i >= 0 and self.current is not None:
            frame = saved_stack[i]
            if isinstance(frame, _With):
                for item in reversed(frame.items):
                    self.current.events.append(("exit", item))
            elif isinstance(frame, _Finally):
                # Inline the finally body with only the *outer* frames
                # active, so a return/raise inside it unwinds correctly
                # (and overrides the in-flight exit, as in Python).
                self.stack = list(saved_stack[:i])
                self._stmts(frame.body)
            elif isinstance(frame, _Except) and kind == "exc":
                self._edge(self.current, frame.dispatch, "next")
                self.current = None
            elif isinstance(frame, _Loop) and kind in ("break", "continue"):
                target = frame.after if kind == "break" else frame.header
                self._edge(self.current, target, "next")
                self.current = None
            i -= 1
        if self.current is not None:
            self._edge(self.current, self.exit_block, "next")
        self.current, self.stack = saved_current, saved_stack
        return work

    # -- compound statements ---------------------------------------------------

    def _if(self, stmt: ast.If) -> None:
        self.current.events.append(("test", stmt.test))
        cond = self.current

        then = self._block("then")
        self._edge(cond, then, "true")
        self.current = then
        self._stmts(stmt.body)
        then_end = self.current

        else_end = None
        if stmt.orelse:
            orelse = self._block("else")
            self._edge(cond, orelse, "false")
            self.current = orelse
            self._stmts(stmt.orelse)
            else_end = self.current

        if stmt.orelse and then_end is None and else_end is None:
            self.current = None
            return
        after = self._block("join")
        if then_end is not None:
            self._edge(then_end, after, "next")
        if stmt.orelse:
            if else_end is not None:
                self._edge(else_end, after, "next")
        else:
            self._edge(cond, after, "false")
        self.current = after

    def _while(self, stmt: ast.While) -> None:
        header = self._fresh("while")
        header.events.append(("test", stmt.test))
        after = self._block("after")
        body = self._block("body")
        self._edge(header, body, "true")
        self.stack.append(_Loop(header, after))
        self.current = body
        self._stmts(stmt.body)
        if self.current is not None:
            self._edge(self.current, header, "next")
        self.stack.pop()
        self._loop_orelse(stmt, header, after)

    def _for(self, stmt) -> None:
        header = self._fresh("for")
        header.events.append(("iter", stmt))
        if default_may_raise_expr(stmt.iter):
            self._edge(header, self._unwind_entry("exc"), "exc")
        after = self._block("after")
        body = self._block("body")
        self._edge(header, body, "true")
        self.stack.append(_Loop(header, after))
        self.current = body
        self._stmts(stmt.body)
        if self.current is not None:
            self._edge(self.current, header, "next")
        self.stack.pop()
        self._loop_orelse(stmt, header, after)

    def _loop_orelse(self, stmt, header: Block, after: Block) -> None:
        if stmt.orelse:
            orelse = self._block("loop-else")
            self._edge(header, orelse, "false")
            self.current = orelse
            self._stmts(stmt.orelse)
            if self.current is not None:
                self._edge(self.current, after, "next")
        else:
            self._edge(header, after, "false")
        self.current = after

    def _with(self, stmt) -> None:
        entered = 0
        for item in stmt.items:
            if default_may_raise_expr(item.context_expr) and self.current.events:
                self._fresh("with")
            self.current.events.append(("enter", item))
            if default_may_raise_expr(item.context_expr):
                # Entering may raise *before* this context is active;
                # the in-state convention keeps it un-entered there.
                self._edge(self.current, self._unwind_entry("exc"), "exc")
            self.stack.append(_With([item]))
            entered += 1
        self._stmts(stmt.body)
        for _ in range(entered):
            frame = self.stack.pop()
            if self.current is not None:
                for item in reversed(frame.items):
                    self.current.events.append(("exit", item))

    def _try(self, stmt: ast.Try) -> None:
        has_finally = bool(stmt.finalbody)
        if has_finally:
            self.stack.append(_Finally(stmt.finalbody))
        dispatch = None
        if stmt.handlers:
            dispatch = self._block("dispatch")
            self.stack.append(_Except(dispatch))

        self._stmts(stmt.body)
        if stmt.handlers:
            self.stack.pop()
        if stmt.orelse and self.current is not None:
            # else runs only after an exception-free body; its own
            # exceptions skip these handlers (the frame is popped).
            self._stmts(stmt.orelse)
        body_end = self.current

        handler_ends: list[Optional[Block]] = []
        if dispatch is not None:
            for handler in stmt.handlers:
                hblock = self._block("except")
                self._edge(dispatch, hblock, "next")
                hblock.events.append(("except", handler))
                self.current = hblock
                self._stmts(handler.body)
                handler_ends.append(self.current)
            # No handler matched: the exception keeps unwinding (through
            # the finally body, when there is one — it is still on the
            # stack here).
            self._edge(dispatch, self._unwind_entry("exc"), "exc")

        if has_finally:
            self.stack.pop()

        after = self._block("join")
        reached = False
        for end in [body_end] + handler_ends:
            if end is None:
                continue
            self.current = end
            if has_finally:
                self._stmts(stmt.finalbody)
            if self.current is not None:
                self._edge(self.current, after, "next")
                reached = True
        self.current = after if reached else None
        if not reached:
            # Drop the unreachable join block marker by labelling it.
            after.label = "dead"

    def _match(self, stmt: ast.Match) -> None:
        self.current.events.append(("test", stmt.subject))
        subject = self.current
        after = self._block("join")
        reached = False
        irrefutable = False
        for case in stmt.cases:
            body = self._block("case")
            self._edge(subject, body, "true")
            body.events.append(("case", case))
            self.current = body
            self._stmts(case.body)
            if self.current is not None:
                self._edge(self.current, after, "next")
                reached = True
            if _is_irrefutable(case):
                irrefutable = True
        if not irrefutable:
            self._edge(subject, after, "false")
            reached = True
        self.current = after if reached else None
        if not reached:
            after.label = "dead"


def _is_irrefutable(case: ast.match_case) -> bool:
    if case.guard is not None:
        return False
    pattern = case.pattern
    return isinstance(pattern, ast.MatchAs) and pattern.pattern is None


def default_may_raise_expr(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, (ast.Call, ast.Await)):
            return True
    return False


def build_cfg(func, may_raise: Optional[Callable[[ast.stmt], bool]] = None) -> CFG:
    """Build the CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    return CFGBuilder(may_raise=may_raise).build(func)
