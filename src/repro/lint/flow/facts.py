"""Distill per-module concurrency facts from CFG + dataflow.

:func:`extract_flow` is called by
:func:`repro.lint.project.symbols.summarize_source` and returns a plain
JSON dict that rides inside the :class:`ModuleSummary` — so flow facts
are computed once per file *content*, in the multiprocessing workers,
and cached by the incremental project cache.  The concurrency rules
(:mod:`repro.lint.flow.rules`) then run over summaries only, never
re-parsing sources.

Shape (keys omitted when empty, the whole dict empty for plain files)::

    {"locks":      {canon: {"kind": "RLock", "line": 12}},
     "guarded_by": {"Conn._rx": "Conn._lock"},
     "threads":    {"creates": [{"line": 40, "func": "Srv._loop"}],
                    "joins": [55, 61]},
     "functions":  {qualname: {
         "line": 10, "is_async": false,
         "acquires":        [{"lock","line","held","via"}],
         "leaks":           [{"lock","line","path": [[line, note], ...]}],
         "releases_unheld": [{"lock","line"}],
         "calls_held":      [{"call","line","held"}],
         "waits":           [{"lock","line","in_loop"}],
         "attr_writes":     [{"attr","line","held"}],
         "blocking":        [{"call","line"}]}}}   # async defs only

The dataflow lattice is the *may-held* set of canonical lock ids (join
is union), so "lock not held here" means held on **no** path — releases
of such a lock are definitely unbalanced — while "held at exit" means
some path (normal or exceptional) leaks it.  Lock acquire/release
statements themselves are modelled as non-raising, so a bare
``acquire(); release()`` pair is clean and only the code *between* the
pair can leak.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from repro.lint.flow.cfg import build_cfg, default_may_raise
from repro.lint.flow.dataflow import (
    ForwardAnalysis,
    event_states,
    reachable_path,
    run_forward,
)
from repro.lint.flow.locks import (
    ACQUIRE_TAILS,
    CONDITION_CTOR_TAILS,
    RELEASE_TAILS,
    WAIT_TAILS,
    LockNamer,
    dotted,
    lock_ctor_tail,
    lockish_name,
)

#: Call tails treated as blocking primitives (blocking-under-lock and
#: async-blocking).  ``join`` and the queue verbs additionally require a
#: thread/queue-looking receiver so ``os.path.join`` / ``dict.get``
#: stay out; ``wait`` on a lock-ish receiver is a Condition wait, which
#: blocking-under-lock must NOT flag (waiting releases the lock).
BLOCKING_TAILS = {
    "sleep",
    "recv",
    "recvfrom",
    "recv_into",
    "sendall",
    "sendto",
    "accept",
    "connect",
    "select",
    "getaddrinfo",
    "gethostbyname",
    "wait",
    "join",
    "get",
    "put",
}

_RECEIVER_GUARDED_TAILS = {"join", "get", "put"}
_THREADISH_RE = re.compile(r"(thread|proc|worker|pool|queue)", re.IGNORECASE)

#: Method tails that mutate their receiver — ``self._rx.append(...)``
#: counts as a write to ``self._rx`` for the guarded-state rule.
MUTATOR_TAILS = {
    "append",
    "appendleft",
    "extend",
    "insert",
    "remove",
    "pop",
    "popleft",
    "clear",
    "add",
    "discard",
    "update",
    "setdefault",
}

_GUARDED_BY_RE = re.compile(r"#\s*lint:\s*guarded-by=([\w.]+)")

#: Witness paths in leak records are capped so SARIF stays readable.
_MAX_PATH = 8


#: Async frameworks whose same-named primitives suspend instead of
#: blocking — ``await asyncio.sleep(...)`` is the *correct* async idiom.
_ASYNC_NAMESPACES = {"asyncio", "anyio", "trio", "curio"}


def blocking_dotted(name: str) -> bool:
    """Is the dotted call name a curated blocking primitive?  (Shared
    with the rules, which re-check the names stored in summaries.)"""
    parts = name.split(".")
    tail = parts[-1]
    if tail not in BLOCKING_TAILS:
        return False
    if len(parts) > 1 and parts[0] in _ASYNC_NAMESPACES:
        return False
    if tail in _RECEIVER_GUARDED_TAILS:
        receiver = parts[-2] if len(parts) > 1 else ""
        if not _THREADISH_RE.search(receiver):
            return False
    return True


def blocking_call_name(call: ast.Call) -> Optional[str]:
    """Dotted name when ``call`` is a curated blocking primitive."""
    name = dotted(call.func)
    if name is not None and blocking_dotted(name):
        return name
    return None


def _walk_in_scope(node: ast.AST):
    """``ast.walk`` that does not descend into nested function scopes
    (lambdas, defs) — their calls don't execute here."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


# -- the lattice ------------------------------------------------------------


def _lock_ops(stmt: ast.stmt, namer: LockNamer):
    """``(op, canon, source_name, call)`` for lock calls inside ``stmt``."""
    ops = []
    for node in _walk_in_scope(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        name = dotted(func.value)
        if name is None:
            continue
        canon = namer.canonical(func.value)
        if canon is None:
            continue
        if func.attr in ACQUIRE_TAILS:
            # ``.acquire()`` is a strong signal by itself; ``.request()``
            # (the DES Resource spelling) needs a lock-ish receiver so
            # HTTP-style ``session.request`` stays out of the model.
            if func.attr == "acquire" or namer.is_lock(canon, name):
                ops.append(("acquire", canon, name, node))
        elif func.attr in RELEASE_TAILS and namer.is_lock(canon, name):
            ops.append(("release", canon, name, node))
    return ops


def _with_lock(item: ast.withitem, namer: LockNamer) -> Optional[str]:
    """Canonical id when a ``with`` item holds a lock (not a file etc.)."""
    expr = item.context_expr
    # ``with lock.acquire_timeout(...)``-style helpers are out of model;
    # plain names / self-attrs only.
    name = dotted(expr)
    if name is None:
        return None
    canon = namer.canonical(expr)
    if canon is None or not namer.is_lock(canon, name):
        return None
    return canon


class _HeldLocks(ForwardAnalysis):
    """May-held lock-set lattice over CFG events."""

    def __init__(self, namer: LockNamer):
        self.namer = namer

    def boundary(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, state, event):
        kind, node = event
        if kind == "stmt":
            for op, canon, _name, _call in _lock_ops(node, self.namer):
                state = state | {canon} if op == "acquire" else state - {canon}
            return state
        if kind == "enter":
            canon = _with_lock(node, self.namer)
            return state | {canon} if canon else state
        if kind == "exit":
            canon = _with_lock(node, self.namer)
            return state - {canon} if canon else state
        return state


def _may_raise(namer: LockNamer):
    """Statements whose only calls are lock ops are modelled non-raising
    — that is what keeps a bare acquire/release pair leak-free."""

    def predicate(stmt: ast.stmt) -> bool:
        if not default_may_raise(stmt):
            return False
        if isinstance(stmt, (ast.Assert, ast.Raise)):
            return True
        lock_calls = {id(call) for _o, _c, _n, call in _lock_ops(stmt, namer)}
        for node in ast.walk(stmt):
            if isinstance(node, ast.Await):
                return True
            if isinstance(node, ast.Call) and id(node) not in lock_calls:
                return True
        return False

    return predicate


# -- extraction -------------------------------------------------------------


def _collect_functions(body, prefix, class_name, out):
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = prefix + stmt.name
            out.append((qualname, stmt, class_name))
            _collect_functions(stmt.body, f"{qualname}.", None, out)
        elif isinstance(stmt, ast.ClassDef):
            _collect_functions(
                stmt.body, f"{prefix}{stmt.name}.", stmt.name, out
            )
        elif isinstance(stmt, (ast.If, ast.Try, ast.With)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    _collect_functions([child], prefix, class_name, out)
                elif isinstance(child, ast.ExceptHandler):
                    _collect_functions(child.body, prefix, class_name, out)


def _known_locks(tree: ast.Module) -> dict:
    """Lock creations: module-level names and ``Class.attr`` instance or
    class attributes, however deep inside the class's methods."""
    known: dict[str, dict] = {}

    def scan_class(cls: ast.ClassDef, cls_name: str) -> None:
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            kind = lock_ctor_tail(value) if value is not None else None
            if kind is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr = f"{cls_name}.{target.attr}"
                elif isinstance(target, ast.Name):
                    attr = f"{cls_name}.{target.id}"
                else:
                    continue
                known.setdefault(attr, {"kind": kind, "line": node.lineno})

    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            kind = lock_ctor_tail(stmt.value)
            if kind:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        known.setdefault(
                            target.id, {"kind": kind, "line": stmt.lineno}
                        )
        elif isinstance(stmt, ast.ClassDef):
            scan_class(stmt, stmt.name)
    return known


def _local_names(func) -> frozenset:
    """Names bound inside the function: params plus any Name stores.
    Everything else resolves at module scope, which is what lets an
    imported lock keep its resolvable module-level id."""
    args = func.args
    names = {
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    }
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.add(extra.arg)
    for node in _walk_in_scope(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
    return frozenset(names)


def _has_lock_events(func, namer: LockNamer) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.withitem) and _with_lock(node, namer):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ACQUIRE_TAILS | RELEASE_TAILS:
                name = dotted(node.func.value)
                canon = namer.canonical(node.func.value) if name else None
                if canon and (
                    node.func.attr == "acquire" or namer.is_lock(canon, name)
                ):
                    return True
    return False


def _loop_wait_ids(func) -> set:
    """ids of Call nodes that have a loop ancestor within this function."""
    inside: set[int] = set()

    def walk(node, in_loop):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            now = in_loop or isinstance(child, (ast.While, ast.For, ast.AsyncFor))
            if isinstance(child, ast.Call) and in_loop:
                inside.add(id(child))
            walk(child, now)

    walk(func, False)
    return inside


def _first_line(block) -> Optional[int]:
    for _kind, node in block.events:
        line = getattr(node, "lineno", None)
        if line is not None:
            return line
    return None


class _FunctionFacts:
    """Facts of one function; CFG + dataflow only when it touches locks."""

    def __init__(self, qualname, func, class_name, namer, guard_lines, record_writes):
        self.qualname = qualname
        self.func = func
        self.class_name = class_name
        self.namer = namer
        self.guard_lines = guard_lines  # line -> guarded-by lock expr
        self.record_writes = record_writes
        self.guarded_by: dict[str, str] = {}

    def extract(self) -> dict:
        facts: dict = {}
        namer = self.namer
        if _has_lock_events(self.func, namer):
            cfg = build_cfg(self.func, may_raise=_may_raise(namer))
            analysis = _HeldLocks(namer)
            in_states, _out = run_forward(cfg, analysis)
            events = list(event_states(cfg, analysis, in_states))
            self._event_facts(facts, events)
            self._leaks(facts, cfg, in_states)
        else:
            self._light_walk(facts)
        if isinstance(self.func, ast.AsyncFunctionDef):
            facts["is_async"] = True
            blocking = self._async_blocking()
            if blocking:
                facts["blocking"] = blocking
        if facts:
            facts["line"] = self.func.lineno
        return facts

    # -- with dataflow states ------------------------------------------------

    def _event_facts(self, facts: dict, events) -> None:
        namer = self.namer
        loop_waits = _loop_wait_ids(self.func)
        for _block, (kind, node), state in events:
            if kind == "enter":
                canon = _with_lock(node, namer)
                if canon:
                    facts.setdefault("acquires", []).append(
                        {
                            "lock": canon,
                            "line": node.context_expr.lineno,
                            "held": sorted(state - {canon}),
                            "via": "with",
                        }
                    )
            elif kind == "stmt":
                self._stmt_facts(facts, node, state, loop_waits)

    def _stmt_facts(self, facts, stmt, state, loop_waits) -> None:
        namer = self.namer
        lock_call_ids = set()
        for op, canon, _name, call in _lock_ops(stmt, namer):
            lock_call_ids.add(id(call))
            if op == "acquire":
                facts.setdefault("acquires", []).append(
                    {
                        "lock": canon,
                        "line": call.lineno,
                        "held": sorted(state - {canon}),
                        "via": "call",
                    }
                )
                state = state | {canon}
            else:
                if canon not in state and canon in namer.known:
                    facts.setdefault("releases_unheld", []).append(
                        {"lock": canon, "line": call.lineno}
                    )
                state = state - {canon}
        self._common_stmt_facts(facts, stmt, state, loop_waits, lock_call_ids)

    def _common_stmt_facts(self, facts, stmt, state, loop_waits, skip_ids) -> None:
        for node in _walk_in_scope(stmt):
            if isinstance(node, ast.Call) and id(node) not in skip_ids:
                self._call_facts(facts, node, state, loop_waits)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
                self._write_facts(facts, node, state)

    def _call_facts(self, facts, call, state, loop_waits) -> None:
        namer = self.namer
        func = call.func
        name = dotted(func)
        if name is None:
            return
        if isinstance(func, ast.Attribute) and func.attr in WAIT_TAILS:
            receiver = dotted(func.value)
            canon = namer.canonical(func.value) if receiver else None
            if canon is not None and (
                namer.known.get(canon, {}).get("kind") in CONDITION_CTOR_TAILS
                or lockish_name(receiver)
            ):
                facts.setdefault("waits", []).append(
                    {
                        "lock": canon,
                        "line": call.lineno,
                        "in_loop": id(call) in loop_waits,
                    }
                )
                return  # a Condition wait is not a blocking call record
        if state:
            facts.setdefault("calls_held", []).append(
                {"call": name, "line": call.lineno, "held": sorted(state)}
            )
        # self._rx.append(...) is a write to self._rx.
        parts = name.split(".")
        if (
            self.record_writes
            and self.class_name
            and len(parts) == 3
            and parts[0] == "self"
            and parts[2] in MUTATOR_TAILS
        ):
            facts.setdefault("attr_writes", []).append(
                {
                    "attr": f"{self.class_name}.{parts[1]}",
                    "line": call.lineno,
                    "held": sorted(state),
                }
            )

    def _write_facts(self, facts, node, state) -> None:
        if isinstance(node, (ast.Assign, ast.Delete)):
            targets = node.targets
        else:
            targets = [node.target]
        for target in targets:
            # self.x = ... and self.x[k] = ... both write self.x.
            if isinstance(target, ast.Subscript):
                target = target.value
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.class_name
            ):
                continue
            attr = f"{self.class_name}.{target.attr}"
            guard = self.guard_lines.get(node.lineno)
            if guard is not None:
                self.guarded_by[attr] = self._canon_guard(guard)
            if self.record_writes:
                facts.setdefault("attr_writes", []).append(
                    {"attr": attr, "line": node.lineno, "held": sorted(state)}
                )

    def _canon_guard(self, guard: str) -> str:
        parts = guard.split(".")
        if parts[0] == "self" and self.class_name and len(parts) == 2:
            return f"{self.class_name}.{parts[1]}"
        return guard

    # -- without dataflow (no lock events: held is always empty) -------------

    def _light_walk(self, facts: dict) -> None:
        loop_waits = _loop_wait_ids(self.func)
        empty = frozenset()

        def walk(node):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(child, ast.Call):
                    self._call_facts(facts, child, empty, loop_waits)
                elif isinstance(
                    child, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)
                ):
                    self._write_facts(facts, child, empty)
                walk(child)

        walk(self.func)

    def _async_blocking(self) -> list:
        blocking = []
        for node in _walk_in_scope(self.func):
            if isinstance(node, ast.Call):
                name = blocking_call_name(node)
                if name is not None:
                    blocking.append({"call": name, "line": node.lineno})
        return sorted(blocking, key=lambda rec: rec["line"])

    def _leaks(self, facts: dict, cfg, in_states) -> None:
        exit_held = in_states.get(cfg.exit)
        if not exit_held:
            return
        acquires = {
            rec["lock"]: rec for rec in reversed(facts.get("acquires", []))
        }
        for canon in sorted(exit_held):
            acquire = acquires.get(canon)
            line = acquire["line"] if acquire else self.func.lineno
            path = self._witness(cfg, in_states, canon, line)
            facts.setdefault("leaks", []).append(
                {"lock": canon, "line": line, "path": path}
            )

    def _witness(self, cfg, in_states, canon, acquire_line) -> list:
        """[[line, note], ...] along one held-throughout path to exit."""
        start = None
        for block in cfg.blocks:
            if any(
                getattr(node, "lineno", None) == acquire_line
                for _kind, node in block.events
            ):
                start = block.id
                break
        path = [[acquire_line, f"'{canon}' acquired here"]]
        if start is not None:
            blocks = reachable_path(
                cfg,
                start,
                cfg.exit,
                admit=lambda b: canon in in_states.get(b, frozenset()),
            )
            for block_id in (blocks or [])[1:-1]:
                line = _first_line(cfg.block(block_id))
                if line is not None and line != acquire_line:
                    path.append([line, f"'{canon}' still held"])
        del path[1 : max(1, len(path) - (_MAX_PATH - 2))]
        path.append(
            [self.func.lineno, f"function can exit with '{canon}' held"]
        )
        return path


def _thread_facts(tree: ast.Module) -> dict:
    """Thread creations vs joins, module-wide.  ``threading.Timer`` is
    deliberately not a creation: timers are one-shot and join-less by
    design (the server's lease machinery relies on that)."""
    creates: list[dict] = []
    joins: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if parts[-1] == "Thread":
            creates.append({"line": node.lineno})
        elif parts[-1] == "join" and len(parts) > 1:
            if _THREADISH_RE.search(parts[-2]):
                joins.add(node.lineno)
    facts: dict = {}
    if creates:
        facts["creates"] = sorted(creates, key=lambda rec: rec["line"])
    if joins:
        facts["joins"] = sorted(joins)
    return facts


def extract_flow(tree: ast.Module, source: str, module: str) -> dict:
    """The per-module flow-fact dict (empty for lock/thread-free files)."""
    known = _known_locks(tree)
    guard_lines = {
        lineno: match.group(1)
        for lineno, line in enumerate(source.splitlines(), start=1)
        for match in [_GUARDED_BY_RE.search(line)]
        if match
    }
    lock_classes = {canon.split(".")[0] for canon in known if "." in canon}

    functions: list = []
    _collect_functions(tree.body, "", None, functions)

    flow: dict = {}
    if known:
        flow["locks"] = known
    guarded_by: dict[str, str] = {}

    # Class-body declarations can carry the annotation too:
    #   _rx: deque  # lint: guarded-by=self._lock
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        for node in stmt.body:
            target = getattr(node, "target", None)
            if isinstance(node, ast.AnnAssign) and isinstance(target, ast.Name):
                guard = guard_lines.get(node.lineno)
                if guard is not None:
                    parts = guard.split(".")
                    canon = (
                        f"{stmt.name}.{parts[1]}"
                        if parts[0] == "self" and len(parts) == 2
                        else guard
                    )
                    guarded_by[f"{stmt.name}.{target.id}"] = canon

    func_facts: dict[str, dict] = {}
    for qualname, func, class_name in functions:
        namer = LockNamer(
            qualname=qualname,
            class_name=class_name,
            known=known,
            local_names=_local_names(func),
        )
        # Attribute-write facts are only interesting for classes that
        # own a lock (or when the module uses guarded-by annotations at
        # all) — that is what keeps lock-free modules' summaries tiny.
        record_writes = bool(
            class_name and (class_name in lock_classes or guard_lines)
        )
        extractor = _FunctionFacts(
            qualname, func, class_name, namer, guard_lines, record_writes
        )
        facts = extractor.extract()
        guarded_by.update(extractor.guarded_by)
        if facts:
            func_facts[qualname] = facts
    if func_facts:
        flow["functions"] = func_facts
    if guarded_by:
        flow["guarded_by"] = guarded_by
    threads = _thread_facts(tree)
    if threads:
        flow["threads"] = threads
    return flow
