"""Flow-analysis timing guard: the concurrency pass must stay cheap.

``python -m repro.lint.flow.timing [paths] --budget 5`` runs only the
concurrency rule pack (the CFG + dataflow half of the linter) twice in
one process — once against an empty cache, once warm — and fails
unless:

* the warm run re-parsed **zero** files (the flow facts ride inside the
  cached module summaries, so a warm pass must never rebuild a CFG),
* cold and warm produced byte-identical findings,
* the warm pass fits the wall-clock budget.

Like :mod:`repro.lint.project.timing` it runs in-process so the ratio
reflects the analyzer, not interpreter start-up; it is likewise on the
``wall-clock`` rule's allow list (it measures the linter itself).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import Optional

from repro.lint.config import load_config
from repro.lint.project.timing import measure

#: The concurrency rule pack (docs/concurrency.md), in gating order.
FLOW_RULE_IDS = (
    "lock-balance",
    "lock-order",
    "guarded-state",
    "blocking-under-lock",
    "cond-wait-loop",
    "async-blocking",
    "thread-lifecycle",
)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint-flow-timing",
        description="assert the concurrency pass is cache-friendly and cheap",
    )
    parser.add_argument("paths", nargs="*", default=["src"])
    parser.add_argument(
        "--budget",
        type=float,
        default=5.0,
        help="warm-pass wall-clock budget in seconds (default 5)",
    )
    parser.add_argument("--warm-runs", type=int, default=3)
    args = parser.parse_args(argv)

    config = load_config(Path.cwd())
    paths = [Path(p) for p in args.paths]
    with tempfile.TemporaryDirectory(prefix="repro-lint-flow-timing-") as tmp:
        result = measure(
            paths,
            config,
            Path(tmp) / "cache.json",
            warm_runs=args.warm_runs,
            select=list(FLOW_RULE_IDS),
        )

    print(
        f"flow pass over {result['files']} files: "
        f"cold {result['cold_seconds']:.3f}s ({result['cold_parsed']} parsed), "
        f"warm {result['warm_seconds']:.3f}s ({result['warm_parsed']} parsed)"
    )
    failed = False
    if not result["identical"]:
        print("FAIL: warm findings differ from cold findings", file=sys.stderr)
        failed = True
    if result["warm_parsed"] != 0:
        print(
            f"FAIL: warm run re-parsed {result['warm_parsed']} files "
            "(flow facts must come from the summary cache)",
            file=sys.stderr,
        )
        failed = True
    if result["warm_seconds"] > args.budget:
        print(
            f"FAIL: warm pass took {result['warm_seconds']:.3f}s > budget "
            f"{args.budget:.3f}s",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
