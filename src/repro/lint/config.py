"""Configuration: ``[tool.repro-lint]`` in ``pyproject.toml``.

Recognised keys (all optional)::

    [tool.repro-lint]
    select = ["wall-clock", ...]      # enable only these rules
    ignore = ["float-time-eq", ...]   # disable these rules
    exclude = ["*.egg-info", ...]     # path patterns never linted

    [tool.repro-lint.severity]
    float-time-eq = "warning"         # downgrade a rule

    [tool.repro-lint.per-file-ignores]
    "benchmarks/*" = ["wall-clock"]   # rule ids ignored for a path glob

    [tool.repro-lint.wall-clock]      # per-rule options (see each rule)
    allow-modules = ["repro.core.clock", "repro.des.realtime"]

Parsing uses :mod:`tomllib` (Python 3.11+).  On 3.10, where tomllib does
not exist and this repo adds no third-party dependencies, a minimal
built-in parser covers the subset above (tables, strings, ints, bools,
string/int lists).
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.lint.errors import ConfigError
from repro.lint.findings import Severity

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on 3.10
    _toml = None

#: Path patterns excluded from linting regardless of configuration.
DEFAULT_EXCLUDES = (
    "*.egg-info",
    "__pycache__",
    ".git",
    ".pytest_cache",
    "build",
    "dist",
)


@dataclass
class LintConfig:
    """Resolved configuration for one lint run."""

    select: Optional[list[str]] = None
    ignore: list[str] = field(default_factory=list)
    exclude: list[str] = field(default_factory=lambda: list(DEFAULT_EXCLUDES))
    severities: dict[str, Severity] = field(default_factory=dict)
    per_file_ignores: dict[str, list[str]] = field(default_factory=dict)
    rule_options: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Directory the config file lives in; paths resolve against it.
    root: Optional[Path] = None

    # -- queries -----------------------------------------------------------

    def is_excluded(self, path: Path) -> bool:
        parts = path.parts
        for pattern in self.exclude:
            if fnmatch.fnmatch(str(path), pattern):
                return True
            if any(fnmatch.fnmatch(part, pattern) for part in parts):
                return True
        return False

    def ignored_rules_for(self, path: str) -> set[str]:
        """Rule ids suppressed for ``path`` by per-file-ignores globs."""
        normalized = path.replace("\\", "/")
        ignored: set[str] = set()
        for pattern, rules in self.per_file_ignores.items():
            if fnmatch.fnmatch(normalized, pattern):
                ignored.update(rules)
        return ignored


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Locate and parse pyproject.toml, walking up from ``start``."""
    start = Path(start) if start is not None else Path.cwd()
    if start.is_file():
        return _config_from_pyproject(start)
    for directory in [start, *start.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return _config_from_pyproject(candidate)
    return LintConfig()


def _config_from_pyproject(pyproject: Path) -> LintConfig:
    text = pyproject.read_text(encoding="utf-8")
    if _toml is not None:
        try:
            data = _toml.loads(text)
        except _toml.TOMLDecodeError as exc:
            raise ConfigError(f"{pyproject}: {exc}") from exc
    else:  # pragma: no cover - 3.10 fallback
        data = _parse_minimal_toml(text)
    section = data.get("tool", {}).get("repro-lint", {})
    return config_from_dict(section, root=pyproject.parent)


def config_from_dict(section: dict, root: Optional[Path] = None) -> LintConfig:
    """Build a :class:`LintConfig` from the ``[tool.repro-lint]`` table."""
    config = LintConfig(root=root)
    section = dict(section)

    select = section.pop("select", None)
    if select is not None:
        config.select = _string_list("select", select)
    config.ignore = _string_list("ignore", section.pop("ignore", []))
    config.exclude = list(DEFAULT_EXCLUDES) + _string_list(
        "exclude", section.pop("exclude", [])
    )

    for rule_id, value in dict(section.pop("severity", {})).items():
        try:
            config.severities[rule_id] = Severity(value)
        except ValueError:
            raise ConfigError(
                f"severity.{rule_id}: expected 'error' or 'warning', got {value!r}"
            ) from None

    for pattern, rules in dict(section.pop("per-file-ignores", {})).items():
        config.per_file_ignores[pattern] = _string_list(
            f"per-file-ignores.{pattern}", rules
        )

    # Every remaining sub-table is per-rule options.
    for key, value in section.items():
        if isinstance(value, dict):
            config.rule_options[key] = value
        else:
            raise ConfigError(f"unknown [tool.repro-lint] key: {key!r}")
    return config


def _string_list(key: str, value: Any) -> list[str]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ConfigError(f"{key}: expected a list of strings, got {value!r}")
    return list(value)


# -- minimal TOML fallback (Python 3.10, no tomllib, no new deps) ----------

_SECTION_RE = re.compile(r"^\[([^\]]+)\]\s*$")
_KEY_RE = re.compile(r'^\s*(?:"([^"]+)"|([A-Za-z0-9_\-]+))\s*=\s*(.+)$')


def _parse_minimal_toml(text: str) -> dict:
    """Parse the TOML subset the lint config uses.

    Supports ``[dotted.tables]``, quoted/bare keys, string/int/bool
    scalars and (possibly multi-line) homogeneous lists.  Not a general
    TOML parser — just enough to read ``[tool.repro-lint]`` on 3.10.
    """
    data: dict = {}
    table = data
    pending: Optional[tuple[str, str]] = None  # (key, accumulated list text)
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if pending is not None:
            key, acc = pending
            acc += " " + line
            if _balanced(acc):
                table[key] = _parse_value(acc)
                pending = None
            else:
                pending = (key, acc)
            continue
        if not line or line.startswith("#"):
            continue
        match = _SECTION_RE.match(line)
        if match:
            table = data
            for part in _split_table_name(match.group(1)):
                table = table.setdefault(part, {})
            continue
        match = _KEY_RE.match(line)
        if not match:
            continue
        key = match.group(1) or match.group(2)
        value = match.group(3).strip()
        if value.startswith("[") and not _balanced(value):
            pending = (key, value)
        else:
            table[key] = _parse_value(value)
    return data


def _split_table_name(name: str) -> list[str]:
    parts, current, quoted = [], "", False
    for char in name:
        if char == '"':
            quoted = not quoted
        elif char == "." and not quoted:
            parts.append(current)
            current = ""
        else:
            current += char
    parts.append(current)
    return [part.strip() for part in parts]


def _balanced(value: str) -> bool:
    depth = 0
    in_string = False
    for char in value.split("#")[0]:
        if char == '"':
            in_string = not in_string
        elif not in_string:
            depth += {"[": 1, "]": -1}.get(char, 0)
    return depth == 0


def _parse_value(value: str) -> Any:
    value = value.strip()
    if value.startswith("["):
        inner = value[value.index("[") + 1 : value.rindex("]")]
        items = [item.strip() for item in _split_items(inner)]
        return [_parse_value(item) for item in items if item]
    if value.startswith('"'):
        end = value.index('"', 1)
        return value[1:end]
    if value in ("true", "false"):
        return value == "true"
    stripped = value.split("#")[0].strip()
    try:
        return int(stripped, 0)
    except ValueError:
        raise ConfigError(f"cannot parse TOML value: {value!r}") from None


def _split_items(inner: str) -> list[str]:
    items, current, in_string = [], "", False
    for char in inner:
        if char == '"':
            in_string = not in_string
            current += char
        elif char == "," and not in_string:
            items.append(current)
            current = ""
        else:
            current += char
    items.append(current)
    return items
