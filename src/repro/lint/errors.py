"""Error hierarchy of the lint framework itself.

(The linter practices what it preaches: rule ``error-hierarchy`` demands
domain exceptions, so the lint package ships its own.)
"""


class LintError(Exception):
    """Base class for all lint-framework errors."""


class ConfigError(LintError):
    """Malformed ``[tool.repro-lint]`` configuration."""


class RegistryError(LintError):
    """Rule registration/selection misuse (duplicate or unknown id)."""
