"""Rule base class and the pluggable rule registry.

A rule is a class with a unique kebab-case ``id``; registering it makes
it discoverable by the checker, the CLI (``--list-rules``) and the
config layer.  Third parties (benchmarks, future subsystems) can add
rules by defining a subclass and calling :func:`register` — nothing in
the checker enumerates rules statically.
"""

from __future__ import annotations

import ast
import difflib
from typing import Iterable, Iterator, Optional, Type

from repro.lint.context import ModuleContext
from repro.lint.errors import RegistryError
from repro.lint.findings import Finding, Severity


class Rule:
    """Base class for one lint rule.

    Class attributes
    ----------------
    id:
        Unique kebab-case identifier (used in ``# lint: disable=``,
        config ``select``/``ignore`` and finding output).
    summary:
        One-line description shown by ``--list-rules``.
    default_severity:
        ERROR findings gate the run; WARNING findings are advisory.
    default_scope:
        Dotted module prefixes the rule applies to, or ``None`` for
        every module.  Overridable per rule via config ``scope``.
    """

    id: str = ""
    summary: str = ""
    default_severity: Severity = Severity.ERROR
    default_scope: Optional[tuple[str, ...]] = ("repro",)

    def __init__(self, config):
        self.config = config
        self.options: dict = config.rule_options.get(self.id, {})
        self.severity: Severity = config.severities.get(self.id, self.default_severity)
        scope = self.options.get("scope")
        self.scope: Optional[tuple[str, ...]] = (
            tuple(scope) if scope is not None else self.default_scope
        )

    # -- scoping -----------------------------------------------------------

    def applies_to(self, ctx: ModuleContext) -> bool:
        if self.scope is None:
            return True
        return ctx.in_package(*self.scope)

    # -- checking ----------------------------------------------------------

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module; must not mutate the tree."""
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """Base class for one whole-program rule.

    Same registry, configuration, severity and suppression machinery as
    the per-file :class:`Rule`, but :meth:`check` receives the
    :class:`~repro.lint.project.engine.ProjectIndex` (every module's
    symbol summary plus the import graph) instead of one module, so a
    rule can follow a constant across files or reject a layering edge.
    ``scope`` restricts which modules a finding may be *reported in*
    (rules filter with :meth:`in_scope`).
    """

    def check(self, index) -> Iterator[Finding]:  # type: ignore[override]
        """Yield findings over the whole project; must not mutate it."""
        raise NotImplementedError

    def in_scope(self, module: str) -> bool:
        if self.scope is None:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def finding_at(
        self,
        path: str,
        line: int,
        message: str,
        col: int = 1,
        *,
        severity: Optional[Severity] = None,
        code_flow: Iterable = (),
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=path,
            line=line,
            col=col,
            message=message,
            severity=severity if severity is not None else self.severity,
            code_flow=tuple(tuple(step) for step in code_flow),
        )


#: All registered rule classes (per-file and project), keyed by rule id.
_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise RegistryError(f"rule {rule_cls.__name__} has no id")
    existing = _REGISTRY.get(rule_cls.id)
    if existing is not None and existing is not rule_cls:
        raise RegistryError(
            f"duplicate rule id {rule_cls.id!r}: "
            f"{existing.__name__} vs {rule_cls.__name__}"
        )
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rule_classes() -> dict[str, Type[Rule]]:
    """Registered rules (id -> class), loading the built-in set."""
    # Importing the rules packages registers every built-in rule.
    import repro.lint.rules  # noqa: F401
    import repro.lint.project.rules  # noqa: F401
    import repro.lint.flow.rules  # noqa: F401
    import repro.lint.effects.rules  # noqa: F401

    return dict(_REGISTRY)


def is_project_rule(rule_cls: Type[Rule]) -> bool:
    return issubclass(rule_cls, ProjectRule)


def validate_rule_ids(rule_ids: Iterable[str]) -> None:
    """Raise :class:`RegistryError` (with a "did you mean" hint) for ids
    that name no registered rule of either kind."""
    classes = all_rule_classes()
    unknown = sorted(set(r for r in rule_ids if r not in classes))
    if not unknown:
        return
    hints = []
    for rule_id in unknown:
        close = difflib.get_close_matches(rule_id, classes, n=1, cutoff=0.4)
        hints.append(
            f"{rule_id!r} (did you mean {close[0]!r}?)" if close else repr(rule_id)
        )
    raise RegistryError(f"unknown rule id(s): {', '.join(hints)}")


def instantiate(
    config, select: Optional[Iterable[str]] = None, *, project: bool = False
) -> list[Rule]:
    """Build rule instances of one kind enabled under ``config``.

    ``select`` (CLI override) wins over config select/ignore.  Ids are
    validated against the union of both kinds, so selecting a project
    rule while instantiating the per-file pass is not an error — it just
    contributes nothing to this pass.
    """
    classes = all_rule_classes()
    if select is not None:
        wanted = list(select)
    else:
        wanted = config.select if config.select is not None else sorted(classes)
        wanted = [rule_id for rule_id in wanted if rule_id not in config.ignore]
    validate_rule_ids(wanted)
    return [
        classes[rule_id](config)
        for rule_id in wanted
        if is_project_rule(classes[rule_id]) == project
    ]
