"""The project module graph: import edges, cycles, dependent closures.

Nodes are dotted module names; edges point from importer to imported
module (restricted to modules that are part of the project index).
Cycle detection runs Tarjan's strongly-connected-components algorithm —
iteratively, so a pathological import chain cannot hit the recursion
limit — over the *top-level* import edges only: a function-local import
is a legitimate lazy-cycle-breaker at run time, so it must not count as
a cycle here (it still counts as a layer edge).
"""

from __future__ import annotations

from typing import Iterable


class ModuleGraph:
    """Directed import graph over project modules."""

    def __init__(self, edges: dict[str, set[str]]):
        #: importer -> imported (project-internal, top-level imports).
        self.edges: dict[str, set[str]] = {m: set(t) for m, t in edges.items()}
        for targets in list(self.edges.values()):
            for target in targets:
                self.edges.setdefault(target, set())
        self.reverse: dict[str, set[str]] = {m: set() for m in self.edges}
        for module, targets in self.edges.items():
            for target in targets:
                self.reverse[target].add(module)

    def modules(self) -> list[str]:
        return sorted(self.edges)

    def deps(self, module: str) -> set[str]:
        return self.edges.get(module, set())

    def dependents(self, module: str) -> set[str]:
        return self.reverse.get(module, set())

    # -- closures ----------------------------------------------------------

    def _closure(self, seeds: Iterable[str], adjacency: dict[str, set[str]]) -> set[str]:
        seen: set[str] = set()
        stack = [s for s in seeds if s in adjacency]
        while stack:
            module = stack.pop()
            if module in seen:
                continue
            seen.add(module)
            stack.extend(adjacency.get(module, ()))
        return seen

    def transitive_deps(self, module: str) -> set[str]:
        """Modules reachable from ``module`` (module itself excluded)."""
        return self._closure(self.deps(module), self.edges)

    def transitive_dependents(self, seeds: Iterable[str]) -> set[str]:
        """Every module whose meaning may change when ``seeds`` change —
        the invalidation set the incremental cache uses (seeds included)."""
        seeds = [s for s in seeds if s in self.edges]
        out = self._closure(
            {d for s in seeds for d in self.dependents(s)}, self.reverse
        )
        out.update(seeds)
        return out

    # -- cycles ------------------------------------------------------------

    def cycles(self) -> list[list[str]]:
        """Strongly connected components of size > 1 (plus self-loops),
        each rotated to start at its smallest module, sorted for
        deterministic output."""
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = 0
        sccs: list[list[str]] = []

        for root in sorted(self.edges):
            if root in index:
                continue
            # Iterative Tarjan: work items are (node, iterator state).
            work = [(root, iter(sorted(self.edges[root])))]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self.edges[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in self.edges.get(node, ()):
                        start = component.index(min(component))
                        sccs.append(component[start:] + component[:start])
        return sorted(sccs)
