"""repro.lint.project — whole-program analysis pass.

Where the per-file pass (:mod:`repro.lint.checker`) sees one module at a
time, this package builds a project-wide picture — a symbol table per
module (:mod:`symbols`), an import graph with cycle detection
(:mod:`graph`), import/symbol resolution against the ``repro`` package
(:mod:`resolver`) and an incremental, content-hash-keyed cache
(:mod:`cache`) — and runs :class:`~repro.lint.registry.ProjectRule`
subclasses over it (:mod:`rules`).  The paper keeps three independent
models of one bus protocol consistent; these rules are the commit-time
enforcement of that consistency.

Entry point: :func:`repro.lint.project.engine.run_project`.
"""

from repro.lint.project.resolver import ImportResolver, module_name_for
from repro.lint.project.symbols import ModuleSummary, summarize_source

__all__ = [
    "ImportResolver",
    "ModuleSummary",
    "ProjectStats",
    "module_name_for",
    "run_project",
    "summarize_source",
]


def __getattr__(name):
    # The engine pulls file discovery from the per-file checker, and the
    # checker pulls module naming from this package's resolver; loading
    # the engine lazily keeps that pair import-order independent.
    if name in ("ProjectStats", "run_project"):
        from repro.lint.project import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
