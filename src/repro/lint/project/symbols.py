"""Per-module symbol summaries for the whole-program pass.

A :class:`ModuleSummary` is everything the project rules need to know
about one file — imports, module-level bindings, constant expressions,
class/function skeletons, raise sites, ``__all__``, suppression comments
— extracted in a single AST walk.  A summary is a pure function of the
file's text, built from plain JSON-serialisable data, so it can be
computed in a multiprocessing worker and cached across runs keyed on the
file's content hash.

Constant expressions are stored as small nested dicts::

    {"t": "num",  "v": 16}
    {"t": "name", "id": "FRAME_BITS"}
    {"t": "dot",  "d": "constants.FRAME_BITS"}
    {"t": "bin",  "op": "-", "l": ..., "r": ...}
    {"t": "un",   "op": "-", "v": ...}

which is exactly the subset the ``proto-const-drift`` rule can propagate
across module boundaries.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.lint.suppressions import SuppressionIndex

_BINOPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
    ast.LShift: "<<",
    ast.RShift: ">>",
    ast.BitOr: "|",
    ast.BitAnd: "&",
    ast.BitXor: "^",
}

_UNARYOPS = {ast.USub: "-", ast.UAdd: "+", ast.Invert: "~"}


@dataclass
class ModuleSummary:
    """Everything the project rules see of one module."""

    module: str
    path: str
    is_package: bool = False
    #: Import records: {"kind": "import"|"from", "module": str|None,
    #: "level": int, "names": [[name, local], ...], "line": int,
    #: "top": bool} — ``top`` is False for imports inside functions.
    imports: list[dict] = field(default_factory=list)
    #: Ordered module-level bindings: {"name", "kind": "import"|"from"|
    #: "assign"|"def"|"class", "line", "cond": bool, plus for "from":
    #: "module"/"level"/"orig", for "import": "target"}.
    bindings: list[dict] = field(default_factory=list)
    #: Module-level constant expressions, name -> expr dict (see module
    #: docstring) — only for assignments the encoder understands.
    constants: dict[str, dict] = field(default_factory=dict)
    #: Class skeletons: name -> {"bases": [dotted str], "line": int}.
    classes: dict[str, dict] = field(default_factory=dict)
    #: Functions: qualname -> {"line": int, "raises": [dotted],
    #: "calls": [dotted], "doc_raises": [names]|None}.
    functions: dict[str, dict] = field(default_factory=dict)
    #: Every raise site: {"name": dotted, "line": int, "func": qualname|None}.
    raises: list[dict] = field(default_factory=list)
    #: ``__all__`` as a literal list, or None when absent.
    all_names: Optional[list[str]] = None
    all_line: int = 0
    #: True when ``__all__`` exists but is not a plain literal list.
    all_dynamic: bool = False
    #: Dotted references used anywhere in the module body (``alias`` or
    #: ``alias.attr``), deduplicated — the raw material for dead-export
    #: reference counting.
    refs: list[str] = field(default_factory=list)
    #: Serialized suppression comments: {"file": [...], "lines": {"n": [...]}}.
    suppressions: dict = field(default_factory=dict)
    #: Concurrency facts distilled by :mod:`repro.lint.flow.facts`
    #: (locks, per-function acquire/leak/wait records, guarded-by map,
    #: thread lifecycle) — empty for modules that touch none of that.
    flow: dict = field(default_factory=dict)
    #: Effect seeds distilled by :mod:`repro.lint.effects.extract`
    #: (per-function effect sites, call sites with lines, scheduler
    #: registrations, ``# lint: effect=`` annotations, self-mutation).
    effects: dict = field(default_factory=dict)
    #: {"msg": str, "line": int, "col": int} when the file does not parse.
    parse_error: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "is_package": self.is_package,
            "imports": self.imports,
            "bindings": self.bindings,
            "constants": self.constants,
            "classes": self.classes,
            "functions": self.functions,
            "raises": self.raises,
            "all_names": self.all_names,
            "all_line": self.all_line,
            "all_dynamic": self.all_dynamic,
            "refs": self.refs,
            "suppressions": self.suppressions,
            "flow": self.flow,
            "effects": self.effects,
            "parse_error": self.parse_error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        return cls(**data)

    # -- conveniences used by the rules ------------------------------------

    def binding_map(self) -> dict[str, dict]:
        """Last-wins map of module-level bindings."""
        return {rec["name"]: rec for rec in self.bindings}

    def suppression_index(self) -> SuppressionIndex:
        index = SuppressionIndex()
        index.file_wide = set(self.suppressions.get("file", []))
        index.by_line = {
            int(line): set(rules)
            for line, rules in self.suppressions.get("lines", {}).items()
        }
        return index


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _encode_expr(node: ast.AST) -> Optional[dict]:
    if isinstance(node, ast.Constant) and type(node.value) in (int, float):
        return {"t": "num", "v": node.value}
    if isinstance(node, ast.Name):
        return {"t": "name", "id": node.id}
    if isinstance(node, ast.Attribute):
        dotted = _dotted(node)
        return {"t": "dot", "d": dotted} if dotted else None
    if isinstance(node, ast.BinOp):
        op = _BINOPS.get(type(node.op))
        left = _encode_expr(node.left)
        right = _encode_expr(node.right)
        if op and left and right:
            return {"t": "bin", "op": op, "l": left, "r": right}
        return None
    if isinstance(node, ast.UnaryOp):
        op = _UNARYOPS.get(type(node.op))
        value = _encode_expr(node.operand)
        if op and value:
            return {"t": "un", "op": op, "v": value}
        return None
    return None


_GOOGLE_RAISES_RE = re.compile(r"^\s*Raises\s*:?\s*$")
_SECTION_RE = re.compile(
    r"^\s*(Args|Arguments|Returns|Yields|Attributes|Notes?|Examples?|"
    r"See Also|Warns|References|Parameters)\s*:?\s*$",
    re.IGNORECASE,
)
_EXC_NAME_RE = re.compile(r"^\s*([A-Za-z_][\w.]*)\s*(?::|$|\s)")


def _doc_raises(doc: Optional[str]) -> Optional[list[str]]:
    """Exception names documented under a ``Raises:`` section.

    Understands Google style (``Raises:`` then indented ``Name: why``)
    and NumPy style (``Raises`` underlined with dashes).  Returns None
    when the docstring has no Raises section.
    """
    if not doc:
        return None
    lines = doc.splitlines()
    names: list[str] = []
    in_section = False
    found = False
    for i, line in enumerate(lines):
        if not in_section:
            if _GOOGLE_RAISES_RE.match(line):
                # NumPy style has a dashed underline on the next line;
                # Google style goes straight to the entries.  Both open
                # the section.
                in_section = True
                found = True
            continue
        stripped = line.strip()
        if not stripped or set(stripped) <= {"-"}:
            continue
        if _SECTION_RE.match(line):
            in_section = False
            continue
        match = _EXC_NAME_RE.match(line)
        if match and (match.group(1)[:1].isupper() or "." in match.group(1)):
            names.append(match.group(1))
    if not found:
        return None
    # Deduplicate, preserving order.
    return list(dict.fromkeys(names))


class _Extractor:
    def __init__(self, summary: ModuleSummary):
        self.s = summary

    def run(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            self._module_stmt(stmt, conditional=False)
        # References are only useful when their base is an imported name
        # (that is how another module's symbol can be reached), so filter
        # on the import bindings to keep summaries small.
        imported = {
            local for rec in self.s.imports for _target, local in rec["names"]
        }
        refs: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted and dotted.split(".")[0] in imported:
                    refs.add(".".join(dotted.split(".")[:2]))
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in imported:
                    refs.add(node.id)
        self.s.refs = sorted(refs)

    # -- module-level statements -------------------------------------------

    def _module_stmt(self, stmt: ast.stmt, conditional: bool) -> None:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            self._import(stmt, top=True, conditional=conditional)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._binding(stmt.name, "def", stmt.lineno, conditional)
            self._function(stmt, prefix="")
        elif isinstance(stmt, ast.ClassDef):
            self._binding(stmt.name, "class", stmt.lineno, conditional)
            bases = [d for d in (_dotted(b) for b in stmt.bases) if d]
            self.s.classes[stmt.name] = {"bases": bases, "line": stmt.lineno}
            for inner in stmt.body:
                self._scan_nested(inner, prefix=f"{stmt.name}.")
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__all__":
                    self._all(stmt)
                    continue
                self._binding(target.id, "assign", stmt.lineno, conditional)
                if stmt.value is not None:
                    expr = _encode_expr(stmt.value)
                    if expr is not None:
                        self.s.constants[target.id] = expr
                    else:
                        self.s.constants.pop(target.id, None)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__all__":
                self.s.all_dynamic = True
        elif isinstance(stmt, (ast.If, ast.Try)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._module_stmt(child, conditional=True)
                elif isinstance(child, ast.ExceptHandler):
                    for inner in child.body:
                        self._module_stmt(inner, conditional=True)
        else:
            self._scan_nested(stmt, prefix="")

    def _all(self, stmt: ast.stmt) -> None:
        value = getattr(stmt, "value", None)
        self.s.all_line = stmt.lineno
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            self.s.all_names = [e.value for e in value.elts]
        else:
            self.s.all_dynamic = True

    def _binding(self, name: str, kind: str, line: int, conditional: bool, **extra) -> None:
        rec = {"name": name, "kind": kind, "line": line, "cond": conditional}
        rec.update(extra)
        self.s.bindings.append(rec)

    def _import(self, stmt, top: bool, conditional: bool) -> None:
        if isinstance(stmt, ast.Import):
            names = [[alias.name, alias.asname or alias.name.split(".")[0]]
                     for alias in stmt.names]
            self.s.imports.append(
                {"kind": "import", "module": None, "level": 0,
                 "names": names, "line": stmt.lineno, "top": top}
            )
            if top:
                for target, local in names:
                    self._binding(local, "import", stmt.lineno, conditional,
                                  target=target)
        else:
            names = [[alias.name, alias.asname or alias.name]
                     for alias in stmt.names]
            self.s.imports.append(
                {"kind": "from", "module": stmt.module, "level": stmt.level,
                 "names": names, "line": stmt.lineno, "top": top}
            )
            if top:
                for orig, local in names:
                    if orig == "*":
                        continue
                    self._binding(local, "from", stmt.lineno, conditional,
                                  module=stmt.module, level=stmt.level, orig=orig)

    # -- nested scopes ------------------------------------------------------

    def _scan_nested(self, node: ast.AST, prefix: str) -> None:
        """Record imports/raises/functions inside non-function statements."""
        stack: list[ast.AST] = [node]
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(child, prefix=prefix)
                continue
            if isinstance(child, ast.ClassDef):
                for inner in child.body:
                    self._scan_nested(inner, prefix=f"{prefix}{child.name}.")
                continue
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                self._import(child, top=False, conditional=True)
            elif isinstance(child, ast.Raise) and child.exc is not None:
                name = _dotted(child.exc.func if isinstance(child.exc, ast.Call)
                               else child.exc)
                if name:
                    self.s.raises.append(
                        {"name": name, "line": child.lineno, "func": None}
                    )
            stack.extend(ast.iter_child_nodes(child))

    def _function(self, node, prefix: str) -> None:
        qualname = prefix + node.name
        raises: list[str] = []
        calls: set[str] = set()
        stack: list[ast.AST] = list(node.body)
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(child, prefix=f"{qualname}.")
                continue
            if isinstance(child, ast.ClassDef):
                for inner in child.body:
                    self._scan_nested(inner, prefix=f"{qualname}.")
                continue
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                self._import(child, top=False, conditional=True)
            elif isinstance(child, ast.Raise) and child.exc is not None:
                name = _dotted(child.exc.func if isinstance(child.exc, ast.Call)
                               else child.exc)
                if name:
                    raises.append(name)
                    self.s.raises.append(
                        {"name": name, "line": child.lineno, "func": qualname}
                    )
            elif isinstance(child, ast.Call):
                dotted = _dotted(child.func)
                if dotted:
                    calls.add(dotted)
            stack.extend(ast.iter_child_nodes(child))
        self.s.functions[qualname] = {
            "line": node.lineno,
            "raises": sorted(set(raises)),
            "calls": sorted(calls),
            "doc_raises": _doc_raises(ast.get_docstring(node)),
        }


def summarize_source(source: str, *, path: str, module: str) -> ModuleSummary:
    """Build the summary of one module from its source text."""
    is_pkg = path.endswith("__init__.py")
    summary = ModuleSummary(module=module, path=path, is_package=is_pkg)
    lines = source.splitlines()
    sidx = SuppressionIndex.from_lines(lines)
    summary.suppressions = {
        "file": sorted(sidx.file_wide),
        "lines": {str(n): sorted(rules) for n, rules in sorted(sidx.by_line.items())},
    }
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        summary.parse_error = {
            "msg": exc.msg or "syntax error",
            "line": exc.lineno or 1,
            "col": (exc.offset or 0) + 1,
        }
        return summary
    _Extractor(summary).run(tree)
    # Imported late: flow/effects depend on nothing in this module, but
    # keeping the imports local makes the layering (symbols ->
    # flow.facts / effects.extract) obvious at the one point it happens.
    from repro.lint.effects.extract import extract_effects
    from repro.lint.flow.facts import extract_flow

    summary.flow = extract_flow(tree, source, module)
    summary.effects = extract_effects(tree, source, module)
    return summary
