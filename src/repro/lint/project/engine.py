"""The whole-program pass: index construction and project-rule dispatch.

:func:`run_project` is the one entry point.  It discovers every file in
the configured project roots (CLI paths only *filter reporting*, so a
rule like ``dead-public-api`` always sees the tests that reference an
export, even when only ``src`` was asked for), builds one
:class:`ProjectIndex` — per-module symbol summaries, the import graph,
an import/symbol resolver — and runs every registered
:class:`~repro.lint.registry.ProjectRule` over it.

Summaries come from a two-tier incremental cache
(:mod:`repro.lint.project.cache`): unchanged files are never re-parsed,
and resolved constant environments are reused unless a transitive
dependency changed.  Cache misses fan out across a process pool when
there are enough of them to amortise the pool start-up cost.
"""

from __future__ import annotations

import builtins as _builtins
import concurrent.futures
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.lint.checker import iter_python_files
from repro.lint.config import LintConfig
from repro.lint.findings import FileReport, Finding
from repro.lint.project.cache import ProjectCache, content_hash
from repro.lint.project.graph import ModuleGraph
from repro.lint.project.resolver import ImportResolver, module_name_for
from repro.lint.project.symbols import ModuleSummary, summarize_source
from repro.lint.registry import instantiate

#: Default directories indexed relative to the config root.
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples")

#: Default cache file name, relative to the config root.
DEFAULT_CACHE = ".repro-lint-cache.json"

#: Below this many cache-miss files, parsing in-process beats paying the
#: process-pool start-up cost.
PARALLEL_THRESHOLD = 12

#: Exception names every Python build defines as subclasses of
#: ``BaseException`` — the terminals of base-class resolution.
BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(_builtins)
    if isinstance(getattr(_builtins, name), type)
    and issubclass(getattr(_builtins, name), BaseException)
)


@dataclass
class ProjectStats:
    """What the engine did — the observable the cache tests assert on."""

    files: int = 0
    #: Files parsed this run (cache misses).
    parsed: int = 0
    #: Files served from the summary cache.
    cache_hits: int = 0
    #: Constant environments recomputed / reused from cache.
    envs_computed: int = 0
    envs_reused: int = 0
    #: Effect call graphs built from scratch / served from the cache's
    #: project-digest tier (the effects timing gate asserts warm runs
    #: never build).
    effects_built: int = 0
    effects_reused: int = 0
    #: True when cache misses were parsed on a process pool.
    parallel: bool = False


def _summarize_worker(task: tuple[str, str, str]) -> dict:
    """Top-level so it pickles into :class:`ProcessPoolExecutor` workers."""
    source, display, module = task
    return summarize_source(source, path=display, module=module).to_dict()


class ProjectIndex:
    """Everything a :class:`~repro.lint.registry.ProjectRule` may query.

    Read-only by convention: rules iterate :attr:`summaries`, walk
    :attr:`graph` / :attr:`all_edges` and call the resolution helpers;
    they never mutate the index.
    """

    def __init__(
        self,
        summaries: dict[str, ModuleSummary],
        by_path: dict[str, ModuleSummary],
        config: LintConfig,
        *,
        cache: Optional[ProjectCache] = None,
        module_sha: Optional[dict[str, str]] = None,
        stats: Optional[ProjectStats] = None,
    ):
        #: module name -> summary.
        self.summaries = summaries
        #: display path -> summary (authoritative for suppressions).
        self.by_path = by_path
        self.config = config
        self.cache = cache
        self.module_sha = module_sha or {}
        self.stats = stats or ProjectStats()
        self.resolver = ImportResolver(set(summaries))

        #: Every project-internal import edge:
        #: ``(importer, imported, line, top_level)``.  Layer rules use
        #: all of them; cycle detection uses only the top-level subset
        #: (a function-local import is a legitimate lazy cycle-breaker).
        self.all_edges: list[tuple[str, str, int, bool]] = []
        top_edges: dict[str, set[str]] = {}
        for module, summary in summaries.items():
            tops = top_edges.setdefault(module, set())
            for rec in summary.imports:
                for target in self._record_targets(summary, rec):
                    if target == module:
                        continue
                    self.all_edges.append((module, target, rec["line"], rec["top"]))
                    if rec["top"]:
                        tops.add(target)
        self.all_edges.sort()
        self.graph = ModuleGraph(top_edges)

        self._envs: dict[str, dict] = {}
        self._exc_memo: dict[tuple[str, str], bool] = {}

    # -- index construction helpers ----------------------------------------

    def _record_targets(self, summary: ModuleSummary, rec: dict) -> set[str]:
        """Project modules one import record reaches."""
        targets: set[str] = set()
        if rec["kind"] == "import":
            for dotted, _local in rec["names"]:
                found = self.resolver.project_module(dotted)
                if found:
                    targets.add(found)
            return targets
        base = self.resolver.resolve_base(
            summary.module, summary.is_package, rec["module"], rec["level"]
        )
        if base is None:
            return targets
        for orig, _local in rec["names"]:
            if orig == "*":
                found = self.resolver.project_module(base)
            else:
                sub = f"{base}.{orig}"
                found = sub if sub in self.summaries else self.resolver.project_module(base)
            if found:
                targets.add(found)
        return targets

    # -- symbol resolution --------------------------------------------------

    def resolve_symbol(
        self, module: str, name: str, _seen: Optional[set] = None
    ) -> Optional[tuple[str, dict]]:
        """Where ``module.name`` is actually defined.

        Chases ``from x import name`` re-export chains (with a cycle
        guard) and returns ``(defining_module, binding_record)``; a
        re-export whose origin is outside the project resolves to the
        re-exporting module itself.
        """
        seen = _seen if _seen is not None else set()
        if (module, name) in seen:
            return None
        seen.add((module, name))
        summary = self.summaries.get(module)
        if summary is None:
            return None
        binding = summary.binding_map().get(name)
        if binding is None:
            return None
        if binding["kind"] == "from":
            base = self.resolver.resolve_base(
                module, summary.is_package, binding.get("module"), binding.get("level", 0)
            )
            if base is not None:
                orig = binding.get("orig", name)
                if f"{base}.{orig}" in self.summaries:
                    return (module, binding)
                if base in self.summaries:
                    resolved = self.resolve_symbol(base, orig, seen)
                    if resolved is not None:
                        return resolved
        return (module, binding)

    def module_alias(self, module: str, local: str) -> Optional[str]:
        """Project module a module-level name refers to, if it is one."""
        summary = self.summaries.get(module)
        if summary is None:
            return None
        binding = summary.binding_map().get(local)
        if binding is None:
            return None
        if binding["kind"] == "import":
            target = binding.get("target", "")
            head = target.split(".")[0]
            if local == target or local != head:
                # ``import a.b.c`` with an asname binds the full target;
                # without one it binds only the head package.
                return target if target in self.summaries else None
            return head if head in self.summaries else None
        if binding["kind"] == "from":
            base = self.resolver.resolve_base(
                module, summary.is_package, binding.get("module"), binding.get("level", 0)
            )
            if base is None:
                return None
            sub = f"{base}.{binding.get('orig', local)}"
            return sub if sub in self.summaries else None
        return None

    # -- constant propagation -----------------------------------------------

    def const_env(self, module: str) -> dict:
        """Resolved numeric constants of one module (name -> value).

        Served from the cache when the module's *closure digest* — its
        own content hash plus every transitive dependency's — matches;
        editing a dependency therefore recomputes exactly the dependent
        environments.
        """
        if module in self._envs:
            return self._envs[module]
        digest = None
        if self.cache is not None and module in self.module_sha:
            digest = ProjectCache.closure_digest(module, self.graph, self.module_sha)
            cached = self.cache.env_for(module, digest)
            if cached is not None:
                self._envs[module] = cached
                self.stats.envs_reused += 1
                return cached
        env: dict = {}
        # Registered before evaluation so an import cycle terminates on
        # the (partial) environment instead of recursing forever.
        self._envs[module] = env
        summary = self.summaries.get(module)
        if summary is not None:
            for name in summary.constants:
                value = self.constant_value(module, name)
                if value is not None:
                    env[name] = value
        if self.cache is not None and digest is not None:
            self.cache.store_env(module, digest, env)
            self.stats.envs_computed += 1
        return env

    def constant_value(
        self, module: str, name: str, _seen: Optional[set] = None
    ) -> Optional[float]:
        """Numeric value of ``module.name``, followed across modules."""
        seen = _seen if _seen is not None else set()
        if (module, name) in seen:
            return None
        seen.add((module, name))
        summary = self.summaries.get(module)
        if summary is None:
            return None
        binding = summary.binding_map().get(name)
        if binding is None:
            return None
        if binding["kind"] == "assign":
            expr = summary.constants.get(name)
            return self._eval_expr(module, expr, seen) if expr else None
        if binding["kind"] == "from":
            base = self.resolver.resolve_base(
                module, summary.is_package, binding.get("module"), binding.get("level", 0)
            )
            if base is None:
                return None
            orig = binding.get("orig", name)
            if f"{base}.{orig}" in self.summaries:
                return None  # imported a submodule, not a value
            if base in self.summaries:
                return self.constant_value(base, orig, seen)
        return None

    def _eval_expr(self, module: str, expr: dict, seen: set) -> Optional[float]:
        kind = expr.get("t")
        if kind == "num":
            return expr["v"]
        if kind == "name":
            return self.constant_value(module, expr["id"], seen)
        if kind == "dot":
            parts = expr["d"].split(".")
            attr = parts[-1]
            head = ".".join(parts[:-1])
            if head in self.summaries:
                return self.constant_value(head, attr, seen)
            if len(parts) == 2:
                target = self.module_alias(module, parts[0])
                if target is not None:
                    return self.constant_value(target, attr, seen)
            return None
        if kind == "un":
            value = self._eval_expr(module, expr["v"], seen)
            if value is None:
                return None
            return {"-": lambda v: -v, "+": lambda v: +v, "~": lambda v: ~int(v)}[
                expr["op"]
            ](value)
        if kind == "bin":
            left = self._eval_expr(module, expr["l"], seen)
            right = self._eval_expr(module, expr["r"], seen)
            if left is None or right is None:
                return None
            try:
                return _BIN_EVAL[expr["op"]](left, right)
            except (ZeroDivisionError, TypeError, ValueError, OverflowError):
                return None
        return None

    # -- exception hierarchy ------------------------------------------------

    def is_exception_class(
        self, module: str, name: str, _seen: Optional[set] = None
    ) -> bool:
        """True when ``module.name`` (transitively) derives from a
        builtin exception."""
        key = (module, name)
        if key in self._exc_memo:
            return self._exc_memo[key]
        seen = _seen if _seen is not None else set()
        if key in seen:
            return False
        seen.add(key)
        result = self._is_exception_uncached(module, name, seen)
        self._exc_memo[key] = result
        return result

    def _is_exception_uncached(self, module: str, name: str, seen: set) -> bool:
        if name in BUILTIN_EXCEPTIONS:
            return True
        resolved = self.resolve_symbol(module, name)
        if resolved is None:
            return False
        def_module, binding = resolved
        summary = self.summaries.get(def_module)
        if summary is None or binding["kind"] != "class":
            return False
        klass = summary.classes.get(binding["name"])
        if klass is None:
            return False
        for base in klass["bases"]:
            parts = base.split(".")
            if parts[-1] in BUILTIN_EXCEPTIONS:
                return True
            if len(parts) == 1:
                if self.is_exception_class(def_module, base, seen):
                    return True
            else:
                target = self.module_alias(def_module, parts[0])
                if target is None and ".".join(parts[:-1]) in self.summaries:
                    target = ".".join(parts[:-1])
                if target is not None and self.is_exception_class(
                    target, parts[-1], seen
                ):
                    return True
        return False


_BIN_EVAL = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "**": lambda a, b: a ** b if abs(b) < 64 else None,
    "<<": lambda a, b: int(a) << int(b) if 0 <= b < 256 else None,
    ">>": lambda a, b: int(a) >> int(b) if 0 <= b < 256 else None,
    "|": lambda a, b: int(a) | int(b),
    "&": lambda a, b: int(a) & int(b),
    "^": lambda a, b: int(a) ^ int(b),
}


# -- discovery and the run -------------------------------------------------


def project_roots(config: LintConfig) -> list[Path]:
    """Directories the index always covers, from ``[tool.repro-lint.project]``."""
    options = config.rule_options.get("project", {})
    declared = options.get("roots", list(DEFAULT_ROOTS))
    base = config.root if config.root is not None else Path.cwd()
    return [base / entry for entry in declared if (base / entry).exists()]


def cache_path(config: LintConfig) -> Path:
    options = config.rule_options.get("project", {})
    base = config.root if config.root is not None else Path.cwd()
    return base / options.get("cache", DEFAULT_CACHE)


def _display_path(path: Path, config: LintConfig) -> str:
    if config.root is not None:
        try:
            return path.resolve().relative_to(config.root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def build_index(
    paths: list[Path],
    config: LintConfig,
    *,
    use_cache: bool = True,
    jobs: Optional[int] = None,
    stats: Optional[ProjectStats] = None,
) -> ProjectIndex:
    """Index the project roots (plus any ``paths`` outside them)."""
    stats = stats if stats is not None else ProjectStats()
    roots = project_roots(config)
    scan = list(roots) if roots else list(paths)
    for path in paths:
        resolved = path.resolve()
        if not any(
            resolved == root.resolve() or _is_under(resolved, root.resolve())
            for root in scan
        ):
            scan.append(path)

    cache = (
        ProjectCache.load(cache_path(config)) if use_cache else ProjectCache(None)
    )

    files: list[tuple[Path, str, str, str]] = []  # (path, display, module, sha)
    seen_display: set[str] = set()
    for file_path in iter_python_files(scan, config):
        display = _display_path(file_path, config)
        if display in seen_display:
            continue
        seen_display.add(display)
        try:
            data = file_path.read_bytes()
        except OSError:
            continue
        files.append(
            (file_path, display, module_name_for(Path(display)), content_hash(data))
        )
    stats.files = len(files)

    summaries: dict[str, ModuleSummary] = {}
    by_path: dict[str, ModuleSummary] = {}
    module_sha: dict[str, str] = {}
    misses: list[tuple[Path, str, str, str]] = []
    for file_path, display, module, sha in files:
        cached = cache.summary_for(display, sha)
        if cached is not None:
            summary = ModuleSummary.from_dict(cached)
            stats.cache_hits += 1
            _index_summary(summary, display, module, sha, summaries, by_path, module_sha)
        else:
            misses.append((file_path, display, module, sha))

    parsed = _parse_files(misses, jobs=jobs, stats=stats)
    for (file_path, display, module, sha), summary in zip(misses, parsed):
        cache.store_summary(display, sha, summary.to_dict())
        _index_summary(summary, display, module, sha, summaries, by_path, module_sha)
    stats.parsed = len(misses)

    cache.prune(set(by_path), set(summaries))
    index = ProjectIndex(
        summaries,
        by_path,
        config,
        cache=cache if use_cache else None,
        module_sha=module_sha,
        stats=stats,
    )
    return index


def _index_summary(summary, display, module, sha, summaries, by_path, module_sha):
    by_path[display] = summary
    # First file wins on a (rare) module-name collision; file order is
    # deterministic so the choice is too.
    if module not in summaries:
        summaries[module] = summary
        module_sha[module] = sha


def _is_under(path: Path, root: Path) -> bool:
    try:
        path.relative_to(root)
        return True
    except ValueError:
        return False


def _parse_files(
    misses: list[tuple[Path, str, str, str]],
    *,
    jobs: Optional[int],
    stats: ProjectStats,
) -> list[ModuleSummary]:
    tasks: list[tuple[str, str, str]] = []
    for file_path, display, module, _sha in misses:
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            source = ""
        tasks.append((source, display, module))

    want_parallel = (jobs is None or jobs > 1) and len(tasks) >= PARALLEL_THRESHOLD
    if want_parallel:
        try:
            with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
                dicts = list(pool.map(_summarize_worker, tasks, chunksize=8))
            stats.parallel = True
            return [ModuleSummary.from_dict(d) for d in dicts]
        except (OSError, PermissionError, concurrent.futures.process.BrokenProcessPool):
            # Sandboxes may forbid the semaphores multiprocessing needs;
            # correctness never depends on the pool.
            pass
    return [
        summarize_source(source, path=display, module=module)
        for source, display, module in tasks
    ]


def run_project(
    paths: list[Path],
    config: Optional[LintConfig] = None,
    select: Optional[list[str]] = None,
    *,
    use_cache: bool = True,
    jobs: Optional[int] = None,
) -> tuple[list[FileReport], ProjectStats]:
    """Run every enabled project rule; findings are filtered to ``paths``.

    Returns one :class:`FileReport` per file with findings (surviving or
    suppressed) plus the run's :class:`ProjectStats`.
    """
    config = config if config is not None else LintConfig()
    stats = ProjectStats()
    rules = instantiate(config, select=select, project=True)
    if not rules:
        return [], stats

    index = build_index(
        paths, config, use_cache=use_cache, jobs=jobs, stats=stats
    )

    # Which display paths the caller asked to hear about.
    wanted = [p.resolve() for p in paths]
    selected = {
        display
        for display, summary in index.by_path.items()
        if _selected(display, config, wanted)
    }

    collected: list[Finding] = []
    for rule in rules:
        collected.extend(rule.check(index))

    per_file: dict[str, FileReport] = {}
    for finding in sorted(
        collected, key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
    ):
        if finding.path not in selected:
            continue
        if finding.rule in config.ignored_rules_for(finding.path):
            continue
        report = per_file.setdefault(finding.path, FileReport(path=finding.path))
        summary = index.by_path.get(finding.path)
        suppressions = (
            summary.suppression_index() if summary is not None else None
        )
        if suppressions is not None and suppressions.suppresses(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)

    if use_cache and index.cache is not None:
        index.cache.save()
    return [per_file[path] for path in sorted(per_file)], stats


def _selected(display: str, config: LintConfig, wanted: list[Path]) -> bool:
    base = config.root if config.root is not None else Path.cwd()
    absolute = (base / display).resolve()
    return any(
        absolute == want or _is_under(absolute, want) for want in wanted
    )
