"""Path <-> module-name mapping and import resolution.

This module is the single source of truth for "what module does this
file import as" — the per-file checker (:func:`repro.lint.checker.
module_name_for`) and the project pass both delegate here, so the two
passes can never disagree about module names.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

#: Package components a repo path is anchored on.  ``src/repro/des/x.py``
#: imports as ``repro.des.x`` no matter where the repo is checked out.
MODULE_ANCHORS = ("repro", "tests", "benchmarks", "examples")


def module_name_for(path: Path) -> str:
    """Derive the dotted module name a file would import as.

    Anchored on the first :data:`MODULE_ANCHORS` component when present
    (``src/repro/core/clock.py`` -> ``repro.core.clock``), otherwise the
    bare stem — fixtures can always pass an explicit module name.
    """
    parts = list(Path(path).with_suffix("").parts)
    for anchor in MODULE_ANCHORS:
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def is_package_init(path: Path) -> bool:
    return Path(path).name == "__init__.py"


class ImportResolver:
    """Resolves import statements against a known set of project modules."""

    def __init__(self, modules: set[str]):
        self.modules = set(modules)
        #: Dotted prefixes that are (or contain) project modules, so a
        #: ``from repro.tpwire import frames`` resolves even when
        #: ``repro.tpwire`` itself (the ``__init__``) is in the set but
        #: ``repro`` alone is not.
        self._prefixes: set[str] = set()
        for module in self.modules:
            parts = module.split(".")
            for i in range(1, len(parts) + 1):
                self._prefixes.add(".".join(parts[:i]))

    def known(self, module: str) -> bool:
        return module in self.modules

    def project_module(self, dotted: str) -> Optional[str]:
        """The longest project module that is ``dotted`` or a prefix of it."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self.modules:
                return candidate
        return None

    def resolve_base(
        self, importer: str, importer_is_package: bool, module_text: Optional[str], level: int
    ) -> Optional[str]:
        """Absolute module a ``from ... import`` statement names.

        ``level`` is the number of leading dots; ``module_text`` is the
        dotted part after them (or ``None`` for a bare ``from . import``).
        Returns ``None`` when a relative import climbs past the package
        root.
        """
        if level == 0:
            return module_text
        parts = importer.split(".")
        if not importer_is_package:
            parts = parts[:-1]
        drop = level - 1
        if drop > len(parts):
            return None
        if drop:
            parts = parts[:-drop]
        if module_text:
            parts = parts + module_text.split(".")
        return ".".join(parts) if parts else None

    def resolve_from_targets(
        self,
        importer: str,
        importer_is_package: bool,
        module_text: Optional[str],
        level: int,
        names: list[str],
    ) -> list[tuple[str, str, Optional[str]]]:
        """Resolve one ``from base import a, b`` statement.

        Returns ``(local_name, base_module, symbol)`` triples where
        ``symbol`` is ``None`` when the imported name is itself a module
        (``from repro.tpwire import frames``).
        """
        base = self.resolve_base(importer, importer_is_package, module_text, level)
        resolved: list[tuple[str, str, Optional[str]]] = []
        if base is None:
            return resolved
        for name in names:
            submodule = f"{base}.{name}"
            if submodule in self.modules or submodule in self._prefixes:
                resolved.append((name, submodule, None))
            else:
                resolved.append((name, base, name))
        return resolved
