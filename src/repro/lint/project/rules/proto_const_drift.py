"""Rule ``proto-const-drift`` — one source of truth for protocol constants.

The paper's frame format (Fig. 4: 16-bit frames, 8 data bits, 4-bit
CRC, CRC-4 polynomial 0b10011 ...) appears in three independent models:
the behavioural protocol (``tpwire``), the network agents (``net``) and
the RTL-ish hardware model (``hw``).  If one copy of a width drifts,
the models keep running — they just silently stop describing the same
bus.  This rule propagates module-level constants across the project
and demands that every binding of a *tracked* protocol constant outside
the canonical module (``repro.tpwire.constants``) either re-imports it
or is an expression that traces back to it; a fresh literal is an
error even when today's value happens to match.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register

DEFAULT_CANONICAL = "repro.tpwire.constants"

DEFAULT_SCOPE = ("repro.tpwire", "repro.net", "repro.hw")


@register
class ProtoConstDriftRule(ProjectRule):
    id = "proto-const-drift"
    summary = (
        "protocol constants must trace to repro.tpwire.constants, "
        "never be re-derived as literals"
    )
    default_scope = DEFAULT_SCOPE

    def check(self, index) -> Iterator[Finding]:
        canonical = self.options.get("canonical", DEFAULT_CANONICAL)
        canon_summary = index.summaries.get(canonical)
        if canon_summary is None:
            return
        canon_env = index.const_env(canonical)
        tracked = set(self.options.get("track", ())) or {
            name for name in canon_summary.constants if name in canon_env
        }

        for module in sorted(index.summaries):
            if module == canonical or not self.in_scope(module):
                continue
            summary = index.summaries[module]
            for binding in summary.bindings:
                name = binding["name"]
                if name not in tracked or binding["kind"] != "assign":
                    # Re-imports resolve through resolve_symbol at their
                    # definition site; only fresh assignments can drift.
                    continue
                value = index.constant_value(module, name)
                canon_value = canon_env.get(name)
                if (
                    value is not None
                    and canon_value is not None
                    and value != canon_value
                ):
                    yield self.finding_at(
                        summary.path,
                        binding["line"],
                        f"{name} = {value!r} drifts from "
                        f"{canonical}.{name} = {canon_value!r}",
                    )
                elif not self._traces_to_canonical(
                    index, module, summary.constants.get(name), canonical, set()
                ):
                    yield self.finding_at(
                        summary.path,
                        binding["line"],
                        f"{name} is re-derived locally; protocol constants "
                        f"must be imported from (or computed from) {canonical}",
                    )

    def _traces_to_canonical(
        self, index, module: str, expr, canonical: str, seen: set
    ) -> bool:
        """Does any leaf of ``expr`` resolve into the canonical module?"""
        if expr is None:
            return False
        kind = expr.get("t")
        if kind == "num":
            return False
        if kind == "name":
            return self._name_traces(index, module, expr["id"], canonical, seen)
        if kind == "dot":
            parts = expr["d"].split(".")
            head = ".".join(parts[:-1])
            if head == canonical or (
                len(parts) == 2
                and index.module_alias(module, parts[0]) == canonical
            ):
                return True
            if head in index.summaries:
                return self._name_traces(index, head, parts[-1], canonical, seen)
            return False
        if kind == "un":
            return self._traces_to_canonical(index, module, expr["v"], canonical, seen)
        if kind == "bin":
            return self._traces_to_canonical(
                index, module, expr["l"], canonical, seen
            ) or self._traces_to_canonical(index, module, expr["r"], canonical, seen)
        return False

    def _name_traces(
        self, index, module: str, name: str, canonical: str, seen: set
    ) -> bool:
        if (module, name) in seen:
            return False
        seen.add((module, name))
        resolved = index.resolve_symbol(module, name)
        if resolved is None:
            return False
        def_module, binding = resolved
        if def_module == canonical:
            return True
        if binding["kind"] == "assign":
            summary = index.summaries.get(def_module)
            expr = summary.constants.get(binding["name"]) if summary else None
            return self._traces_to_canonical(index, def_module, expr, canonical, seen)
        return False
