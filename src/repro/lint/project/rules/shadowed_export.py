"""Rule ``shadowed-export`` — ``__all__`` and imports must agree.

Two quiet ways a module's public face can lie:

* ``__all__`` names something the module never defines or imports — a
  ghost export that turns ``from pkg import *`` (and documentation
  generated from ``__all__``) into a runtime ``AttributeError``;
* one top-level import unconditionally rebinds a name another import
  just bound — the first import survives only in the reader's head.
  Conditional rebinding (``try``/``except ImportError`` fallbacks, and
  anything under ``if``) is the standard compatibility idiom and stays
  allowed.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register

_IMPORT_KINDS = ("import", "from")


@register
class ShadowedExportRule(ProjectRule):
    id = "shadowed-export"
    summary = (
        "__all__ entries must resolve to real bindings; imports must not "
        "silently shadow earlier imports"
    )

    def check(self, index) -> Iterator[Finding]:
        for module in sorted(index.summaries):
            if not self.in_scope(module):
                continue
            summary = index.summaries[module]
            bound = {rec["name"] for rec in summary.bindings}

            # A module-level __getattr__ (PEP 562) serves names lazily;
            # __all__ entries beyond the static bindings are then
            # legitimate and unknowable here.
            has_module_getattr = "__getattr__" in summary.functions

            if summary.all_names is not None and not has_module_getattr:
                seen: set[str] = set()
                for name in summary.all_names:
                    if name in seen:
                        yield self.finding_at(
                            summary.path,
                            summary.all_line,
                            f"duplicate __all__ entry {name!r}",
                        )
                        continue
                    seen.add(name)
                    if name not in bound:
                        yield self.finding_at(
                            summary.path,
                            summary.all_line,
                            f"__all__ names {name!r}, which {module} neither "
                            f"defines nor imports",
                        )

            first_import: dict[str, dict] = {}
            for rec in summary.bindings:
                if rec["kind"] not in _IMPORT_KINDS or rec["cond"]:
                    continue
                earlier = first_import.get(rec["name"])
                if earlier is not None and earlier["line"] != rec["line"]:
                    yield self.finding_at(
                        summary.path,
                        rec["line"],
                        f"import of {rec['name']!r} shadows the import on "
                        f"line {earlier['line']}",
                    )
                first_import.setdefault(rec["name"], rec)
        return
