"""Built-in whole-program rule set.

Importing this package registers every project rule; add one by
dropping a module here that defines a
:class:`~repro.lint.registry.ProjectRule` subclass decorated with
:func:`~repro.lint.registry.register`, and importing it below.
"""

from repro.lint.project.rules import (  # noqa: F401
    dead_public_api,
    exception_flow,
    layer_cycle,
    proto_const_drift,
    shadowed_export,
)
