"""Rule ``layer-cycle`` — the layer DAG holds and no import cycles exist.

The paper's architecture is a strict stack: the event kernel (``des``)
knows nothing above it, the wire protocol (``tpwire``) builds only on
the kernel, the network and RTL models build on both, and only the
co-simulation layer may see everything.  A single upward import quietly
turns three independent models of the bus into one entangled one — the
cross-validation in Table 3 stops being evidence.  This rule enforces
the declared DAG (``[tool.repro-lint.layer-cycle.layers]``) over every
project-internal import and rejects import cycles outright.

Cycles are computed over *top-level* imports only: an import inside a
function is the standard lazy cycle-breaker and works at run time, but
it still counts as a layer edge — laziness must not launder an
architecture violation.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register

#: The verified layer DAG of this repository: layer -> layers it may
#: import from (its own layer is always allowed).
DEFAULT_LAYERS: dict[str, list[str]] = {
    "repro.des": [],
    "repro.board": [],
    "repro.lint": [],
    "repro.tpwire": ["repro.des"],
    "repro.core": ["repro.des"],
    "repro.analysis": ["repro.des"],
    "repro.net": ["repro.des", "repro.tpwire"],
    "repro.hw": ["repro.des", "repro.tpwire"],
    "repro.obs": ["repro.des", "repro.cosim"],
    "repro.cosim": [
        "repro.des",
        "repro.tpwire",
        "repro.net",
        "repro.hw",
        "repro.core",
        "repro.board",
        "repro.analysis",
    ],
}


@register
class LayerCycleRule(ProjectRule):
    id = "layer-cycle"
    summary = (
        "no import cycles; imports must follow the declared layer DAG "
        "(des -> tpwire -> net/hw -> cosim)"
    )

    def check(self, index) -> Iterator[Finding]:
        layers: dict[str, list[str]] = dict(
            self.options.get("layers", DEFAULT_LAYERS)
        )

        def layer_of(module: str) -> Optional[str]:
            best = None
            for layer in layers:
                if module == layer or module.startswith(layer + "."):
                    if best is None or len(layer) > len(best):
                        best = layer
            return best

        for cycle in index.graph.cycles():
            start = cycle[0]
            if not self.in_scope(start):
                continue
            summary = index.summaries.get(start)
            if summary is None:
                continue
            line = self._edge_line(index, start, cycle[1 % len(cycle)])
            chain = " -> ".join(cycle + [start])
            yield self.finding_at(
                summary.path, line, f"import cycle: {chain}"
            )

        seen: set[tuple[str, str, int]] = set()
        for importer, imported, line, _top in index.all_edges:
            if not self.in_scope(importer):
                continue
            src_layer = layer_of(importer)
            dst_layer = layer_of(imported)
            if src_layer is None or dst_layer is None or src_layer == dst_layer:
                continue
            if dst_layer in layers[src_layer]:
                continue
            key = (importer, imported, line)
            if key in seen:
                continue
            seen.add(key)
            summary = index.summaries.get(importer)
            if summary is None:
                continue
            allowed = ", ".join(layers[src_layer]) or "nothing"
            yield self.finding_at(
                summary.path,
                line,
                f"{importer} ({src_layer}) imports {imported} ({dst_layer}); "
                f"the layer DAG allows {src_layer} -> {allowed}",
            )

    @staticmethod
    def _edge_line(index, importer: str, imported: str) -> int:
        for edge_importer, edge_imported, line, top in index.all_edges:
            if edge_importer == importer and edge_imported == imported and top:
                return line
        return 1
