"""Rule ``dead-public-api`` — every package export must have a user.

A name re-exported from a package ``__init__`` is a promise: "this is
the supported way in".  When nothing in the whole project — sources,
tests, benchmarks or examples (the index always covers all configured
roots, not just the paths being linted) — references the underlying
symbol from outside its defining module, the promise is dead weight
that still costs review attention and API-compatibility care.  Findings
are warnings: an export can be intentionally forward-looking, in which
case list it under ``allow`` in ``[tool.repro-lint.dead-public-api]``
or delete the re-export.

References are counted on the *defining* symbol, so use through either
the package (``repro.net.TpwireAgent``) or the submodule
(``repro.net.tpwire_agent.TpwireAgent``) keeps an export alive.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ProjectRule, register


@register
class DeadPublicApiRule(ProjectRule):
    id = "dead-public-api"
    summary = (
        "package __init__ exports whose symbol is never referenced "
        "outside its defining module"
    )
    default_severity = Severity.WARNING

    def check(self, index) -> Iterator[Finding]:
        allow = set(self.options.get("allow", ()))
        used = self._used_symbols(index)

        for module in sorted(index.summaries):
            summary = index.summaries[module]
            if not summary.is_package or not self.in_scope(module):
                continue
            bindings = summary.binding_map()
            exported = (
                summary.all_names
                if summary.all_names is not None
                else sorted(
                    rec["name"] for rec in summary.bindings if rec["kind"] == "from"
                )
            )
            for name in exported:
                if name in allow or (name.startswith("__") and name.endswith("__")):
                    # Dunders (__version__, ...) are module metadata with
                    # external consumers by convention, not API surface.
                    continue
                binding = bindings.get(name)
                if binding is None or binding["kind"] == "import":
                    continue
                resolved = index.resolve_symbol(module, name)
                if resolved is None:
                    continue
                def_module, def_binding = resolved
                if f"{def_module}.{def_binding['name']}" in index.summaries:
                    continue  # a re-exported submodule, not a symbol
                if (def_module, def_binding["name"]) in used:
                    continue
                yield self.finding_at(
                    summary.path,
                    binding["line"],
                    f"{module} exports {name}, but {def_module}."
                    f"{def_binding['name']} is never referenced outside its "
                    f"defining module",
                )

    @staticmethod
    def _used_symbols(index) -> set:
        """Every ``(defining_module, name)`` referenced from another module.

        Built from the per-module ``refs`` (loaded names whose base is an
        import), so a plain re-export line does not count as a use — only
        code that actually touches the symbol does.  Function-local
        imports count too: a lazily imported symbol is no less used.
        """
        used: set = set()
        for module, summary in index.summaries.items():
            refs = set(summary.refs)
            # local alias -> project module, from *every* import record.
            aliases: dict[str, str] = {}
            for rec in summary.imports:
                if rec["kind"] == "import":
                    for target, local in rec["names"]:
                        head = target.split(".")[0]
                        if local == target or local != head:
                            if target in index.summaries:
                                aliases[local] = target
                        elif head in index.summaries:
                            aliases[local] = head
                    continue
                base = index.resolver.resolve_base(
                    module, summary.is_package, rec["module"], rec["level"]
                )
                if base is None:
                    continue
                for orig, local in rec["names"]:
                    if orig == "*":
                        continue
                    sub = f"{base}.{orig}"
                    if sub in index.summaries:
                        aliases[local] = sub
                    elif local in refs and base in index.summaries:
                        resolved = index.resolve_symbol(base, orig)
                        if resolved is not None and resolved[0] != module:
                            used.add((resolved[0], resolved[1]["name"]))
            for ref in refs:
                if "." not in ref:
                    continue
                alias, attr = ref.split(".", 1)
                target = aliases.get(alias)
                if target is None:
                    continue
                resolved = index.resolve_symbol(target, attr)
                if resolved is not None and resolved[0] != module:
                    used.add((resolved[0], resolved[1]["name"]))
        return used
