"""Rule ``exception-flow`` — exceptions live and flow where declared.

Each layer owns one error hierarchy (``repro.<layer>.errors``); the
per-file ``error-hierarchy`` rule already rejects raising generic
builtins, and this rule adds the cross-module half of the contract:

* an exception class defined anywhere *outside* its layer's declared
  errors module fragments the hierarchy (callers cannot import it from
  the one obvious place);
* a ``raise`` of another layer's error class misrepresents where a
  failure came from — unless the owners table explicitly allows it
  (``hw`` legitimately raises ``tpwire`` protocol errors: the RTL model
  implements that protocol);
* a docstring ``Raises:`` entry naming a project error that nothing the
  function's module (or its transitive imports) ever raises is a stale
  contract.

Owners come from ``[tool.repro-lint.exception-flow.owners]``; each
layer maps to the error modules it may define in and raise from.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.project.engine import BUILTIN_EXCEPTIONS
from repro.lint.registry import ProjectRule, register

#: layer -> error modules it owns / may raise from.  ``hw`` has no
#: errors module of its own: its domain errors *are* the wire-protocol
#: errors it implements.  ``analysis`` raises only builtin contract
#: errors and owns nothing.
DEFAULT_OWNERS: dict[str, list[str]] = {
    "repro.des": ["repro.des.errors"],
    "repro.board": ["repro.board.errors"],
    "repro.lint": ["repro.lint.errors"],
    "repro.tpwire": ["repro.tpwire.errors"],
    "repro.core": ["repro.core.errors"],
    "repro.analysis": [],
    "repro.net": ["repro.net.errors"],
    "repro.hw": ["repro.tpwire.errors"],
    "repro.obs": ["repro.obs.errors"],
    "repro.cosim": ["repro.cosim.errors"],
}


@register
class ExceptionFlowRule(ProjectRule):
    id = "exception-flow"
    summary = (
        "exception classes live in their layer's errors module; raises "
        "and documented Raises: stay within the declared flow"
    )

    def check(self, index) -> Iterator[Finding]:
        owners: dict[str, list[str]] = dict(self.options.get("owners", DEFAULT_OWNERS))
        owner_modules = {m for mods in owners.values() for m in mods}

        def layer_of(module: str) -> Optional[str]:
            best = None
            for layer in owners:
                if module == layer or module.startswith(layer + "."):
                    if best is None or len(layer) > len(best):
                        best = layer
            return best

        for module in sorted(index.summaries):
            if not self.in_scope(module):
                continue
            summary = index.summaries[module]
            layer = layer_of(module)
            yield from self._check_definitions(
                index, summary, layer, owners, owner_modules
            )
            if layer is not None:
                yield from self._check_raises(index, summary, layer, owners, owner_modules)
            yield from self._check_doc_raises(index, summary)

    # -- stray class definitions -------------------------------------------

    def _check_definitions(self, index, summary, layer, owners, owner_modules):
        if summary.module in owner_modules:
            return
        for name, klass in sorted(summary.classes.items()):
            if not index.is_exception_class(summary.module, name):
                continue
            home = ", ".join(owners.get(layer, [])) or "an errors module"
            yield self.finding_at(
                summary.path,
                klass["line"],
                f"exception class {name} defined outside the layer's error "
                f"hierarchy; move it to {home}",
            )

    # -- cross-layer raises -------------------------------------------------

    def _check_raises(self, index, summary, layer, owners, owner_modules):
        allowed = set(owners.get(layer, ()))
        for site in summary.raises:
            def_module = self._defining_module(index, summary, site["name"])
            if def_module is None or def_module not in owner_modules:
                continue
            def_layer = None
            for owner_layer, mods in owners.items():
                if def_module in mods:
                    def_layer = owner_layer
                    break
            if def_module in allowed:
                continue
            if def_layer is not None and (
                layer == def_layer or layer.startswith(def_layer + ".")
            ):
                continue
            yield self.finding_at(
                summary.path,
                site["line"],
                f"{summary.module} raises {site['name']} from {def_module}; "
                f"{layer} may raise from: "
                f"{', '.join(sorted(allowed)) or 'its own errors module only'}",
            )

    @staticmethod
    def _defining_module(index, summary, raised: str) -> Optional[str]:
        parts = raised.split(".")
        if len(parts) == 1:
            resolved = index.resolve_symbol(summary.module, raised)
            return resolved[0] if resolved else None
        if len(parts) == 2:
            target = index.module_alias(summary.module, parts[0])
            if target is not None:
                resolved = index.resolve_symbol(target, parts[1])
                return resolved[0] if resolved else target
        head = ".".join(parts[:-1])
        return head if head in index.summaries else None

    # -- documented Raises: reachability ------------------------------------

    def _check_doc_raises(self, index, summary):
        reachable: Optional[set] = None  # built lazily, once per module
        for qualname, func in sorted(summary.functions.items()):
            doc_raises = func.get("doc_raises")
            if not doc_raises:
                continue
            for documented in doc_raises:
                leaf = documented.split(".")[-1]
                if leaf in BUILTIN_EXCEPTIONS:
                    # A builtin can surface from any callee; only domain
                    # errors have a checkable flow.
                    continue
                def_module = self._defining_module(index, summary, documented)
                if def_module is None or not index.is_exception_class(
                    def_module if "." in documented else summary.module,
                    leaf,
                ):
                    continue
                if reachable is None:
                    reachable = self._reachable_raise_names(index, summary)
                if leaf not in reachable:
                    yield self.finding_at(
                        summary.path,
                        func["line"],
                        f"{qualname} documents raising {documented}, but "
                        f"nothing in {summary.module} or its imports raises "
                        f"{leaf}",
                    )

    @staticmethod
    def _reachable_raise_names(index, summary) -> set:
        names = {site["name"].split(".")[-1] for site in summary.raises}
        for dep in index.graph.transitive_deps(summary.module):
            dep_summary = index.summaries.get(dep)
            if dep_summary is not None:
                names.update(
                    site["name"].split(".")[-1] for site in dep_summary.raises
                )
        return names
