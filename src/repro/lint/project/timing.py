"""Cold-vs-warm cache timing guard.

``python -m repro.lint.project.timing [paths] --min-speedup 3`` runs
the whole-program pass twice in one process — once against an empty
cache, once warm — and fails unless the warm run is at least the given
factor faster *and* produced byte-identical findings.  Running in-
process keeps interpreter start-up out of both measurements, so the
ratio reflects the cache, not Python.

This is the only module in :mod:`repro.lint` allowed to read the OS
clock (see ``wall-clock`` allow-modules in pyproject): it measures the
linter itself, never simulation behaviour.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional

from repro.lint.config import LintConfig, load_config
from repro.lint.project.engine import run_project


def _findings_bytes(reports) -> bytes:
    payload = [
        {
            "path": report.path,
            "findings": [f.as_dict() for f in report.findings],
            "suppressed": [f.as_dict() for f in report.suppressed],
        }
        for report in reports
    ]
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def measure(
    paths: list[Path],
    config: LintConfig,
    cache_file: Path,
    warm_runs: int = 3,
    select: Optional[list[str]] = None,
) -> dict:
    """Time one cold and ``warm_runs`` warm project passes (optionally
    restricted to ``select``-ed rules, e.g. the flow pack)."""
    options = dict(config.rule_options)
    options["project"] = {
        **options.get("project", {}),
        "cache": str(cache_file),
    }
    config = replace(config, rule_options=options)

    if cache_file.exists():
        cache_file.unlink()
    start = time.perf_counter()
    cold_reports, cold_stats = run_project(paths, config=config, select=select)
    cold_seconds = time.perf_counter() - start

    warm_seconds = None
    warm_reports, warm_stats = cold_reports, cold_stats
    for _ in range(max(warm_runs, 1)):
        start = time.perf_counter()
        warm_reports, warm_stats = run_project(paths, config=config, select=select)
        elapsed = time.perf_counter() - start
        warm_seconds = elapsed if warm_seconds is None else min(warm_seconds, elapsed)

    return {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
        "cold_parsed": cold_stats.parsed,
        "warm_parsed": warm_stats.parsed,
        "cold_effects_built": cold_stats.effects_built,
        "warm_effects_built": warm_stats.effects_built,
        "warm_effects_reused": warm_stats.effects_reused,
        "files": warm_stats.files,
        "identical": _findings_bytes(cold_reports) == _findings_bytes(warm_reports),
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint-timing",
        description="assert the warm project-pass cache is actually fast",
    )
    parser.add_argument("paths", nargs="*", default=["src"])
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--warm-runs", type=int, default=3)
    args = parser.parse_args(argv)

    config = load_config(Path.cwd())
    paths = [Path(p) for p in args.paths]
    with tempfile.TemporaryDirectory(prefix="repro-lint-timing-") as tmp:
        result = measure(
            paths, config, Path(tmp) / "cache.json", warm_runs=args.warm_runs
        )

    print(
        f"project pass over {result['files']} files: "
        f"cold {result['cold_seconds']:.3f}s ({result['cold_parsed']} parsed), "
        f"warm {result['warm_seconds']:.3f}s ({result['warm_parsed']} parsed), "
        f"speedup {result['speedup']:.1f}x"
    )
    failed = False
    if not result["identical"]:
        print("FAIL: warm findings differ from cold findings", file=sys.stderr)
        failed = True
    if result["warm_parsed"] != 0:
        print(
            f"FAIL: warm run re-parsed {result['warm_parsed']} files",
            file=sys.stderr,
        )
        failed = True
    if result["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {result['speedup']:.2f}x < required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
