"""Incremental cache for the whole-program pass.

Two tiers, both keyed so stale data can never be served:

* **summaries** — per file, keyed on the SHA-256 of the file's bytes.  A
  summary is a pure function of the text, so an unchanged file is never
  re-parsed (this is what makes warm runs fast).
* **constant environments** — per module, keyed on a *closure digest*:
  the hash of the module's own content hash plus the content hashes of
  every module transitively reachable through its top-level imports.
  Editing ``repro/tpwire/constants.py`` therefore changes the digest of
  every dependent module, invalidating exactly the environments whose
  propagated values could have moved — dependents are found through the
  module graph, not by guessing.

The cache file is a single JSON document; a version bump or any decode
problem silently discards it (a cold run is always correct).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

from repro.lint.project.graph import ModuleGraph

# 2: ModuleSummary grew the `flow` concurrency-fact field; version-1
# summaries lack it and must be recomputed, not deserialised.
# 3: ModuleSummary grew the `effects` seed field and the cache grew the
# project-digest effects tier; version-2 entries must be recomputed.
CACHE_VERSION = 3


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ProjectCache:
    """Load/store layer for summaries and constant environments."""

    def __init__(self, path: Optional[Path] = None):
        self.path = path
        self.summaries: dict[str, dict] = {}  # file path -> {"sha", "summary"}
        self.envs: dict[str, dict] = {}       # module -> {"digest", "env"}
        self.effects: dict = {}               # {"digest", "data"} (one blob)
        self.loaded_from_disk = False

    # -- persistence -------------------------------------------------------

    @classmethod
    def load(cls, path: Optional[Path]) -> "ProjectCache":
        cache = cls(path)
        if path is None or not path.is_file():
            return cache
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
            return cache
        summaries = data.get("summaries")
        envs = data.get("envs")
        effects = data.get("effects")
        if isinstance(summaries, dict):
            cache.summaries = summaries
            cache.loaded_from_disk = True
        if isinstance(envs, dict):
            cache.envs = envs
        if isinstance(effects, dict):
            cache.effects = effects
        return cache

    def save(self) -> None:
        if self.path is None:
            return
        payload = {
            "version": CACHE_VERSION,
            "summaries": self.summaries,
            "envs": self.envs,
            "effects": self.effects,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            # Caching is an optimisation; a read-only checkout must not
            # break the lint run.
            pass

    # -- summaries ---------------------------------------------------------

    def summary_for(self, path: str, sha: str) -> Optional[dict]:
        entry = self.summaries.get(path)
        if entry and entry.get("sha") == sha:
            return entry.get("summary")
        return None

    def store_summary(self, path: str, sha: str, summary: dict) -> None:
        self.summaries[path] = {"sha": sha, "summary": summary}

    def prune(self, live_paths: set[str], live_modules: set[str]) -> None:
        """Drop entries for files/modules no longer in the project."""
        self.summaries = {
            p: e for p, e in self.summaries.items() if p in live_paths
        }
        self.envs = {m: e for m, e in self.envs.items() if m in live_modules}

    # -- constant environments --------------------------------------------

    @staticmethod
    def closure_digest(
        module: str, graph: ModuleGraph, module_sha: dict[str, str]
    ) -> str:
        """Digest of a module plus everything it transitively imports."""
        parts = [f"{module}={module_sha.get(module, '')}"]
        for dep in sorted(graph.transitive_deps(module)):
            parts.append(f"{dep}={module_sha.get(dep, '')}")
        return hashlib.sha256(";".join(parts).encode("utf-8")).hexdigest()

    def env_for(self, module: str, digest: str) -> Optional[dict]:
        entry = self.envs.get(module)
        if entry and entry.get("digest") == digest:
            return entry.get("env")
        return None

    def store_env(self, module: str, digest: str, env: dict) -> None:
        self.envs[module] = {"digest": digest, "env": env}

    # -- inferred effects ---------------------------------------------------
    #
    # A single blob for the whole project, keyed on a *project digest*
    # (every module's content hash plus the inference options — see
    # :func:`repro.lint.effects.infer.effects_digest`).  Any file edit
    # changes the digest, so staleness is impossible; pruning is
    # unnecessary for the same reason.

    def effects_for(self, digest: str) -> Optional[dict]:
        if self.effects.get("digest") == digest:
            return self.effects.get("data")
        return None

    def store_effects(self, digest: str, data: dict) -> None:
        self.effects = {"digest": digest, "data": data}
