"""Per-module context handed to every rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class ModuleContext:
    """One parsed source file as the rules see it.

    ``module`` is the dotted import name (``repro.core.client``); rules
    scope themselves by module prefix, so fixture snippets in tests can
    opt into any scope by passing a synthetic module name.
    """

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, *, path: str, module: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )

    def in_package(self, *prefixes: str) -> bool:
        """True when the module sits inside any of the dotted prefixes."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )
