"""Inline suppression comments.

Two forms, mirroring the usual linter conventions:

``# lint: disable=rule-a,rule-b``
    Suppresses the named rules on that physical line.  A bare
    ``# lint: disable`` suppresses every rule on the line.

``# lint: disable-file=rule-a``
    Anywhere in the first ten lines of a module: suppresses the named
    rules (or all, when bare) for the whole file.

Suppressions are matched against the line a finding is *reported* on
(the AST node's ``lineno``), so put the comment on the statement the
linter flags.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.lint.findings import Finding

_LINE_RE = re.compile(r"#\s*lint:\s*disable(?:=([\w\-, ]+))?")
_FILE_RE = re.compile(r"#\s*lint:\s*disable-file(?:=([\w\-, ]+))?")

#: Sentinel meaning "every rule".
ALL = "*"

#: Module-level suppressions must appear within this many leading lines.
FILE_PRAGMA_WINDOW = 10


@dataclass
class SuppressionIndex:
    """Suppression state of one source file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    @classmethod
    def from_lines(cls, lines: list[str]) -> "SuppressionIndex":
        index = cls()
        for lineno, line in enumerate(lines, start=1):
            if "#" not in line or "lint:" not in line:
                continue
            file_match = _FILE_RE.search(line)
            if file_match and lineno <= FILE_PRAGMA_WINDOW:
                index.file_wide.update(_rule_set(file_match.group(1)))
                continue
            line_match = _LINE_RE.search(line)
            if line_match:
                rules = index.by_line.setdefault(lineno, set())
                rules.update(_rule_set(line_match.group(1)))
        return index

    def suppresses(self, finding: Finding) -> bool:
        if ALL in self.file_wide or finding.rule in self.file_wide:
            return True
        rules = self.by_line.get(finding.line)
        if rules is None:
            return False
        return ALL in rules or finding.rule in rules


def _rule_set(group: str | None) -> set[str]:
    if group is None:
        return {ALL}
    return {name.strip() for name in group.split(",") if name.strip()}
