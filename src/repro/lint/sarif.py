"""SARIF 2.1.0 output (``--format sarif``).

SARIF (Static Analysis Results Interchange Format, OASIS) is what CI
code-scanning surfaces ingest; emitting it lets repro-lint findings
annotate pull requests without any adapter.  Only the stdlib is used:
the document is a plain dict serialised with :mod:`json`, and the test
suite validates it against the relevant subset of the official 2.1.0
schema with a hand-written checker.

Suppressed findings are included as results carrying a ``suppressions``
entry of kind ``inSource`` — the SARIF way of saying "# lint: disable";
consumers hide them by default but keep them auditable.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.findings import Finding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/cos02/schemas/"
    "sarif-schema-2.1.0.json"
)


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _result(finding: Finding, rule_index: dict[str, int], suppressed: bool) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": _level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if finding.code_flow:
        result["codeFlows"] = [_code_flow(finding)]
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def _code_flow(finding: Finding) -> dict:
    """One codeFlow/threadFlow from the finding's witness path — how
    viewers render the acquire → leak (or call-chain) trace step by
    step.  A two-element step stays in the finding's file; a third
    element is the step's own file (effect chains cross modules)."""
    locations = []
    for step in finding.code_flow:
        line, note = step[0], step[1]
        uri = step[2] if len(step) > 2 else finding.path
        locations.append(
            {
                "location": {
                    "physicalLocation": {
                        "artifactLocation": {"uri": str(uri)},
                        "region": {"startLine": max(int(line), 1)},
                    },
                    "message": {"text": str(note)},
                }
            }
        )
    return {"threadFlows": [{"locations": locations}]}


def to_sarif(
    findings: Iterable[Finding],
    suppressed: Iterable[Finding],
    rules: Iterable,
) -> dict:
    """Build the SARIF document for one run.

    ``rules`` is the instantiated rule list (both kinds); each becomes a
    ``reportingDescriptor`` in the driver metadata so viewers can show
    summaries and default levels.
    """
    descriptors = []
    rule_index: dict[str, int] = {}
    for rule in sorted(rules, key=lambda r: r.id):
        if rule.id in rule_index:
            continue
        rule_index[rule.id] = len(descriptors)
        descriptors.append(
            {
                "id": rule.id,
                "shortDescription": {"text": rule.summary or rule.id},
                "defaultConfiguration": {"level": _level(rule.severity)},
            }
        )
    results = [_result(f, rule_index, suppressed=False) for f in findings]
    results.extend(_result(f, rule_index, suppressed=True) for f in suppressed)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
