"""The checker: file discovery, module naming, rule dispatch.

The entry points are :func:`lint_paths` (CLI), :func:`lint_file` and
:func:`lint_source` (tests feed fixture snippets straight in).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional

from repro.lint.config import LintConfig
from repro.lint.context import ModuleContext
from repro.lint.findings import FileReport, Finding, Severity
from repro.lint.registry import Rule, instantiate
from repro.lint.suppressions import SuppressionIndex

# Single source of truth for path -> dotted-module mapping: the per-file
# and project passes must never disagree about a module's name.
from repro.lint.project.resolver import module_name_for  # noqa: F401


def iter_python_files(paths: list[Path], config: LintConfig) -> Iterator[Path]:
    """Yield every lintable ``.py`` file under ``paths``, deterministically."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or config.is_excluded(candidate):
                continue
            seen.add(resolved)
            yield candidate


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str = "repro.fixture",
    config: Optional[LintConfig] = None,
    rules: Optional[list[Rule]] = None,
) -> FileReport:
    """Lint an in-memory snippet (the unit-test entry point)."""
    config = config if config is not None else LintConfig()
    if rules is None:
        rules = instantiate(config)
    report = FileReport(path=path)
    try:
        ctx = ModuleContext.from_source(source, path=path, module=module)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                rule="parse-error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"cannot parse: {exc.msg}",
                severity=Severity.ERROR,
            )
        )
        return report

    ignored = config.ignored_rules_for(path)
    suppressions = SuppressionIndex.from_lines(ctx.lines)
    collected: list[Finding] = []
    for rule in rules:
        if rule.id in ignored or not rule.applies_to(ctx):
            continue
        collected.extend(rule.check(ctx))
    for finding in sorted(collected, key=lambda f: (f.line, f.col, f.rule)):
        if suppressions.suppresses(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report


def lint_file(
    path: Path,
    config: Optional[LintConfig] = None,
    rules: Optional[list[Rule]] = None,
) -> FileReport:
    source = path.read_text(encoding="utf-8")
    display = _display_path(path, config)
    return lint_source(
        source,
        path=display,
        module=module_name_for(path),
        config=config,
        rules=rules,
    )


def lint_paths(
    paths: list[Path],
    config: Optional[LintConfig] = None,
    select: Optional[list[str]] = None,
) -> list[FileReport]:
    """Lint every file under ``paths``; returns one report per file."""
    config = config if config is not None else LintConfig()
    rules = instantiate(config, select=select)
    return [
        lint_file(path, config=config, rules=rules)
        for path in iter_python_files(paths, config)
    ]


def _display_path(path: Path, config: Optional[LintConfig]) -> str:
    if config is not None and config.root is not None:
        try:
            return path.resolve().relative_to(config.root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()
