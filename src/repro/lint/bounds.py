"""TpWIRE frame-field bounds, cross-checked against the protocol source.

Rule ``frame-bounds`` needs the numeric limits of each frame field
(Tables 1 and 2 of the paper).  Hard-coding them in the linter would let
the linter and the protocol drift apart, so the authoritative constants
are re-read from the AST of :mod:`repro.tpwire.constants` (the single
protocol-constants module) at lint time:

* ``FRAME_BITS`` -> bound of a whole frame ``word``;
* ``BROADCAST_NODE_ID`` -> bound of ``node_id``/``slave_id`` (the 7-bit
  address space, broadcast id included).

Sub-word field widths (CMD 3 bits, TYPE 2, DATA 8, CRC 4) are fixed by
the frame layout itself and kept here.  Pre-consolidation locations
(``frames.py``/``commands.py``) are read as fallbacks, then the paper's
values, so linting a snippet outside the repo still works.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

#: Fallback constants (the paper's TpWIRE definition).
FALLBACK_FRAME_BITS = 16
FALLBACK_BROADCAST_NODE_ID = 127


@dataclass(frozen=True)
class FieldBound:
    """Upper bound (inclusive) of one frame field, with its rationale."""

    max_value: int
    why: str


def _module_int_constant(path: Path, name: str) -> Optional[int]:
    """Module-level ``NAME = <int literal>`` read without importing."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if (
                name in targets
                and isinstance(node.value, ast.Constant)
                and type(node.value.value) is int
            ):
                return node.value.value
    return None


def tpwire_source_dir() -> Path:
    """Location of the tpwire package sources next to this lint package."""
    return Path(__file__).resolve().parent.parent / "tpwire"


def frame_field_bounds(source_dir: Optional[Path] = None) -> dict[str, FieldBound]:
    """Bounds keyed by the identifier names the rule matches on."""
    source_dir = source_dir if source_dir is not None else tpwire_source_dir()
    frame_bits = (
        _module_int_constant(source_dir / "constants.py", "FRAME_BITS")
        or _module_int_constant(source_dir / "frames.py", "FRAME_BITS")
        or FALLBACK_FRAME_BITS
    )
    broadcast = (
        _module_int_constant(source_dir / "constants.py", "BROADCAST_NODE_ID")
        or _module_int_constant(source_dir / "commands.py", "BROADCAST_NODE_ID")
        or FALLBACK_BROADCAST_NODE_ID
    )
    word_max = (1 << frame_bits) - 1
    return {
        "node_id": FieldBound(broadcast, "7-bit node address space"),
        "slave_id": FieldBound(broadcast, "7-bit node address space"),
        "cmd": FieldBound(0x7, "3-bit CMD field"),
        "rtype": FieldBound(0x3, "2-bit TYPE field"),
        "crc": FieldBound(0xF, "4-bit CRC nibble"),
        "data": FieldBound(0xFF, "8-bit DATA field"),
        "word": FieldBound(word_max, f"{frame_bits}-bit frame word"),
    }
