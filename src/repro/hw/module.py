"""Hardware modules and their processes (``SC_METHOD`` / ``SC_THREAD``).

Subclass :class:`HwModule` and declare behaviour in ``build()``::

    class Repeater(HwModule):
        def build(self):
            self.method(self.copy, sensitive=[self.d_in])

        def copy(self):
            self.d_out.write(self.d_in.read())

Thread processes are generators that yield wait conditions::

    class Driver(HwModule):
        def build(self):
            self.thread(self.run)

        def run(self):
            while True:
                self.line.write(1)
                yield wait_time(1e-3)
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, Optional

from repro.hw.kernel import HwKernel
from repro.hw.signal import Signal, WaitCondition


class MethodProcess:
    """A callable re-run on every trigger of its sensitivity list."""

    def __init__(self, kernel: HwKernel, fn: Callable[[], None], name: str):
        self.kernel = kernel
        self.fn = fn
        self.name = name

    def run(self) -> None:
        self.fn()

    def __repr__(self) -> str:
        return f"MethodProcess({self.name!r})"


class ThreadProcess:
    """A generator resumed whenever its awaited condition triggers."""

    def __init__(self, kernel: HwKernel, fn: Callable[[], Generator], name: str):
        self.kernel = kernel
        self.name = name
        self._generator = fn()
        self.finished = False

    def run(self) -> None:
        if self.finished:
            return
        try:
            condition = next(self._generator)
        except StopIteration:
            self.finished = True
            return
        if not isinstance(condition, WaitCondition):
            raise TypeError(
                f"thread {self.name!r} yielded {condition!r}; threads must "
                "yield wait conditions (wait_time, wait_change, ...)"
            )
        condition.arm(self)

    def __repr__(self) -> str:
        return f"ThreadProcess({self.name!r})"


class HwModule:
    """Base class for hardware modules."""

    def __init__(self, kernel: HwKernel, name: str = ""):
        self.kernel = kernel
        self.name = name or type(self).__name__
        self._processes: list = []
        self.build()

    def build(self) -> None:
        """Declare signals and processes (override)."""

    # -- declaration helpers -------------------------------------------------

    def signal(self, initial=0, name: str = "") -> Signal:
        return Signal(self.kernel, initial, name=f"{self.name}.{name or 'sig'}")

    def method(
        self,
        fn: Callable[[], None],
        sensitive: Optional[Iterable[Signal]] = None,
        initialize: bool = True,
    ) -> MethodProcess:
        """Register a method process with static sensitivity."""
        process = MethodProcess(self.kernel, fn, f"{self.name}.{fn.__name__}")
        for sig in sensitive or ():
            sig.add_static_listener(process)
        self._processes.append(process)
        self.kernel.register_process(process)
        if initialize:
            self.kernel.make_runnable(process)
        return process

    def thread(self, fn: Callable[[], Generator], start: bool = True) -> ThreadProcess:
        """Register a thread process (a generator yielding waits)."""
        process = ThreadProcess(self.kernel, fn, f"{self.name}.{fn.__name__}")
        self._processes.append(process)
        self.kernel.register_process(process)
        if start:
            self.kernel.make_runnable(process)
        return process

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
