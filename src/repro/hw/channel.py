"""Bounded FIFO channel between hardware processes (``sc_fifo`` analog).

Unlike :class:`repro.des.resource.Store`, this FIFO integrates with the
delta-cycle world: readers/writers are hardware thread processes that
yield :func:`wait_change` on the FIFO's level signal.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.hw.signal import Signal


class HwFifo:
    """Bounded FIFO with a level signal for sensitivity."""

    def __init__(self, kernel, capacity: int = 16, name: str = "fifo"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self._items: deque = deque()
        #: Signal carrying the occupancy; processes can wait on changes.
        self.level = Signal(kernel, 0, name=f"{name}.level")
        self.total_written = 0
        self.total_read = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def try_write(self, item: Any) -> bool:
        """Non-blocking write; ``False`` when full."""
        if self.full:
            return False
        self._items.append(item)
        self.total_written += 1
        self.level.write(len(self._items))
        return True

    def try_read(self) -> tuple[bool, Any]:
        """Non-blocking read; ``(False, None)`` when empty."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self.total_read += 1
        self.level.write(len(self._items))
        return True, item

    def peek(self) -> Any:
        if not self._items:
            raise IndexError(f"peek on empty fifo {self.name}")
        return self._items[0]
