"""SC1/SC2 co-simulation bridges (Figure 5 of the paper).

The paper connects the board-side C++ client and the host-side JavaSpaces
server to the NS-2 TpWIRE model through two SystemC processes:

* **SC1** (client side) talks to the client program through gdb's remote
  serial protocol and to NS-2 through shared memory;
* **SC2** (server side) talks to the space server through UNIX sockets
  and to NS-2 through shared memory.

Here each bridge pumps bytes between a pair of
:class:`~repro.hw.shared_memory.SharedMemoryChannel` buffers and a
:class:`~repro.tpwire.transport.TransportEndpoint` on the bus.  What sits
on the far side of the channels — the board ISS via the RSP stub, or the
space server via its wire protocol — is up to the co-simulation assembly
in :mod:`repro.cosim`.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.hw.shared_memory import SharedMemoryChannel
from repro.tpwire.transport import TransportEndpoint


class ClientBridge:
    """SC1: bridges a client byte stream onto the bus towards one server."""

    def __init__(
        self,
        sim,
        endpoint: TransportEndpoint,
        server_node_id: int,
        chunk_size: int = 64,
        name: str = "SC1",
    ):
        self.sim = sim
        self.endpoint = endpoint
        self.server_node_id = server_node_id
        self.chunk_size = chunk_size
        self.name = name
        #: client program -> bus
        self.to_bus = SharedMemoryChannel(sim, name=f"{name}.to_bus")
        #: bus -> client program
        self.from_bus = SharedMemoryChannel(sim, name=f"{name}.from_bus")
        self.forwarded_bytes = 0
        self.delivered_bytes = 0
        endpoint.on_data = self._on_bus_data
        self._process = sim.spawn(self._pump(), name=f"{name}.pump")

    def _pump(self) -> Generator:
        while True:
            yield self.to_bus.wait_readable()
            data = self.to_bus.read(self.chunk_size)
            if not data:
                continue
            self.endpoint.send(self.server_node_id, data)
            self.forwarded_bytes += len(data)

    def _on_bus_data(self, src: int, data: bytes, context) -> None:
        self.delivered_bytes += len(data)
        self.from_bus.write(data)


class ServerBridge:
    """SC2: bridges the bus to the space server's byte stream.

    Inbound bus data is handed to ``deliver(src_node_id, data)``; the
    server side replies through :meth:`send_to`.
    """

    def __init__(
        self,
        sim,
        endpoint: TransportEndpoint,
        deliver: Optional[Callable[[int, bytes], None]] = None,
        name: str = "SC2",
    ):
        self.sim = sim
        self.endpoint = endpoint
        self.name = name
        self.deliver = deliver
        self.received_bytes = 0
        self.sent_bytes = 0
        endpoint.on_data = self._on_bus_data

    def _on_bus_data(self, src: int, data: bytes, context) -> None:
        self.received_bytes += len(data)
        if self.deliver is not None:
            self.deliver(src, data)

    def send_to(self, node_id: int, data: bytes) -> bool:
        accepted = self.endpoint.send(node_id, data)
        if accepted:
            self.sent_bytes += len(data)
        return accepted
