"""SystemC-analog hardware modelling kernel and the bit-level TpWIRE PHY.

The paper's co-simulation uses SystemC for the hardware side: two SystemC
bridge nodes (SC1/SC2) and, implicitly, the timing-exact behaviour of the
physical TpICU/SCM bus that the NS-2 model is validated against (Table 3).

This package provides:

* a delta-cycle simulation kernel (:class:`~repro.hw.kernel.HwKernel`)
  with SystemC's evaluate/update semantics, riding the same
  :class:`~repro.des.Simulator` timeline as the network models so both
  worlds co-simulate natively;
* modules, signals, clocks and FIFO channels
  (:mod:`repro.hw.module`, :mod:`repro.hw.signal`, :mod:`repro.hw.channel`);
* a bit-level TpWIRE PHY (:mod:`repro.hw.tpwire_phy`) — every start bit,
  data bit and CRC bit is serialised on a signal, with per-frame master
  firmware overhead — standing in for the physical bus as the reference
  model of the Table 3 validation;
* the shared-memory channel and SC1/SC2 bridges used by the paper's
  client/server co-simulation architecture (Figure 5).
"""

from repro.hw.kernel import HwKernel
from repro.hw.signal import Signal, wait_change, wait_posedge, wait_negedge, wait_time
from repro.hw.module import HwModule
from repro.hw.clock import Clock
from repro.hw.channel import HwFifo
from repro.hw.shared_memory import SharedMemoryChannel
from repro.hw.tpwire_phy import BitLevelTpwireBus, PhyTiming
from repro.hw.bridge import ClientBridge, ServerBridge

__all__ = [
    "HwKernel",
    "Signal",
    "wait_change",
    "wait_posedge",
    "wait_negedge",
    "wait_time",
    "HwModule",
    "Clock",
    "HwFifo",
    "SharedMemoryChannel",
    "BitLevelTpwireBus",
    "PhyTiming",
    "ClientBridge",
    "ServerBridge",
]
