"""Shared-memory channel (the UNIX shm segment between SystemC and NS-2).

In the paper's Figure 5 the two SystemC bridge nodes exchange data with
the NS-2 TpWIRE model through standard UNIX shared memory.  The analog is
a bounded byte buffer both sides access at simulation time, with a
waitable so consumers can block until data arrives.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.des.process import SimEvent, Waitable


class SharedMemoryChannel:
    """Bounded unidirectional byte buffer with blocking reads."""

    def __init__(self, sim, capacity: int = 65536, name: str = "shm"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._buffer = bytearray()
        self._waiters: deque[Waitable] = deque()
        self.total_written = 0
        self.total_read = 0
        self.rejected_writes = 0

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def free_space(self) -> int:
        return self.capacity - len(self._buffer)

    def write(self, data: bytes) -> bool:
        """Append ``data``; ``False`` (and nothing written) when it won't fit."""
        if not data:
            return True
        if len(data) > self.free_space:
            self.rejected_writes += 1
            return False
        self._buffer.extend(data)
        self.total_written += len(data)
        self._wake()
        return True

    def read(self, max_bytes: Optional[int] = None) -> bytes:
        """Drain up to ``max_bytes`` (default: everything) immediately."""
        count = len(self._buffer) if max_bytes is None else min(max_bytes, len(self._buffer))
        data = bytes(self._buffer[:count])
        del self._buffer[:count]
        self.total_read += len(data)
        return data

    def wait_readable(self) -> Waitable:
        """Waitable that succeeds as soon as the buffer is non-empty."""
        event = SimEvent(self.sim)
        if self._buffer:
            event.succeed(len(self._buffer))
        else:
            self._waiters.append(event)
        return event

    def _wake(self) -> None:
        while self._waiters and self._buffer:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(len(self._buffer))
