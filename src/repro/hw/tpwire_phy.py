"""Bit-level TpWIRE bus on the delta-cycle kernel.

This is the reproduction's stand-in for the *physical* TpICU/SCM bus of
Table 3: every start bit, command bit, data bit and CRC bit is serialised
on signals; slaves repeat frames down the daisy chain with a per-hop
repeater delay, inject the INT bit into passing RX frames, and run the
same :class:`~repro.tpwire.slave.TpwireSlave` protocol state machine as
the packet-level model — so the two models differ *only* in how the wire
is represented, which is precisely what a validation experiment must
isolate.

Timing artifacts the packet-level model does not capture (and which the
Table 3 scaling factor therefore measures):

* per-frame master firmware overhead with jitter (a software master
  cannot emit back-to-back frames at exactly the protocol gap);
* start-bit detection quantisation (the master polls the line at half-bit
  granularity, so RX reception is detected up to half a bit late).

:class:`BitLevelTpwireBus` exposes the same ``execute(frame)`` interface
as :class:`repro.tpwire.bus.TpwireBus`, so the same
:class:`~repro.tpwire.master.TpwireMaster` (and everything above it) can
run on either model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.des.process import Waitable
from repro.hw.kernel import HwKernel
from repro.hw.module import HwModule
from repro.hw.signal import Signal, wait_change, wait_negedge, wait_time
from repro.tpwire.bus import CycleResult, CycleStatus
from repro.tpwire.commands import BROADCAST_NODE_ID, Command, split_address
from repro.tpwire.errors import FrameError, TpwireError
from repro.tpwire.frames import FRAME_BITS, RxFrame, TxFrame
from repro.tpwire.slave import TpwireSlave

#: Idle level of a TpWIRE line.
IDLE = 1


@dataclass(frozen=True)
class PhyTiming:
    """Bit-level timing parameters."""

    bit_rate: float = 2400.0
    hop_delay_bits: float = 2.0
    turnaround_bits: float = 4.0
    #: Mean master firmware overhead between cycles, in bit periods.
    fw_overhead_bits: float = 6.0
    #: Half-width of the uniform firmware jitter, in bit periods.
    fw_jitter_bits: float = 2.0
    #: RX polling granularity, in bit periods.
    poll_bits: float = 0.5
    #: Multiplier on the expected response time before timing out.
    timeout_margin: float = 2.0

    def __post_init__(self):
        if self.bit_rate <= 0:
            raise ValueError("bit rate must be positive")
        if self.hop_delay_bits < self.poll_bits:
            raise ValueError("hop delay must be at least the poll granularity")
        if self.fw_overhead_bits - self.fw_jitter_bits < 1.0:
            raise ValueError("firmware overhead must leave >= 1 idle bit")

    @property
    def bit_period(self) -> float:
        return 1.0 / self.bit_rate

    def response_timeout(self, chain_length: int) -> float:
        expected_bits = (
            FRAME_BITS
            + self.hop_delay_bits * chain_length
            + self.turnaround_bits
            + FRAME_BITS
            + self.hop_delay_bits * chain_length
        )
        return expected_bits * self.bit_period * self.timeout_margin


class SlavePhy(HwModule):
    """Bit-level line interface of one slave.

    Owns the downstream receiver/repeater and the upstream
    repeater/injector; protocol decisions are delegated to the shared
    :class:`TpwireSlave` state machine.
    """

    def __init__(
        self,
        kernel: HwKernel,
        protocol: TpwireSlave,
        timing: PhyTiming,
        down_in: Signal,
        down_out: Signal,
        up_in: Signal,
        up_out: Signal,
        name: str = "",
    ):
        self.protocol = protocol
        self.timing = timing
        self.down_in = down_in
        self.down_out = down_out
        self.up_in = up_in
        self.up_out = up_out
        self.frames_seen = 0
        self.frames_executed = 0
        self.crc_drops = 0
        super().__init__(kernel, name or f"phy.{protocol.name}")

    def build(self) -> None:
        self.thread(self._downstream)
        self.thread(self._upstream)

    # -- downstream: receive, repeat, execute --------------------------------

    def _downstream(self):
        bp = self.timing.bit_period
        hop = self.timing.hop_delay_bits * bp
        sim = self.kernel.sim
        while True:
            yield wait_negedge(self.down_in)
            # Start-bit edge: sample each bit slot at its midpoint and
            # forward it so it appears on down_out hop_delay after its
            # slot boundary.
            bits = []
            yield wait_time(0.5 * bp)
            for index in range(FRAME_BITS):
                bit = self.down_in.read()
                bits.append(bit)
                sim.call_after(hop - 0.5 * bp, self.down_out.write, bit)
                if index < FRAME_BITS - 1:
                    yield wait_time(bp)
            sim.call_after(hop + 0.5 * bp, self.down_out.write, IDLE)
            self.frames_seen += 1
            try:
                frame = TxFrame.from_bits(bits)
            except FrameError:
                self.crc_drops += 1
                continue
            now = sim.now
            self.protocol.observe_tx(frame, now)
            reply = self.protocol.execute(frame, now)
            if reply is None:
                continue
            self.frames_executed += 1
            yield wait_time(self.timing.turnaround_bits * bp)
            yield from self._drive_up(reply.to_bits())

    def _drive_up(self, bits):
        bp = self.timing.bit_period
        for bit in bits:
            self.up_out.write(bit)
            yield wait_time(bp)
        self.up_out.write(IDLE)

    # -- upstream: repeat replies from deeper slaves, inject INT ----------------

    def _upstream(self):
        bp = self.timing.bit_period
        hop = self.timing.hop_delay_bits * bp
        sim = self.kernel.sim
        while True:
            yield wait_negedge(self.up_in)
            yield wait_time(0.5 * bp)
            for index in range(FRAME_BITS):
                bit = self.up_in.read()
                if index == 1 and self.protocol.interrupt_pending:
                    # Sec. 3.1: the INT bit is set as the RX frame passes
                    # through a slave with a pending interrupt.
                    bit = 1
                sim.call_after(hop - 0.5 * bp, self.up_out.write, bit)
                if index < FRAME_BITS - 1:
                    yield wait_time(bp)
            sim.call_after(hop + 0.5 * bp, self.up_out.write, IDLE)


class MasterPhy(HwModule):
    """Bit-level master port: drives TX frames, samples RX frames."""

    def __init__(
        self,
        kernel: HwKernel,
        timing: PhyTiming,
        down_out: Signal,
        up_in: Signal,
        chain_length: int,
        name: str = "phy.master",
    ):
        self.timing = timing
        self.down_out = down_out
        self.up_in = up_in
        self.chain_length = chain_length
        self._queue: deque = deque()
        self._rng = kernel.sim.stream("hw.master-fw")
        self.tx_frames = 0
        self.rx_frames = 0
        self.timeouts = 0
        self.crc_errors = 0
        super().__init__(kernel, name)

    def build(self) -> None:
        self._kick = self.signal(0, name="kick")
        self.thread(self._run)

    # -- public request API ----------------------------------------------------

    def submit(self, frame: TxFrame, expect_reply: bool, done: Waitable) -> None:
        self._queue.append((frame, expect_reply, done))
        self._kick.write(1 - self._kick.value)

    # -- transmit/receive engine -------------------------------------------------

    def _run(self):
        bp = self.timing.bit_period
        sim = self.kernel.sim
        while True:
            if not self._queue:
                yield wait_change(self._kick)
                continue
            frame, expect_reply, done = self._queue.popleft()
            # Master firmware overhead before each cycle (with jitter).
            jitter = self._rng.uniform(
                -self.timing.fw_jitter_bits, self.timing.fw_jitter_bits
            )
            yield wait_time((self.timing.fw_overhead_bits + jitter) * bp)
            self.tx_frames += 1
            for bit in frame.to_bits():
                self.down_out.write(bit)
                yield wait_time(bp)
            self.down_out.write(IDLE)
            if not expect_reply:
                # Broadcast: let the frame flush through the chain.
                tail = self.timing.hop_delay_bits * self.chain_length
                yield wait_time(tail * bp)
                done.succeed(CycleResult(CycleStatus.BROADCAST))
                continue
            result = yield from self._receive()
            done.succeed(result)

    def _receive(self):
        bp = self.timing.bit_period
        sim = self.kernel.sim
        deadline = sim.now + self.timing.response_timeout(self.chain_length)
        # Poll for the start bit at half-bit granularity (quantisation
        # that the packet-level model does not have).
        while self.up_in.read() == IDLE:
            if sim.now >= deadline:
                self.timeouts += 1
                return CycleResult(CycleStatus.TIMEOUT)
            yield wait_time(self.timing.poll_bits * bp)
        # Offset sampling a quarter bit so samples never coincide with a
        # bit boundary (detection lags the edge by < poll_bits).
        yield wait_time(0.25 * bp)
        bits = [0]
        for _ in range(FRAME_BITS - 1):
            yield wait_time(bp)
            bits.append(self.up_in.read())
        try:
            rx = RxFrame.from_bits(bits)
        except FrameError:
            self.crc_errors += 1
            return CycleResult(CycleStatus.CRC_ERROR)
        self.rx_frames += 1
        return CycleResult(CycleStatus.OK, rx)


class BitLevelTpwireBus:
    """Bit-accurate TpWIRE bus with the packet-level bus's interface.

    Build it with a list of protocol slaves; it wires up the PHY chain::

        hwbus = BitLevelTpwireBus(sim, kernel, timing, slaves=[s1, s2])
        master = TpwireMaster(sim, hwbus)   # same master as packet level
    """

    def __init__(
        self,
        sim,
        kernel: HwKernel,
        timing: Optional[PhyTiming] = None,
        name: str = "hw-tpwire",
    ):
        self.sim = sim
        self.kernel = kernel
        self.timing = timing if timing is not None else PhyTiming()
        self.name = name
        self.slaves: list[TpwireSlave] = []
        self.slave_phys: list[SlavePhy] = []
        self._by_node_id: dict[int, TpwireSlave] = {}
        self._down_head = Signal(kernel, IDLE, name=f"{name}.down0")
        self._up_head = Signal(kernel, IDLE, name=f"{name}.up0")
        self.master_phy: Optional[MasterPhy] = None
        self._down_tail = self._down_head
        self._up_tail = self._up_head
        self.cycles = 0

    # -- construction -------------------------------------------------------

    def attach_slave(self, slave: TpwireSlave) -> None:
        if self.master_phy is not None:
            raise TpwireError("cannot attach slaves after finalize()")
        if slave.node_id in self._by_node_id:
            raise TpwireError(f"duplicate node id {slave.node_id}")
        index = len(self.slaves)
        down_next = Signal(self.kernel, IDLE, name=f"{self.name}.down{index + 1}")
        up_next = Signal(self.kernel, IDLE, name=f"{self.name}.up{index + 1}")
        phy = SlavePhy(
            self.kernel,
            slave,
            self.timing,
            down_in=self._down_tail,
            down_out=down_next,
            up_in=up_next,
            up_out=self._up_tail,
        )
        self.slaves.append(slave)
        self.slave_phys.append(phy)
        self._by_node_id[slave.node_id] = slave
        self._down_tail = down_next
        self._up_tail = up_next

    def finalize(self) -> None:
        """Create the master PHY once the chain is complete."""
        if self.master_phy is not None:
            return
        self.master_phy = MasterPhy(
            self.kernel,
            self.timing,
            down_out=self._down_head,
            up_in=self._up_head,
            chain_length=len(self.slaves),
            name=f"{self.name}.master",
        )

    # -- TpwireBus-compatible interface ---------------------------------------

    def execute(self, frame: TxFrame, expect_reply: bool = True) -> Waitable:
        if self.master_phy is None:
            self.finalize()
        done = Waitable(self.sim)
        if frame.cmd is Command.RESET:
            expect_reply = False
        elif frame.cmd is Command.SELECT:
            node_id, _ = split_address(frame.data)
            expect_reply = expect_reply and node_id != BROADCAST_NODE_ID
        self.cycles += 1
        self.master_phy.submit(frame, expect_reply, done)
        return done

    def execute_cb(self, frame: TxFrame, expect_reply: bool, on_result) -> None:
        """Callback-style :meth:`execute` (packet-level bus protocol).

        The bit-level bus is not throughput-critical, so it adapts the
        waitable form instead of duplicating the submit path."""
        self.execute(frame, expect_reply).add_callback(
            lambda done: on_result(done.value)
        )

    def slave_by_id(self, node_id: int) -> TpwireSlave:
        try:
            return self._by_node_id[node_id]
        except KeyError:
            from repro.tpwire.errors import NoSuchNode
            raise NoSuchNode(f"no slave with node id {node_id} on {self.name}")

    @property
    def chain_length(self) -> int:
        return len(self.slaves)

    @property
    def tx_frames(self) -> int:
        return self.master_phy.tx_frames if self.master_phy else 0

    @property
    def rx_frames(self) -> int:
        return self.master_phy.rx_frames if self.master_phy else 0

    @property
    def timeouts(self) -> int:
        return self.master_phy.timeouts if self.master_phy else 0

    @property
    def crc_errors(self) -> int:
        return self.master_phy.crc_errors if self.master_phy else 0

    def __repr__(self) -> str:
        return f"BitLevelTpwireBus({self.name!r}, slaves={len(self.slaves)})"
