"""Clock generator (``sc_clock`` analog)."""

from __future__ import annotations

from repro.hw.module import HwModule
from repro.hw.signal import wait_time


class Clock(HwModule):
    """Drives a boolean signal with a fixed period and duty cycle."""

    def __init__(self, kernel, period: float, duty: float = 0.5, name: str = "clk"):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 < duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {duty}")
        self.period = period
        self.duty = duty
        super().__init__(kernel, name)

    def build(self) -> None:
        self.out = self.signal(0, name="out")
        self.cycles = 0
        self.thread(self._toggle)

    def _toggle(self):
        high = self.period * self.duty
        low = self.period - high
        while True:
            self.out.write(1)
            self.cycles += 1
            yield wait_time(high)
            self.out.write(0)
            yield wait_time(low)

    @property
    def frequency(self) -> float:
        return 1.0 / self.period
