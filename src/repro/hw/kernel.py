"""Delta-cycle kernel with SystemC evaluate/update semantics.

The kernel piggybacks on a :class:`repro.des.Simulator`: every delta step
is one high-priority event at the current simulation time.  Within a step:

1. *evaluate* — every runnable process runs once (method processes are
   called; thread processes resume until their next ``yield``);
2. *update* — signals written during evaluation commit their new values;
   value changes notify sensitive processes, which become runnable in the
   *next* delta step.

Steps repeat at the same timestamp until no process is runnable and no
update is pending, then simulated time advances — exactly SystemC's
scheduler contract, which is what makes the bit-level TpWIRE PHY race-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.signal import Signal


class HwKernel:
    """Evaluate/update scheduler layered on the event kernel."""

    #: Event priority of delta steps: below normal events so that all
    #: deltas at time t settle before ordinary model events at t run.
    DELTA_PRIORITY = -10

    def __init__(self, sim):
        self.sim = sim
        self._runnable: list = []
        self._runnable_set: set = set()
        self._pending_updates: list["Signal"] = []
        self._pending_update_set: set = set()
        self._delta_scheduled = False
        self.delta_count = 0
        self.processes: list = []

    # -- registration ------------------------------------------------------

    def register_process(self, process) -> None:
        self.processes.append(process)

    def make_runnable(self, process) -> None:
        """Queue a process for the next evaluate phase."""
        if id(process) in self._runnable_set:
            return
        self._runnable.append(process)
        self._runnable_set.add(id(process))
        self._schedule_delta()

    def request_update(self, signal: "Signal") -> None:
        """Queue a signal for the next update phase."""
        if id(signal) in self._pending_update_set:
            return
        self._pending_updates.append(signal)
        self._pending_update_set.add(id(signal))
        self._schedule_delta()

    def notify_after(self, delay: float, process) -> None:
        """Resume a process after a timed wait."""
        self.sim.call_after(delay, self.make_runnable, process)

    # -- delta machinery -----------------------------------------------------

    def _schedule_delta(self) -> None:
        if self._delta_scheduled:
            return
        self._delta_scheduled = True
        self.sim.call_at(
            self.sim.now, self._delta_step, priority=self.DELTA_PRIORITY
        )

    def _delta_step(self) -> None:
        self._delta_scheduled = False
        self.delta_count += 1
        # Evaluate phase.
        runnable, self._runnable = self._runnable, []
        self._runnable_set.clear()
        for process in runnable:
            process.run()
        # Update phase.
        updates, self._pending_updates = self._pending_updates, []
        self._pending_update_set.clear()
        for signal in updates:
            signal.apply_update()

    def settle(self) -> None:
        """Run all deltas pending at the current time (for tests)."""
        while self._delta_scheduled:
            # The scheduled event will fire when the sim runs; for direct
            # settling outside a run loop, execute steps inline.
            self._delta_scheduled = False
            self.delta_count += 1
            runnable, self._runnable = self._runnable, []
            self._runnable_set.clear()
            for process in runnable:
                process.run()
            updates, self._pending_updates = self._pending_updates, []
            self._pending_update_set.clear()
            for signal in updates:
                signal.apply_update()
            if self._runnable or self._pending_updates:
                self._delta_scheduled = True
