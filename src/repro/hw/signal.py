"""Signals and wait conditions (the ``sc_signal`` analog).

A signal's :meth:`write` does not take effect immediately: the new value
commits in the update phase of the current delta cycle, and sensitive
processes observe it one delta later — the SystemC semantics that avoid
evaluation-order races between concurrently clocked processes.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class Signal:
    """A delta-cycle signal with change/edge notification."""

    def __init__(self, kernel, initial: Any = 0, name: str = ""):
        self.kernel = kernel
        self.name = name or "signal"
        self._value = initial
        self._pending = initial
        self._has_pending = False
        self._static_listeners: list = []   # method processes
        self._change_waiters: list = []     # one-shot thread resumptions
        self._pos_waiters: list = []
        self._neg_waiters: list = []
        self.last_change_time: Optional[float] = None

    # -- access -------------------------------------------------------------

    @property
    def value(self) -> Any:
        return self._value

    def read(self) -> Any:
        return self._value

    def write(self, value: Any) -> None:
        """Schedule ``value`` to commit in the next update phase."""
        self._pending = value
        if not self._has_pending:
            self._has_pending = True
            self.kernel.request_update(self)

    def apply_update(self) -> None:
        """Commit the pending value (called by the kernel only)."""
        self._has_pending = False
        if self._pending == self._value:
            return
        old, new = self._value, self._pending
        self._value = new
        self.last_change_time = self.kernel.sim.now
        self._notify(old, new)

    # -- sensitivity ----------------------------------------------------------

    def add_static_listener(self, process) -> None:
        self._static_listeners.append(process)

    def wait_change_once(self, process) -> None:
        self._change_waiters.append(process)

    def wait_posedge_once(self, process) -> None:
        self._pos_waiters.append(process)

    def wait_negedge_once(self, process) -> None:
        self._neg_waiters.append(process)

    def _notify(self, old: Any, new: Any) -> None:
        kernel = self.kernel
        for process in self._static_listeners:
            kernel.make_runnable(process)
        waiters, self._change_waiters = self._change_waiters, []
        for process in waiters:
            kernel.make_runnable(process)
        rising = bool(new) and not bool(old)
        falling = bool(old) and not bool(new)
        if rising and self._pos_waiters:
            waiters, self._pos_waiters = self._pos_waiters, []
            for process in waiters:
                kernel.make_runnable(process)
        if falling and self._neg_waiters:
            waiters, self._neg_waiters = self._neg_waiters, []
            for process in waiters:
                kernel.make_runnable(process)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, value={self._value!r})"


# -- wait conditions yielded by thread processes -----------------------------


class WaitCondition:
    """Base class of objects thread processes yield."""

    def arm(self, process) -> None:
        raise NotImplementedError


class wait_change(WaitCondition):
    """Resume when the signal's committed value changes."""

    def __init__(self, signal: Signal):
        self.signal = signal

    def arm(self, process) -> None:
        self.signal.wait_change_once(process)


class wait_posedge(WaitCondition):
    """Resume on a falsy -> truthy transition."""

    def __init__(self, signal: Signal):
        self.signal = signal

    def arm(self, process) -> None:
        self.signal.wait_posedge_once(process)


class wait_negedge(WaitCondition):
    """Resume on a truthy -> falsy transition."""

    def __init__(self, signal: Signal):
        self.signal = signal

    def arm(self, process) -> None:
        self.signal.wait_negedge_once(process)


class wait_time(WaitCondition):
    """Resume after a fixed amount of simulated time."""

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.delay = delay

    def arm(self, process) -> None:
        process.kernel.notify_after(self.delay, process)
