"""Reproduction of *Estimation of Bus Performance for a Tuplespace in an
Embedded Architecture* (Drago, Fummi, Monguzzi, Perbellini, Poncino --
DATE 2003).

The package rebuilds the paper's whole prototyping stack in Python:

================  ===========================================================
``repro.des``     discrete-event kernel (the NS-2 substitute): scheduler
                  queues, generator processes, resources, RNG streams,
                  tracing, monitors, real-time mode
``repro.net``     NS-2-style nodes/links/agents and traffic generators (CBR,
                  exponential on/off, Poisson, trace-driven)
``repro.tpwire``  the TpWIRE bus: CRC-4 frames, command set, slave state
                  machines, master with retries, daisy-chain timing, n-wire
                  variants, mailbox byte transport over the master relay
``repro.hw``      SystemC-analog delta-cycle kernel, the bit-level TpWIRE
                  PHY (the hardware reference of Table 3), shared-memory
                  channels and the SC1/SC2 co-simulation bridges
``repro.board``   Theseus board: stack-machine ISS, assembler, gdb-RSP
                  debug stub, firmware programs
``repro.core``    the tuplespace middleware: tuples/entries/templates, the
                  space engine with leases + notify + transactions, service
                  discovery, SpaceServer, RMI-analog proxies, XML-Tuples
                  codec, socket wire protocol, sync and simulated clients,
                  factory-automation agents
``repro.cosim``   experiment assembly: the Figure 6/7 scenarios and the
                  Table 3 calibration
``repro.analysis``  statistics and table rendering for the benchmarks
================  ===========================================================

Quick taste::

    from repro.core import TupleSpace, LindaTuple, TupleTemplate, ANY

    space = TupleSpace()
    space.write(LindaTuple("temperature", "cell-1", 21.5))
    hot = space.take_if_exists(TupleTemplate("temperature", ANY, float))

See ``examples/`` for runnable walkthroughs and ``benchmarks/`` for the
reproduced tables and figures.
"""

__version__ = "1.0.0"

from repro import analysis, board, core, cosim, des, hw, net, tpwire

__all__ = [
    "__version__",
    "analysis",
    "board",
    "core",
    "cosim",
    "des",
    "hw",
    "net",
    "tpwire",
]
