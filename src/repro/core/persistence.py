"""Persistent message store (Sec. 2).

"the messages are kept in a **persistent message store**" — this module
gives the space engine that property: a :class:`SpaceJournal` observes a
:class:`~repro.core.space.TupleSpace` and appends every committed store
and drop to an append-only journal (JSON lines wrapping XML-Tuples
payloads).  After a crash, :func:`recover_space` replays the journal into
a fresh space, re-granting each surviving entry the *remainder* of its
lease.

The journal writes to any text-file-like object, so tests run it against
``io.StringIO`` and deployments against a real file::

    space = TupleSpace(clock=clock)
    journal = SpaceJournal(space, open("space.journal", "a"), codec)
    ...
    restored = TupleSpace(clock=clock)
    recover_space(restored, open("space.journal"), codec)

:meth:`SpaceJournal.snapshot` compacts the log: it rewrites only the
currently-live entries (to a new sink) so the journal does not grow
without bound.
"""

from __future__ import annotations

import json
import math
from typing import IO, Optional

from repro.core.errors import ProtocolError, SpaceError
from repro.core.space import TupleSpace
from repro.core.xmlcodec import XmlCodec


class SpaceJournal:
    """Append-only operation log attached to a space."""

    def __init__(self, space: TupleSpace, sink: IO[str], codec: XmlCodec):
        self.space = space
        self.sink = sink
        self.codec = codec
        self.entries_logged = 0
        self.drops_logged = 0
        space.observers.append(self)

    def detach(self) -> None:
        """Stop observing (e.g. before swapping in a compacted journal)."""
        try:
            self.space.observers.remove(self)
        except ValueError:
            pass

    # -- observer protocol (called by the space) ----------------------------

    def item_stored(self, seq: int, item, expires_at: float) -> None:
        self._emit({
            "op": "store",
            "seq": seq,
            "expires_at": None if math.isinf(expires_at) else expires_at,
            "item": self.codec.encode(item).decode("utf-8"),
        })
        self.entries_logged += 1

    def item_dropped(self, seq: int) -> None:
        self._emit({"op": "drop", "seq": seq})
        self.drops_logged += 1

    def _emit(self, payload: dict) -> None:
        self.sink.write(json.dumps(payload, separators=(",", ":")) + "\n")
        flush = getattr(self.sink, "flush", None)
        if flush is not None:
            flush()

    # -- compaction ------------------------------------------------------------

    def snapshot(self, new_sink: IO[str]) -> int:
        """Write only the live records to ``new_sink``; switch to it.

        Returns the number of live entries written.  The old sink is left
        for the caller to archive or delete.
        """
        live = 0
        old_sink = self.sink
        self.sink = new_sink
        for record in self.space._records.values():
            if record.lease.expired or record.txn_owner or record.taken_by:
                continue
            self.item_stored(record.seq, record.item, record.lease.expires_at)
            live += 1
        del old_sink
        return live


def replay_journal(source: IO[str], codec: XmlCodec) -> list[tuple[int, object, Optional[float]]]:
    """Parse a journal; returns surviving ``(seq, item, expires_at)``."""
    live: dict[int, tuple[int, object, Optional[float]]] = {}
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"journal line {lineno}: bad JSON: {exc}")
        op = payload.get("op")
        if op == "store":
            item = codec.decode(payload["item"].encode("utf-8"))
            live[payload["seq"]] = (
                payload["seq"], item, payload.get("expires_at")
            )
        elif op == "drop":
            live.pop(payload["seq"], None)
        else:
            raise ProtocolError(f"journal line {lineno}: unknown op {op!r}")
    return [live[seq] for seq in sorted(live)]


def recover_space(space: TupleSpace, source: IO[str], codec: XmlCodec) -> int:
    """Replay a journal into ``space``; returns entries restored.

    Entries whose lease already expired (by the recovering space's clock)
    are skipped; survivors get the remainder of their original lease.
    Restored entries are re-journaled if the space has a journal attached.
    """
    restored = 0
    now = space.clock.now()
    for _seq, item, expires_at in replay_journal(source, codec):
        if expires_at is None:
            space.write(item)
            restored += 1
            continue
        remaining = expires_at - now
        if remaining <= 0:
            continue
        space.write(item, lease=remaining)
        restored += 1
    return restored
