"""Socket wire protocol between clients and the space server.

Sec. 4.2: the C++ client on the Theseus board cannot run a JVM, so a
"Java/socket wrapper" exposes the space server over a byte stream with
XML-encoded entries.  This module defines that byte stream.

Frame layout (big-endian)::

    magic(2) = 0x54 0x53 ("TS")
    type(1)              -- MessageType
    request_id(4)
    body_length(4)
    body(body_length)    -- XML document (may be empty)

Requests carry scalar parameters (lease duration, timeout, lease ids) as
attributes of a ``<request>`` wrapper element whose first child, if any,
is the XML-encoded entry/tuple/template.

The *frame* layout is codec-independent; only the body encoding varies.
A connection starts out speaking XML bodies.  A client may open with a
``HELLO`` message offering body codecs (``codecs="binary,xml"``); the
server answers ``HELLO_ACK`` naming its pick, still in the old encoding,
and both sides switch for every subsequent frame.  A client that never
sends ``HELLO`` gets the historical XML protocol unchanged (docs/wire.md).
"""

from __future__ import annotations

import enum
import struct
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.core.errors import ProtocolError
from repro.core.xmlcodec import XmlCodec

MAGIC = b"TS"
HEADER = struct.Struct(">2sBII")

#: Upper bound on one message body; protects servers from bad lengths.
MAX_BODY = 1 << 20


class MessageType(enum.IntEnum):
    # client -> server
    WRITE = 0x01
    READ = 0x02
    TAKE = 0x03
    READ_IF_EXISTS = 0x04
    TAKE_IF_EXISTS = 0x05
    NOTIFY_REGISTER = 0x06
    CANCEL_LEASE = 0x07
    RENEW_LEASE = 0x08
    PING = 0x09
    HELLO = 0x0A
    STATS = 0x0B
    # server -> client
    WRITE_ACK = 0x81
    RESULT_ENTRY = 0x82
    RESULT_NULL = 0x83
    NOTIFY_ACK = 0x84
    NOTIFY_EVENT = 0x85
    LEASE_ACK = 0x86
    ERROR = 0x87
    PONG = 0x88
    HELLO_ACK = 0x89
    STATS_ACK = 0x8A


#: Message types a server may send.
RESPONSE_TYPES = {
    MessageType.WRITE_ACK,
    MessageType.RESULT_ENTRY,
    MessageType.RESULT_NULL,
    MessageType.NOTIFY_ACK,
    MessageType.NOTIFY_EVENT,
    MessageType.LEASE_ACK,
    MessageType.ERROR,
    MessageType.PONG,
    MessageType.HELLO_ACK,
    MessageType.STATS_ACK,
}

#: Body codecs this build can negotiate, in server preference order.
SUPPORTED_CODECS = ("binary", "xml")

#: Request ids live in the 32-bit header field; clients wrap modulo this.
REQUEST_ID_MODULUS = 1 << 32


@dataclass
class Message:
    """One decoded protocol message."""

    msg_type: MessageType
    request_id: int
    #: scalar parameters (<request> attributes): lease, timeout, lease_id...
    params: dict = field(default_factory=dict)
    #: the embedded entry/tuple/template, if any (decoded object)
    item: Any = None

    def param_float(self, name: str, default: Optional[float] = None) -> Optional[float]:
        value = self.params.get(name)
        if value is None:
            return default
        try:
            return float(value)
        except ValueError:
            raise ProtocolError(f"parameter {name}={value!r} is not a number")

    def param_int(self, name: str, default: Optional[int] = None) -> Optional[int]:
        value = self.params.get(name)
        if value is None:
            return default
        try:
            return int(value)
        except ValueError:
            raise ProtocolError(f"parameter {name}={value!r} is not an int")


class XmlWireCodec:
    """The historical body encoding: an XML ``<request>`` document.

    A *wire codec* turns a :class:`Message` into body bytes and back;
    the frame header around the body never changes.  This one wraps the
    :class:`XmlCodec` value model and is what every connection speaks
    until (unless) a HELLO exchange negotiates another.
    """

    name = "xml"

    def __init__(self, registry: XmlCodec):
        self.registry = registry

    def encode_body(self, message: Message) -> bytes:
        if not message.params and message.item is None:
            return b""
        root = ET.Element("request")
        for key, value in sorted(message.params.items()):
            root.set(key, str(value))
        if message.item is not None:
            root.append(self.registry.to_element(message.item))
        return ET.tostring(root, encoding="utf-8")

    def decode_body(self, msg_type: MessageType, request_id: int, body: bytes) -> Message:
        return decode_body(msg_type, request_id, body, self.registry)


def as_wire_codec(codec) -> Any:
    """Normalise: a bare :class:`XmlCodec` means the XML wire encoding."""
    if isinstance(codec, XmlCodec):
        return XmlWireCodec(codec)
    return codec


def make_wire_codec(name: str, registry: XmlCodec):
    """Instantiate a negotiated body codec over a value-model registry."""
    if name == "xml":
        return XmlWireCodec(registry)
    if name == "binary":
        # Function-local on purpose: bincodec imports Message from here,
        # and this lazy edge keeps the module graph acyclic.
        from repro.core.bincodec import BinaryWireCodec

        return BinaryWireCodec(registry)
    raise ProtocolError(f"unknown wire codec {name!r}")


def negotiate_codec(offered: str) -> Optional[str]:
    """Server side of HELLO: pick from a comma-separated offer.

    Returns the first name in :data:`SUPPORTED_CODECS` the client also
    offered, or ``None`` when nothing overlaps (the server then answers
    ``HELLO_ACK`` naming ``xml``, which every client speaks already).
    """
    names = {name.strip() for name in offered.split(",") if name.strip()}
    for candidate in SUPPORTED_CODECS:
        if candidate in names:
            return candidate
    return None


def encode_message(message: Message, codec) -> bytes:
    """Serialise a :class:`Message` to wire bytes.

    ``codec`` is an :class:`XmlCodec` (historical call sites — XML
    bodies) or any wire codec exposing ``encode_body``.
    """
    body = as_wire_codec(codec).encode_body(message)
    if len(body) > MAX_BODY:
        raise ProtocolError(f"message body too large: {len(body)} bytes")
    header = HEADER.pack(
        MAGIC, int(message.msg_type), message.request_id, len(body)
    )
    return header + body


def decode_body(msg_type: MessageType, request_id: int, body: bytes, codec: XmlCodec) -> Message:
    """Reconstruct a :class:`Message` from its decoded header and body."""
    if not body:
        return Message(msg_type, request_id)
    try:
        root = ET.fromstring(body)
    except ET.ParseError as exc:
        raise ProtocolError(f"bad message XML: {exc}") from exc
    if root.tag != "request":
        raise ProtocolError(f"expected <request>, got <{root.tag}>")
    params = dict(root.attrib)
    children = list(root)
    if len(children) > 1:
        raise ProtocolError("a message carries at most one item")
    item = codec.from_element(children[0]) if children else None
    return Message(msg_type, request_id, params, item)


class StreamParser:
    """Incremental parser: feed bytes, iterate complete messages.

    Used by every transport — TCP sockets, in-memory pipes and the TpWIRE
    bridges — since all of them deliver arbitrary byte chunks.

    ``codec`` is an :class:`XmlCodec` (XML bodies, the default wire
    encoding) or any wire codec with ``decode_body``; :meth:`set_codec`
    switches mid-stream after a HELLO exchange — framing is shared, so
    the switch is clean at any frame boundary.

    When a frame is malformed the raised :class:`ProtocolError` leaves
    :attr:`error_request_id` holding the frame's request id if the header
    was intact (transports use it to answer ``ERROR`` before closing) and
    ``None`` when the stream itself lost sync (bad magic — nothing about
    the frame can be trusted, not even the id).
    """

    def __init__(self, codec):
        self.codec = as_wire_codec(codec)
        self._buffer = bytearray()
        self.messages_parsed = 0
        #: request id of the frame whose parse last failed, if the
        #: header survived; ``None`` after sync loss.
        self.error_request_id: Optional[int] = None

    def set_codec(self, codec) -> None:
        """Switch body codecs at a frame boundary (HELLO negotiation)."""
        self.codec = as_wire_codec(codec)

    def feed(self, data: bytes) -> list[Message]:
        """Append bytes; return every message completed by them."""
        self._buffer.extend(data)
        messages = []
        while True:
            message = self._try_parse_one()
            if message is None:
                return messages
            messages.append(message)

    def _try_parse_one(self) -> Optional[Message]:
        if len(self._buffer) < HEADER.size:
            return None
        magic, raw_type, request_id, length = HEADER.unpack_from(self._buffer)
        if magic != MAGIC:
            self.error_request_id = None
            raise ProtocolError(f"bad magic {magic!r}; stream out of sync")
        if length > MAX_BODY:
            self.error_request_id = request_id
            raise ProtocolError(f"declared body too large: {length}")
        total = HEADER.size + length
        if len(self._buffer) < total:
            return None
        body = bytes(self._buffer[HEADER.size : total])
        del self._buffer[:total]
        self.error_request_id = request_id
        try:
            msg_type = MessageType(raw_type)
        except ValueError:
            raise ProtocolError(f"unknown message type {raw_type:#x}")
        message = self.codec.decode_body(msg_type, request_id, body)
        self.messages_parsed += 1
        self.error_request_id = None
        return message

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)
