"""The simulated embedded client (the paper's C++ client on the board).

Sec. 4.2 translates the prototype Java client into C++ so it can run on
the Theseus boards; in the co-simulation that client talks through the
SC1 bridge onto the TpWIRE bus.  :class:`SimSpaceClient` is that client:
a discrete-event process speaking the XML wire protocol over a pair of
byte channels, with a :class:`ClientTimingModel` charging the time the
embedded processor needs to build and parse XML messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core.errors import ProtocolError, SpaceError
from repro.core.protocol import (
    Message,
    MessageType,
    StreamParser,
    encode_message,
)
from repro.core.xmlcodec import XmlCodec
from repro.des.process import SimEvent


@dataclass(frozen=True)
class ClientTimingModel:
    """Processing costs of the embedded client.

    The board runs the client under an instruction-set simulator behind a
    gdb stub (Sec. 4.3), so marshalling costs are far from negligible;
    they are charged per byte built/parsed plus a fixed per-operation
    dispatch overhead.
    """

    build_seconds_per_byte: float = 0.0
    parse_seconds_per_byte: float = 0.0
    request_overhead: float = 0.0

    def build_time(self, nbytes: int) -> float:
        return self.request_overhead + nbytes * self.build_seconds_per_byte

    def parse_time(self, nbytes: int) -> float:
        return nbytes * self.parse_seconds_per_byte


class SimSpaceClient:
    """Sequential space client as a DES process toolkit.

    ``tx_channel``/``rx_channel`` are
    :class:`~repro.hw.shared_memory.SharedMemoryChannel`-shaped objects
    (the SC1 bridge exposes exactly such a pair).  All operations are
    generators to be driven from a process::

        def board_program(sim, client):
            yield from client.op_write(entry, lease=160.0)
            entry = yield from client.op_take(template, timeout=30.0)
    """

    def __init__(
        self,
        sim,
        tx_channel,
        rx_channel,
        codec: XmlCodec,
        timing: Optional[ClientTimingModel] = None,
        name: str = "sim-client",
    ):
        self.sim = sim
        self.tx_channel = tx_channel
        self.rx_channel = rx_channel
        self.codec = codec
        self.timing = timing if timing is not None else ClientTimingModel()
        self.name = name
        self._parser = StreamParser(codec)
        self._pending: dict[int, SimEvent] = {}
        self._next_request_id = 0
        self.requests_sent = 0
        self.responses_received = 0
        self._dispatcher = sim.spawn(self._dispatch(), name=f"{name}.rx")

    # -- operations ----------------------------------------------------------

    def op_write(
        self,
        entry: Any,
        lease: Optional[float] = None,
        created_at: Optional[float] = None,
    ) -> Generator:
        params = {}
        if lease is not None:
            params["lease"] = lease
        if created_at is not None:
            params["created_at"] = created_at
        reply = yield from self._roundtrip(MessageType.WRITE, params, entry)
        self._expect(reply, MessageType.WRITE_ACK)
        return {
            "lease_id": reply.param_int("lease_id"),
            "granted": reply.param_float("granted"),
        }

    def op_take(self, template: Any, timeout: Optional[float] = None) -> Generator:
        return (yield from self._blocking(MessageType.TAKE, template, timeout))

    def op_read(self, template: Any, timeout: Optional[float] = None) -> Generator:
        return (yield from self._blocking(MessageType.READ, template, timeout))

    def op_take_if_exists(self, template: Any) -> Generator:
        reply = yield from self._roundtrip(MessageType.TAKE_IF_EXISTS, {}, template)
        return self._result(reply)

    def op_read_if_exists(self, template: Any) -> Generator:
        reply = yield from self._roundtrip(MessageType.READ_IF_EXISTS, {}, template)
        return self._result(reply)

    def op_renew_lease(self, lease_id: int, duration: float) -> Generator:
        """Renew a server-held lease; returns the ack's lease terms.

        ``granted`` is the post-clamp term the server actually granted —
        when the space caps renewals (``max_lease``), it is shorter than
        ``duration`` and the board must schedule its next heartbeat from
        it, not from what it asked for.
        """
        reply = yield from self._roundtrip(
            MessageType.RENEW_LEASE,
            {"lease_id": lease_id, "duration": duration},
        )
        self._expect(reply, MessageType.LEASE_ACK)
        return {
            "remaining": reply.param_float("remaining"),
            "granted": reply.param_float("granted"),
        }

    def op_cancel_lease(self, lease_id: int) -> Generator:
        """Cancel a server-held lease (entry or notify registration)."""
        reply = yield from self._roundtrip(
            MessageType.CANCEL_LEASE, {"lease_id": lease_id}
        )
        self._expect(reply, MessageType.LEASE_ACK)
        return {"remaining": reply.param_float("remaining")}

    def op_ping(self) -> Generator:
        reply = yield from self._roundtrip(MessageType.PING, {})
        return reply.msg_type is MessageType.PONG

    # -- plumbing ---------------------------------------------------------------

    def _blocking(self, msg_type: MessageType, template: Any, timeout) -> Generator:
        params = {} if timeout is None else {"timeout": timeout}
        reply = yield from self._roundtrip(msg_type, params, template)
        return self._result(reply)

    def _result(self, reply: Message) -> Optional[Any]:
        if reply.msg_type is MessageType.RESULT_NULL:
            return None
        self._expect(reply, MessageType.RESULT_ENTRY)
        return reply.item

    def _roundtrip(self, msg_type: MessageType, params: dict, item: Any = None) -> Generator:
        self._next_request_id += 1
        request_id = self._next_request_id
        wire = encode_message(Message(msg_type, request_id, params, item), self.codec)
        # Charge the board's marshalling time before bytes leave it.
        build_time = self.timing.build_time(len(wire))
        if build_time > 0:
            yield self.sim.timeout(build_time)
        waiter = SimEvent(self.sim)
        self._pending[request_id] = waiter
        if not self.tx_channel.write(wire):
            del self._pending[request_id]
            raise SpaceError(f"{self.name}: transmit channel full")
        self.requests_sent += 1
        reply: Message = yield waiter
        if reply.msg_type is MessageType.ERROR:
            raise SpaceError(reply.params.get("text", "server error"))
        return reply

    def _dispatch(self) -> Generator:
        while True:
            yield self.rx_channel.wait_readable()
            data = self.rx_channel.read()
            if not data:
                continue
            # Charge the board's XML parse time for the received bytes.
            parse_time = self.timing.parse_time(len(data))
            if parse_time > 0:
                yield self.sim.timeout(parse_time)
            for message in self._parser.feed(data):
                self.responses_received += 1
                waiter = self._pending.pop(message.request_id, None)
                if waiter is not None and not waiter.triggered:
                    waiter.succeed(message)

    def _expect(self, reply: Message, expected: MessageType) -> None:
        if reply.msg_type is not expected:
            raise ProtocolError(
                f"expected {expected.name}, got {reply.msg_type.name}"
            )
