"""Service discovery over the tuplespace.

Sec. 1 lists the middleware's ingredients: "a discovery mechanism for
communicating entities, a common interface schema language and repository,
and an asynchronous communication using a common data scheme (tuples)".
Sec. 2.1: "Devices exporting a service do register themselves into the
service discovery subsystem.  On joining the tuplespace, devices that need
to use a service query the discovery subsystem to locate the service."

The registry is itself built *on* the space: registrations are leased
:class:`ServiceEntry` entries, so discovery inherits the space's fault
behaviour — a crashed device stops renewing and its advertisement
expires, exactly the dynamic-extension story of Sec. 2.1.
"""

from __future__ import annotations

from typing import Optional

from repro.core.entry import Entry
from repro.core.errors import SpaceError
from repro.core.lease import Lease
from repro.core.space import TupleSpace


class ServiceEntry(Entry):
    """Advertisement of one exported service."""

    def __init__(
        self,
        name: Optional[str] = None,
        kind: Optional[str] = None,
        node: Optional[str] = None,
        schema: Optional[str] = None,
        attributes: Optional[dict] = None,
    ):
        self.name = name
        self.kind = kind
        self.node = node
        #: name of the interface schema this service implements
        self.schema = schema
        self.attributes = attributes


class ServiceRegistry:
    """Register/lookup services; keep the shared interface schemas."""

    def __init__(self, space: TupleSpace):
        self.space = space
        #: the "common interface schema language and repository"
        self._schemas: dict[str, str] = {}

    # -- schema repository ---------------------------------------------------

    def register_schema(self, name: str, definition: str) -> None:
        """Publish an interface schema under ``name``."""
        if not name:
            raise SpaceError("schema name must be non-empty")
        self._schemas[name] = definition

    def get_schema(self, name: str) -> str:
        try:
            return self._schemas[name]
        except KeyError:
            raise SpaceError(f"no schema registered under {name!r}")

    def schema_names(self) -> list[str]:
        return sorted(self._schemas)

    # -- service registration -----------------------------------------------------

    def register(self, service: ServiceEntry, lease: Optional[float] = None) -> Lease:
        """Advertise a service; the returned lease keeps it alive."""
        if not service.name or not service.kind:
            raise SpaceError("a service needs both a name and a kind")
        if service.schema is not None and service.schema not in self._schemas:
            raise SpaceError(
                f"service {service.name!r} references unknown schema "
                f"{service.schema!r}"
            )
        return self.space.write(service, lease=lease)

    # -- lookup -------------------------------------------------------------------

    def lookup(
        self,
        name: Optional[str] = None,
        kind: Optional[str] = None,
        node: Optional[str] = None,
    ) -> list[ServiceEntry]:
        """All live services matching the given constraints."""
        template = ServiceEntry(name=name, kind=kind, node=node)
        found = []
        # Reads do not consume, so scan by reading every live service
        # entry; the space's matching handles the wildcards.
        seen_ids = set()
        for record in list(self.space._records.values()):
            item = record.item
            if not isinstance(item, ServiceEntry):
                continue
            if record.lease.expired or record.txn_owner or record.taken_by:
                continue
            if template.matches(item) and id(item) not in seen_ids:
                seen_ids.add(id(item))
                found.append(item)
        return found

    def lookup_one(self, **constraints) -> Optional[ServiceEntry]:
        """The oldest matching service, or ``None``."""
        matches = self.lookup(**constraints)
        return matches[0] if matches else None
