"""Transports connecting clients to the space server.

Three ways to reach a :class:`~repro.core.server.SpaceServer`:

* :class:`LocalConnection` — synchronous in-process loopback (hermetic
  unit tests; no threads, no sockets);
* :class:`SocketSpaceServer` + :func:`open_socket_connection` — a real
  TCP server over localhost, the direct analog of the paper's
  "Java/socket wrapper" (Figure 4);
* the TpWIRE bridges in :mod:`repro.cosim` (Figure 5) for the
  co-simulated embedded path.

All three speak the same wire protocol; the server is reached through an
RMI proxy, mirroring the paper's server-internal RMI hop.
"""

from __future__ import annotations

import select
import socket
import threading
from typing import Optional

from repro.core.errors import ConnectionClosedError, ProtocolError
from repro.core.protocol import (
    Message,
    MessageType,
    StreamParser,
    encode_message,
    make_wire_codec,
    negotiate_codec,
)
from repro.core.rmi import Registry
from repro.core.server import SpaceServer, ThreadTimers
from repro.core.xmlcodec import XmlCodec


class _ProxySession:
    """Session whose ``send`` encodes and forwards to a byte sink."""

    def __init__(self, codec: XmlCodec, sink):
        self.codec = codec
        self.sink = sink

    def send(self, message: Message) -> None:
        self.sink(encode_message(message, self.codec))


class LocalConnection:
    """Synchronous in-process connection to a space server.

    ``send_bytes`` dispatches requests straight into the server (through
    its RMI proxy); responses accumulate in an internal buffer that
    ``recv_bytes`` drains.  With :class:`ThreadTimers` on the server,
    blocking-request timeouts still fire asynchronously.
    """

    def __init__(self, server: SpaceServer, registry: Optional[Registry] = None):
        self.codec = server.codec
        self._server = server
        if registry is None:
            registry = Registry()
            registry.bind("SpaceServer", server, exposed=["handle"])
        self._proxy = registry.lookup("SpaceServer")
        self._parser = StreamParser(self.codec)
        self._rx = bytearray()  # lint: guarded-by=self._lock
        self._lock = threading.Lock()
        self.closed = False
        self._session = _ProxySession(self.codec, self._deliver)

    def _deliver(self, data: bytes) -> None:
        with self._lock:
            self._rx.extend(data)

    def send_bytes(self, data: bytes) -> None:
        if self.closed:
            raise ConnectionClosedError("connection is closed")
        for message in self._parser.feed(data):
            self._proxy.handle(self._session, message)

    def recv_bytes(self, max_bytes: int = 65536) -> bytes:
        with self._lock:
            data = bytes(self._rx[:max_bytes])
            del self._rx[: len(data)]
        return data

    def recv_ready(self) -> bool:
        """Bytes pending?  (Non-blocking drain for ``poll_events``.)"""
        with self._lock:
            return bool(self._rx)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        # Reap blocking requests parked by this session: a closed
        # connection must never consume a later write.
        self._server.session_closed(self._session)


class SocketSpaceServer:
    """TCP front end: one thread per connection, serialised dispatch.

    The space engine is single-threaded, so all request handling (and all
    timer callbacks) run under one lock.
    """

    def __init__(
        self,
        server: SpaceServer,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[Registry] = None,
    ):
        self.server = server
        if registry is None:
            registry = Registry()
            registry.bind("SpaceServer", server, exposed=["handle"])
        self._proxy = registry.lookup("SpaceServer")
        self._lock = threading.RLock()
        # Timer callbacks touch the (single-threaded) space engine; run
        # them under the same dispatch lock as request handling.
        server.timers = _LockedTimers(server.timers, self._lock)
        self._listener = socket.create_server((host, port))
        self.address = self._listener.getsockname()
        self._running = False
        self._accept_thread: Optional[threading.Thread] = None
        # Live client threads and their sockets; pruned as connections
        # finish and drained by stop().
        self._threads_lock = threading.Lock()
        self._client_threads: list[threading.Thread] = []  # lint: guarded-by=self._threads_lock
        self._client_conns: list[socket.socket] = []  # lint: guarded-by=self._threads_lock
        self.connections_accepted = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="space-server-accept", daemon=True
        )
        self._accept_thread.start()

    def stop(self, join_timeout: float = 2.0) -> None:
        """Stop accepting, unblock client threads, join them all.

        Client sockets are shut down first so threads blocked in
        ``recv`` wake immediately; every join carries a timeout so a
        wedged connection can never hang shutdown (the threads are
        daemons as a last resort).
        """
        self._running = False
        # shutdown() before close(): merely closing the fd does not wake
        # a thread already blocked in accept() on Linux.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._threads_lock:
            conns = list(self._client_conns)
            self._client_conns = []
            threads = [t for t in self._client_threads if t.is_alive()]
            self._client_threads = []
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        # Joins happen outside _threads_lock on purpose: joining while
        # holding it would block the accept loop (and trip the
        # blocking-under-lock lint rule).
        accept = self._accept_thread
        if accept is not None:
            accept.join(timeout=join_timeout)
        for thread in threads:
            thread.join(timeout=join_timeout)

    def __enter__(self) -> "SocketSpaceServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- internals -------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            self.connections_accepted += 1
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="space-server-conn",
                daemon=True,
            )
            with self._threads_lock:
                # Prune finished threads / closed sockets as we go so
                # the lists stay bounded by the number of *live*
                # connections, not the all-time total.
                self._client_threads = [
                    t for t in self._client_threads if t.is_alive()
                ]
                self._client_conns = [
                    c for c in self._client_conns if c.fileno() != -1
                ]
                self._client_threads.append(thread)
                self._client_conns.append(conn)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        codec = self.server.codec
        parser = StreamParser(codec)
        send_lock = threading.Lock()

        def sink(data: bytes) -> None:
            with send_lock:
                # Serialising writes to this one socket is the whole
                # point of send_lock (dispatch vs timer threads would
                # otherwise interleave frames); it is per-connection,
                # never taken together with another lock, and the peer
                # draining its end bounds the stall.
                try:
                    conn.sendall(data)  # lint: disable=blocking-under-lock
                except OSError:
                    pass

        proxy_session = _ProxySession(codec, sink)
        session = _LockedSession(proxy_session, self._lock)
        try:
            while self._running:
                data = conn.recv(65536)
                if not data:
                    return
                try:
                    messages = parser.feed(data)
                except ProtocolError as exc:
                    # A malformed frame is the *client's* bug, not a
                    # reason to die with a traceback (ProtocolError is a
                    # SpaceError, which the OSError/ValueError net below
                    # never caught).  Answer ERROR when the frame header
                    # survived enough to recover a request id, then close.
                    request_id = parser.error_request_id
                    if request_id is not None:
                        session.send(Message(
                            MessageType.ERROR, request_id, {"text": str(exc)}
                        ))
                    return
                for message in messages:
                    if message.msg_type is MessageType.HELLO:
                        # Codec negotiation is transport-level: ack in
                        # the current encoding, then switch both
                        # directions for subsequent frames.
                        chosen = negotiate_codec(
                            message.params.get("codecs", "")
                        ) or "xml"
                        session.send(Message(
                            MessageType.HELLO_ACK,
                            message.request_id,
                            {"codec": chosen},
                        ))
                        wire = make_wire_codec(chosen, codec)
                        parser.set_codec(wire)
                        proxy_session.codec = wire
                        continue
                    with self._lock:
                        self._proxy.handle(session, message)
        except (OSError, ValueError):
            return
        finally:
            with self._lock:
                self.server.session_closed(session)
            try:
                conn.close()
            except OSError:
                pass


class _LockedTimers:
    """Run timer callbacks under the server's dispatch lock."""

    def __init__(self, inner, lock):
        self._inner = inner
        self._lock = lock

    def call_later(self, delay: float, fn):
        def locked_fn():
            with self._lock:
                fn()

        return self._inner.call_later(delay, locked_fn)


class _LockedSession:
    """Serialise ``send`` calls issued from timer threads."""

    def __init__(self, inner, lock):
        self._inner = inner
        self._lock = lock

    def send(self, message: Message) -> None:
        # The dispatch lock may already be held (responses sent inline
        # from handle()); RLock makes that safe.
        with self._lock:
            self._inner.send(message)


def open_socket_connection(address) -> "SocketConnection":
    """Connect to a :class:`SocketSpaceServer` at ``(host, port)``."""
    sock = socket.create_connection(address)
    return SocketConnection(sock)


class SocketConnection:
    """Blocking socket adapter with the client connection interface."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self.closed = False

    def send_bytes(self, data: bytes) -> None:
        self._sock.sendall(data)

    def recv_bytes(self, max_bytes: int = 65536) -> bytes:
        data = self._sock.recv(max_bytes)
        if not data:
            self.closed = True
        return data

    def recv_ready(self) -> bool:
        """Bytes pending?  A zero-timeout select, so event polling
        (``SpaceClient.poll_events``) never parks in a blocking recv."""
        if self.closed:
            return True  # let recv_bytes surface the EOF
        try:
            readable, _, _ = select.select([self._sock], [], [], 0)
        except (OSError, ValueError):
            return True
        return bool(readable)

    def close(self) -> None:
        self.closed = True
        try:
            self._sock.close()
        except OSError:
            pass


def make_threaded_server(
    space, codec: Optional[XmlCodec] = None, host: str = "127.0.0.1", port: int = 0
) -> SocketSpaceServer:
    """Convenience: space + codec -> running TCP space server (not started)."""
    codec = codec if codec is not None else XmlCodec()
    server = SpaceServer(space, codec, timers=ThreadTimers())
    return SocketSpaceServer(server, host, port)
