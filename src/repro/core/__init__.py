"""Tuplespace middleware (the paper's JavaSpaces-like application layer).

The middleware follows the Linda / JavaSpaces model the paper builds on:

* typed tuples and entries, associatively addressed by template matching
  (:mod:`repro.core.tuples`, :mod:`repro.core.entry`);
* a tuplespace with blocking and non-blocking ``write`` / ``read`` /
  ``take`` primitives, leases, and subscribe/notify
  (:mod:`repro.core.space`, :mod:`repro.core.lease`,
  :mod:`repro.core.events`);
* transactions and a service-discovery subsystem layered on the space
  (:mod:`repro.core.transactions`, :mod:`repro.core.discovery`);
* the ``SpaceServer`` with its RMI-analog in-process proxies, the
  XML-Tuples codec and the socket wire protocol that lets non-Java (C++)
  clients participate (:mod:`repro.core.server`, :mod:`repro.core.rmi`,
  :mod:`repro.core.xmlcodec`, :mod:`repro.core.protocol`);
* transports: real TCP sockets, hermetic in-memory pipes, and (through
  :mod:`repro.cosim`) the TpWIRE bus (:mod:`repro.core.transports`);
* agents for the paper's factory-automation patterns — redundant
  actuators with failover, producer/consumer offload
  (:mod:`repro.core.agents`).
"""

from repro.core.errors import (
    ConnectionClosedError,
    SpaceError,
    NoMatchError,
    LeaseDeniedError,
    LeaseExpiredError,
    TransactionError,
    ProtocolError,
)
from repro.core.clock import Clock, SystemClock, SimClock, ManualClock
from repro.core.tuples import LindaTuple, TupleTemplate, ANY
from repro.core.entry import Entry, entry_fields, make_template
from repro.core.lease import Lease, LeaseManager, FOREVER
from repro.core.events import EventRegistration, RemoteEvent
from repro.core.space import TupleSpace, SpaceStats
from repro.core.transactions import Transaction, TransactionState
from repro.core.discovery import ServiceRegistry, ServiceEntry
from repro.core.server import SpaceServer
from repro.core.persistence import SpaceJournal, recover_space, replay_journal
from repro.core.rmi import RemoteProxy, Skeleton, Registry
from repro.core.xmlcodec import XmlCodec
from repro.core.protocol import (
    MessageType,
    Message,
    encode_message,
    StreamParser,
)
from repro.core.client import SpaceClient
from repro.core.sim_client import SimSpaceClient, ClientTimingModel
from repro.core.agents import (
    SpaceAgent,
    ControlAgent,
    ActuatorAgent,
    ProducerAgent,
    ConsumerAgent,
)

__all__ = [
    "ConnectionClosedError",
    "SpaceError",
    "NoMatchError",
    "LeaseDeniedError",
    "LeaseExpiredError",
    "TransactionError",
    "ProtocolError",
    "Clock",
    "SystemClock",
    "SimClock",
    "ManualClock",
    "LindaTuple",
    "TupleTemplate",
    "ANY",
    "Entry",
    "entry_fields",
    "make_template",
    "Lease",
    "LeaseManager",
    "FOREVER",
    "EventRegistration",
    "RemoteEvent",
    "TupleSpace",
    "SpaceStats",
    "Transaction",
    "TransactionState",
    "ServiceRegistry",
    "ServiceEntry",
    "SpaceServer",
    "SpaceJournal",
    "recover_space",
    "replay_journal",
    "RemoteProxy",
    "Skeleton",
    "Registry",
    "XmlCodec",
    "MessageType",
    "Message",
    "encode_message",
    "StreamParser",
    "SpaceClient",
    "SimSpaceClient",
    "ClientTimingModel",
    "SpaceAgent",
    "ControlAgent",
    "ActuatorAgent",
    "ProducerAgent",
    "ConsumerAgent",
]
