"""The SpaceServer: protocol-level front end of a tuplespace.

Sec. 4.1: "The name of the space server class is SpaceServer"; clients
reach it through RMI or, for non-Java participants, through the socket
wrapper speaking the XML wire protocol of :mod:`repro.core.protocol`.

The server is transport-agnostic: a *session* is anything with a
``send(message)`` method; the transports (TCP sockets, in-memory pipes,
TpWIRE bridges) adapt their byte streams to :meth:`SpaceServer.handle`
calls.  Blocking READ/TAKE requests park a space waiter plus a timeout
timer, so one server serves many sessions without threads of its own.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.core.errors import ProtocolError, SpaceError
from repro.core.lease import Lease
from repro.core.protocol import Message, MessageType
from repro.core.space import TupleSpace, WaitMode
from repro.core.xmlcodec import XmlCodec


class Timers:
    """Timeout scheduling protocol: ``call_later(delay, fn) -> handle``.

    A handle must expose ``cancel()``.
    """

    def call_later(self, delay: float, fn) -> Any:
        raise NotImplementedError


class SimTimers(Timers):
    """Timers on a :class:`repro.des.Simulator`."""

    class _Handle:
        def __init__(self, sim, event):
            self._sim = sim
            self._event = event

        def cancel(self) -> None:
            self._sim.cancel(self._event)

    def __init__(self, sim):
        self.sim = sim

    def call_later(self, delay: float, fn) -> "_Handle":
        return self._Handle(self.sim, self.sim.after(delay, fn))


class ThreadTimers(Timers):
    """Real-time timers (``threading.Timer``) for the socket server."""

    def call_later(self, delay: float, fn) -> threading.Timer:
        timer = threading.Timer(delay, fn)
        timer.daemon = True
        timer.start()
        return timer


class NullTimers(Timers):
    """No timeouts (blocking requests wait forever); for simple tests."""

    class _Handle:
        def cancel(self) -> None:
            pass

    def call_later(self, delay: float, fn) -> "_Handle":
        return self._Handle()


#: Default blocking-request timeout when the client sends none.
DEFAULT_TIMEOUT = 60.0


class SpaceServer:
    """Dispatches wire-protocol requests onto a :class:`TupleSpace`."""

    def __init__(
        self,
        space: TupleSpace,
        codec: XmlCodec,
        timers: Optional[Timers] = None,
        name: str = "SpaceServer",
        obs=None,
        lease_epoch: int = 0,
    ):
        """``lease_epoch`` is an incarnation number for lease ids.  A
        restarted front end must pass a fresh epoch: otherwise its id
        counter restarts at 1 and a client holding a pre-crash lease id
        would silently renew some *other* post-restart grant instead of
        learning that its lease table is gone.
        """
        self.space = space
        self.codec = codec
        self.timers = timers if timers is not None else NullTimers()
        self.name = name
        self._leases: dict[int, Lease] = {}
        #: ``id(lease) -> lease_id`` so a duplicate idempotent write acks
        #: the original id (safe: ``_leases`` keeps every lease alive).
        self._lease_ids: dict[int, int] = {}
        self.lease_epoch = lease_epoch
        self._next_lease_id = lease_epoch << 32
        self._registrations: dict[int, Any] = {}
        #: Parked blocking requests per session (``id(session)`` keyed):
        #: cancelled when the transport reports the session closed, so a
        #: dead connection's TAKE can never consume a tuple and send it
        #: into the void.
        self._parked: dict[int, list] = {}
        self.requests_handled = 0
        self.errors_sent = 0
        self.waiters_reaped = 0
        # -- observability (nullable; stamped with the space's clock)
        self.obs = obs
        if obs is not None:
            obs.bind_clock(space.clock.now)
            self._ctr_requests = obs.metrics.counter("server.requests")
            self._ctr_errors = obs.metrics.counter("server.errors")
            self._wait_seconds = obs.metrics.histogram("server.wait_seconds")

    # -- main entry point -----------------------------------------------------

    def handle(self, session, message: Message) -> None:
        """Process one request; respond through ``session.send``."""
        self.requests_handled += 1
        if self.obs is not None:
            self._ctr_requests.inc()
            self.obs.tracer.event(
                "server", "request",
                type=message.msg_type.name, request=message.request_id,
            )
        handler = self._HANDLERS.get(message.msg_type)
        if handler is None:
            self._error(session, message, f"unexpected message type "
                                          f"{message.msg_type.name}")
            return
        try:
            handler(self, session, message)
        except (SpaceError, ProtocolError) as exc:
            self._error(session, message, str(exc))

    # -- individual operations ---------------------------------------------------

    #: Effectively-expired writes get this microscopic lease so the write
    #: succeeds but the entry is never visible to a later take.
    EXPIRED_LEASE = 1e-9

    def _handle_write(self, session, message: Message) -> None:
        if message.item is None:
            raise ProtocolError("WRITE carries no entry")
        lease_duration = message.param_float("lease")
        created_at = message.param_float("created_at")
        op_key = message.params.get("op_key")
        dead_on_arrival = False
        if lease_duration is not None and created_at is not None:
            # The entry's lifetime counts from its creation at the client
            # (clock-synchronized deployments); grant only the remainder.
            age = max(0.0, self.space.clock.now() - created_at)
            remaining = lease_duration - age
            dead_on_arrival = remaining <= 0
            lease_duration = max(self.EXPIRED_LEASE, remaining)
        dups_before = self.space.duplicate_writes
        lease = self.space.write(message.item, lease=lease_duration, op_key=op_key)
        duplicate = self.space.duplicate_writes > dups_before
        if dead_on_arrival and not duplicate:
            lease.cancel()
        lease_id = self._register_lease(lease)
        params = {"lease_id": lease_id, "granted": lease.duration}
        if op_key is not None:
            # Only idempotent writes report duplicate status; plain
            # writes keep the historical ack shape (and wire length —
            # the cosim golden traces are byte-exact).
            params["dup"] = int(duplicate)
        session.send(Message(MessageType.WRITE_ACK, message.request_id, params))

    def _handle_blocking(self, session, message: Message, mode: WaitMode) -> None:
        if message.item is None:
            raise ProtocolError(f"{message.msg_type.name} carries no template")
        timeout = message.param_float("timeout", DEFAULT_TIMEOUT)
        state = {"done": False, "timer": None}
        started = self.space.clock.now()

        def observe_wait(outcome: str) -> None:
            if self.obs is None:
                return
            self._wait_seconds.observe(self.space.clock.now() - started)
            self.obs.tracer.event(
                "server", "reply",
                type=message.msg_type.name, request=message.request_id,
                outcome=outcome,
            )

        def on_match(item):
            if state["done"]:
                return
            state["done"] = True
            if state["timer"] is not None:
                state["timer"].cancel()
            observe_wait("match")
            session.send(Message(
                MessageType.RESULT_ENTRY, message.request_id, {}, item
            ))

        waiter = self.space.register_waiter(message.item, mode, on_match)
        if state["done"] or not waiter.active:
            return

        def on_timeout():
            if state["done"]:
                return
            state["done"] = True
            waiter.cancel()
            observe_wait("timeout")
            session.send(Message(MessageType.RESULT_NULL, message.request_id))

        state["timer"] = self.timers.call_later(timeout, on_timeout)
        parked = self._parked.setdefault(id(session), [])
        parked[:] = [entry for entry in parked if not entry[0]["done"]]
        parked.append((state, waiter))

    def session_closed(self, session) -> None:
        """Cancel the parked blocking requests of a dead session.

        Transports call this when a connection dies.  Without it, a
        parked TAKE waiter from the dead connection would still fire on
        the next matching write — consuming the tuple and sending the
        response into the void, which a surviving client observes as a
        lost acknowledged write.
        """
        for state, waiter in self._parked.pop(id(session), ()):
            if state["done"]:
                continue
            state["done"] = True
            waiter.cancel()
            if state["timer"] is not None:
                state["timer"].cancel()
            self.waiters_reaped += 1

    def _handle_read(self, session, message: Message) -> None:
        self._handle_blocking(session, message, WaitMode.READ)

    def _handle_take(self, session, message: Message) -> None:
        self._handle_blocking(session, message, WaitMode.TAKE)

    def _handle_if_exists(self, session, message: Message, take: bool) -> None:
        if message.item is None:
            raise ProtocolError(f"{message.msg_type.name} carries no template")
        if take:
            item = self.space.take_if_exists(message.item)
        else:
            item = self.space.read_if_exists(message.item)
        if item is None:
            session.send(Message(MessageType.RESULT_NULL, message.request_id))
        else:
            session.send(Message(
                MessageType.RESULT_ENTRY, message.request_id, {}, item
            ))

    def _handle_read_if_exists(self, session, message: Message) -> None:
        self._handle_if_exists(session, message, take=False)

    def _handle_take_if_exists(self, session, message: Message) -> None:
        self._handle_if_exists(session, message, take=True)

    def _handle_notify_register(self, session, message: Message) -> None:
        if message.item is None:
            raise ProtocolError("NOTIFY_REGISTER carries no template")
        lease_duration = message.param_float("lease")

        def listener(event):
            session.send(Message(
                MessageType.NOTIFY_EVENT,
                message.request_id,
                {
                    "registration_id": event.registration_id,
                    "sequence": event.sequence,
                },
                event.item,
            ))

        registration = self.space.notify(message.item, listener, lease_duration)
        lease_id = self._register_lease(registration.lease)
        self._registrations[registration.registration_id] = registration
        session.send(Message(
            MessageType.NOTIFY_ACK,
            message.request_id,
            {
                "registration_id": registration.registration_id,
                "lease_id": lease_id,
            },
        ))

    def _handle_cancel_lease(self, session, message: Message) -> None:
        lease = self._lease_for(message)
        lease.cancel()
        session.send(Message(
            MessageType.LEASE_ACK, message.request_id, {"remaining": 0.0}
        ))

    def _handle_renew_lease(self, session, message: Message) -> None:
        lease = self._lease_for(message)
        duration = message.param_float("duration")
        if duration is None:
            raise ProtocolError("RENEW_LEASE needs a duration")
        granted = lease.renew(duration)
        session.send(Message(
            MessageType.LEASE_ACK,
            message.request_id,
            # "granted" is the post-clamp term: when the space's
            # max_lease caps the request, the client learns the real
            # duration instead of silently over-estimating it.
            {"remaining": lease.remaining(), "granted": granted},
        ))

    def _handle_ping(self, session, message: Message) -> None:
        session.send(Message(MessageType.PONG, message.request_id))

    # -- helpers ----------------------------------------------------------------

    def _register_lease(self, lease: Lease) -> int:
        known = self._lease_ids.get(id(lease))
        if known is not None:
            return known
        self._next_lease_id += 1
        self._leases[self._next_lease_id] = lease
        self._lease_ids[id(lease)] = self._next_lease_id
        return self._next_lease_id

    def _lease_for(self, message: Message) -> Lease:
        lease_id = message.param_int("lease_id")
        if lease_id is None:
            raise ProtocolError("missing lease_id")
        lease = self._leases.get(lease_id)
        if lease is None:
            raise ProtocolError(f"unknown lease id {lease_id}")
        return lease

    def _error(self, session, message: Message, text: str) -> None:
        self.errors_sent += 1
        if self.obs is not None:
            self._ctr_errors.inc()
            self.obs.tracer.event(
                "server", "error",
                type=message.msg_type.name, request=message.request_id,
            )
        session.send(Message(
            MessageType.ERROR, message.request_id, {"text": text}
        ))

    _HANDLERS = {
        MessageType.WRITE: _handle_write,
        MessageType.READ: _handle_read,
        MessageType.TAKE: _handle_take,
        MessageType.READ_IF_EXISTS: _handle_read_if_exists,
        MessageType.TAKE_IF_EXISTS: _handle_take_if_exists,
        MessageType.NOTIFY_REGISTER: _handle_notify_register,
        MessageType.CANCEL_LEASE: _handle_cancel_lease,
        MessageType.RENEW_LEASE: _handle_renew_lease,
        MessageType.PING: _handle_ping,
    }
