"""Blocking space operations for discrete-event processes.

The engine's waiter mechanism is callback-based; these helpers adapt it to
waitables so DES processes can block on the space directly::

    def worker(sim, space):
        item = yield space_take(sim, space, template, timeout=5.0)
        if item is None:
            ...  # timed out
"""

from __future__ import annotations

from typing import Any, Optional

from repro.des.process import SimEvent, Waitable
from repro.core.space import TupleSpace, WaitMode


def _blocking_op(
    sim,
    space: TupleSpace,
    template: Any,
    mode: WaitMode,
    timeout: Optional[float],
) -> Waitable:
    event = SimEvent(sim)
    state = {"done": False, "timer": None}

    def on_match(item):
        if state["done"]:
            return
        state["done"] = True
        if state["timer"] is not None:
            sim.cancel(state["timer"])
        event.succeed(item)

    waiter = space.register_waiter(template, mode, on_match)
    if state["done"] or not waiter.active:
        return event

    if timeout is not None:
        def on_timeout():
            if state["done"]:
                return
            state["done"] = True
            waiter.cancel()
            event.succeed(None)

        state["timer"] = sim.after(timeout, on_timeout)
    return event


def space_take(sim, space: TupleSpace, template: Any, timeout: Optional[float] = None) -> Waitable:
    """Waitable take: succeeds with the item, or ``None`` on timeout."""
    return _blocking_op(sim, space, template, WaitMode.TAKE, timeout)


def space_read(sim, space: TupleSpace, template: Any, timeout: Optional[float] = None) -> Waitable:
    """Waitable read: succeeds with the item, or ``None`` on timeout."""
    return _blocking_op(sim, space, template, WaitMode.READ, timeout)


class LeaseKeeper:
    """Keeps a set of leases alive by periodic renewal.

    The heartbeat pattern behind Sec. 2.1's dynamic extension story: a
    live device keeps renewing the lease on its service advertisement; a
    crashed device stops, and the advertisement expires on its own.

    Each managed lease is renewed back to its original duration whenever
    less than ``renew_fraction`` of it remains.
    """

    def __init__(self, sim, check_interval: float = 1.0, renew_fraction: float = 0.5):
        if check_interval <= 0:
            raise ValueError("check interval must be positive")
        if not 0.0 < renew_fraction < 1.0:
            raise ValueError("renew fraction must be in (0, 1)")
        self.sim = sim
        self.check_interval = check_interval
        self.renew_fraction = renew_fraction
        self._managed: dict[int, tuple] = {}
        self.renewals = 0
        self.running = True
        self._process = sim.spawn(self._run(), name="lease-keeper")

    def manage(self, lease) -> None:
        """Start keeping ``lease`` alive at its current duration."""
        self._managed[id(lease)] = (lease, lease.duration)

    def release(self, lease) -> None:
        """Stop renewing ``lease`` (it will expire naturally)."""
        self._managed.pop(id(lease), None)

    def stop(self) -> None:
        """Stop the keeper entirely (simulates the device crashing)."""
        self.running = False

    def _run(self):
        while self.running:
            yield self.sim.timeout(self.check_interval)
            for key, (lease, duration) in list(self._managed.items()):
                if lease.cancelled or lease.expired:
                    self._managed.pop(key, None)
                    continue
                if lease.remaining() < duration * self.renew_fraction:
                    granted = lease.renew(duration)
                    self.renewals += 1
                    if granted < duration:
                        # The grantor clamped the renewal: track the term
                        # actually granted, or every later check would
                        # see "less than half remaining" and renew on
                        # each heartbeat.
                        self._managed[key] = (lease, granted)
