"""Linda tuples and templates.

Sec. 2 of the paper: "The basic element of a tuplespace system is a tuple,
which is simply a vector of typed values, or fields.  Tuples are
associatively addressed via matching with other tuples."

A :class:`LindaTuple` is an immutable vector of values; a
:class:`TupleTemplate` is a vector of patterns, each of which is

* an **actual** — a concrete value that must compare equal,
* a **formal** — a ``type`` that the field's value must be an instance of,
* :data:`ANY` — matches anything.

Matching requires equal arity.
"""

from __future__ import annotations

from typing import Any, Iterable


class _Any:
    """Sentinel matching any value (singleton :data:`ANY`)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


#: Wildcard pattern: matches any field value.
ANY = _Any()


class LindaTuple:
    """An immutable ordered vector of typed values."""

    __slots__ = ("fields",)

    def __init__(self, *fields: Any):
        if not fields:
            raise ValueError("a tuple needs at least one field")
        object.__setattr__(self, "fields", tuple(fields))

    def __setattr__(self, name, value):
        raise AttributeError("LindaTuple is immutable")

    @property
    def arity(self) -> int:
        return len(self.fields)

    def __getitem__(self, index: int) -> Any:
        return self.fields[index]

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __eq__(self, other) -> bool:
        return isinstance(other, LindaTuple) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        inner = ", ".join(repr(f) for f in self.fields)
        return f"LindaTuple({inner})"


class TupleTemplate:
    """Associative-addressing pattern over :class:`LindaTuple`.

    >>> t = LindaTuple("fft", 3, [1.0, 2.0])
    >>> TupleTemplate("fft", int, ANY).matches(t)
    True
    >>> TupleTemplate("fft", 4, ANY).matches(t)
    False
    """

    __slots__ = ("patterns", "first_bound")

    def __init__(self, *patterns: Any):
        if not patterns:
            raise ValueError("a template needs at least one pattern")
        self.patterns = tuple(patterns)
        #: ``(position, value)`` of the first actual (a concrete value,
        #: neither ANY nor a type), or ``None`` for all-wildcard
        #: templates.  The matching engine's hash index keys candidate
        #: lookups off this field.
        self.first_bound = None
        for position, pattern in enumerate(patterns):
            if pattern is ANY or isinstance(pattern, type):
                continue
            self.first_bound = (position, pattern)
            break

    @property
    def arity(self) -> int:
        return len(self.patterns)

    def matches(self, item: Any) -> bool:
        """``True`` when ``item`` is a tuple this template matches."""
        if not isinstance(item, LindaTuple):
            return False
        if item.arity != self.arity:
            return False
        for pattern, value in zip(self.patterns, item.fields):
            if pattern is ANY:
                continue
            if isinstance(pattern, type):
                # Formal: match by type.  bool is an int subclass; treat
                # them as distinct field types, as typed tuples would.
                if pattern is int and isinstance(value, bool):
                    return False
                if not isinstance(value, pattern):
                    return False
                continue
            if pattern != value:
                return False
        return True

    @classmethod
    def exact(cls, item: LindaTuple) -> "TupleTemplate":
        """Template matching exactly one concrete tuple."""
        return cls(*item.fields)

    def __repr__(self) -> str:
        parts = []
        for pattern in self.patterns:
            if isinstance(pattern, type):
                parts.append(pattern.__name__)
            else:
                parts.append(repr(pattern))
        return f"TupleTemplate({', '.join(parts)})"
