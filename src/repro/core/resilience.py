"""Client-side resilience: backoff, circuit breaker, idempotent retries.

Three composable pieces on top of :class:`~repro.core.client.SpaceClient`:

* :class:`BackoffPolicy` — exponential retry delays with optional jitter
  drawn from an *injected* RNG (chaos tests pass a plan stream, so retry
  timing is replayable);
* :class:`CircuitBreaker` — closed / open / half-open against an injected
  :class:`~repro.core.clock.Clock`; while open, operations fail fast with
  :class:`~repro.core.errors.CircuitOpenError` instead of hammering a
  dead server;
* :class:`ResilientSpaceClient` — reconnects through a connection
  factory, retries *idempotent* operations (writes carry an automatic
  idempotency key, so a retry after a lost acknowledgement cannot
  duplicate the tuple), and re-acquires leases after a server front-end
  restart.  ``take`` is deliberately never retried once the request may
  have reached the server: it either completes once or raises — retrying
  could consume two tuples.

All waiting goes through ``clock.sleep``; under a
:class:`~repro.core.clock.ManualClock` the whole recovery dance runs
deterministically and instantly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.client import SpaceClient
from repro.core.clock import Clock
from repro.core.errors import (
    CircuitOpenError,
    ConnectionClosedError,
    RequestTimeoutError,
    SpaceError,
)
from repro.core.xmlcodec import XmlCodec


class BackoffPolicy:
    """Exponential backoff: ``base * factor**attempt`` capped at ``max_delay``.

    ``rng`` (a ``random.Random``) adds up to ``jitter`` fractional spread;
    pass a seeded stream for deterministic chaos runs, or ``None`` for
    none at all.
    """

    def __init__(
        self,
        base: float = 0.05,
        factor: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        rng=None,
    ):
        if base <= 0 or factor < 1.0 or max_delay <= 0:
            raise ValueError("backoff needs base > 0, factor >= 1, max_delay > 0")
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = rng

    def delay(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (counted from 0)."""
        delay = min(self.max_delay, self.base * self.factor ** attempt)
        if self._rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * self._rng.random()
        return delay


class CircuitBreaker:
    """Fail-fast guard: trips open after consecutive failures.

    States: *closed* (normal), *open* (every call rejected until
    ``reset_timeout`` has passed), *half-open* (one probe allowed; its
    outcome closes or re-opens the circuit).
    """

    def __init__(
        self,
        clock: Clock,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._failures = 0
        self._opened_at: Optional[float] = None
        self.opens = 0
        self.rejections = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self.clock.now() - self._opened_at >= self.reset_timeout:
            return "half-open"
        return "open"

    def allow(self) -> None:
        """Permit the call or raise :class:`CircuitOpenError`."""
        if self.state == "open":
            self.rejections += 1
            remaining = self.reset_timeout - (self.clock.now() - self._opened_at)
            raise CircuitOpenError(
                f"circuit open for another {remaining:.3f}s"
            )

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self._failures += 1
        if self._opened_at is not None:
            # A failed half-open probe restarts the open window.
            self._opened_at = self.clock.now()
            self.opens += 1
        elif self._failures >= self.failure_threshold:
            self._opened_at = self.clock.now()
            self.opens += 1


class _WrittenEntry:
    """Book-keeping for one idempotent write (lease re-acquisition)."""

    __slots__ = ("base_key", "op_key", "entry", "lease_duration",
                 "lease_id", "generation")

    def __init__(self, base_key: str, entry: Any, lease_duration):
        self.base_key = base_key
        self.op_key = base_key
        self.entry = entry
        self.lease_duration = lease_duration
        self.lease_id: Optional[int] = None
        self.generation = 0


def _is_dead_lease(exc: SpaceError) -> bool:
    text = str(exc)
    return "unknown lease" in text or "expired lease" in text


class ResilientSpaceClient:
    """A :class:`SpaceClient` that survives crashes, drops and restarts.

    ``connect`` is a zero-argument factory returning a fresh connection
    (e.g. :meth:`repro.chaos.transport.ChaosHost.connect`); the client
    rebuilds its inner :class:`SpaceClient` through it whenever the
    current connection dies.
    """

    #: Operations retried after transport failures.  ``take`` /
    #: ``take_if_exists`` are absent by design: once the request may have
    #: reached the server, retrying could consume a second tuple.
    def __init__(
        self,
        connect: Callable[[], Any],
        codec: XmlCodec,
        clock: Clock,
        client_id: str = "client",
        backoff: Optional[BackoffPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        poll_interval: float = 0.005,
        request_timeout: Optional[float] = 0.5,
        max_attempts: int = 8,
    ):
        self._connect = connect
        self.codec = codec
        self.clock = clock
        self.client_id = client_id
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.breaker = breaker
        self.poll_interval = poll_interval
        self.request_timeout = request_timeout
        self.max_attempts = max_attempts
        self._client: Optional[SpaceClient] = None
        self._op_counter = 0
        self._written: dict[str, _WrittenEntry] = {}
        # -- counters (chaos benches report these)
        self.connects = 0
        self.retries = 0
        self.duplicate_acks = 0
        self.reacquired = 0

    # -- connection management ----------------------------------------------

    def _ensure_client(self) -> SpaceClient:
        client = self._client
        if client is not None and not getattr(client.connection, "closed", False):
            return client
        connection = self._connect()
        self.connects += 1
        self._client = SpaceClient(
            connection,
            self.codec,
            poll_interval=self.poll_interval,
            clock=self.clock,
            request_timeout=self.request_timeout,
        )
        return self._client

    def _drop_client(self) -> None:
        client = self._client
        self._client = None
        if client is not None:
            try:
                client.connection.close()
            except OSError:
                pass

    # -- retry engine --------------------------------------------------------

    def _call(self, op: Callable[[SpaceClient], Any], idempotent: bool) -> Any:
        attempt = 0
        while True:
            if self.breaker is not None:
                try:
                    self.breaker.allow()
                except CircuitOpenError:
                    # Not a new failure — the breaker is just holding the
                    # line.  Idempotent callers back off and wait for the
                    # half-open probe window; others fail fast.
                    attempt += 1
                    if not idempotent or attempt >= self.max_attempts:
                        raise
                    self.retries += 1
                    self.clock.sleep(self.backoff.delay(attempt - 1))
                    continue
            try:
                client = self._ensure_client()
            except (ConnectionClosedError, OSError):
                # Connection establishment never reached the server with
                # a request, so retrying is safe for every operation.
                # Real-socket factories surface a refused/unreachable
                # server as OSError (ConnectionRefusedError) rather than
                # ConnectionClosedError — both mean "reconnect later".
                attempt = self._note_failure(attempt, retryable=True)
                continue
            try:
                result = op(client)
            except (ConnectionClosedError, RequestTimeoutError, OSError):
                # OSError: a TCP send/recv on a connection the server
                # dropped (BrokenPipeError, ECONNRESET) — same contract
                # as ConnectionClosedError, reached mid-operation.
                self._drop_client()
                attempt = self._note_failure(attempt, retryable=idempotent)
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return result

    def _note_failure(self, attempt: int, retryable: bool) -> int:
        """Record a failure; sleep and return the next attempt count, or
        re-raise the active exception when retries are exhausted."""
        if self.breaker is not None:
            self.breaker.record_failure()
        attempt += 1
        if not retryable or attempt >= self.max_attempts:
            raise
        self.retries += 1
        self.clock.sleep(self.backoff.delay(attempt - 1))
        return attempt

    # -- space operations -----------------------------------------------------

    def write(self, entry: Any, lease: Optional[float] = None) -> dict:
        """Idempotent write: retried safely under an automatic op key."""
        self._op_counter += 1
        record = _WrittenEntry(
            f"{self.client_id}:{self._op_counter}", entry, lease
        )
        ack = self._call(
            lambda c: c.write(entry, lease=lease, op_key=record.op_key),
            idempotent=True,
        )
        if ack["dup"]:
            self.duplicate_acks += 1
        record.lease_id = ack["lease_id"]
        self._written[record.base_key] = record
        return ack

    def read(self, template: Any, timeout: Optional[float] = None):
        return self._call(lambda c: c.read(template, timeout), idempotent=True)

    def read_if_exists(self, template: Any):
        return self._call(lambda c: c.read_if_exists(template), idempotent=True)

    def take(self, template: Any, timeout: Optional[float] = None):
        """Never retried past the send: completes once or raises."""
        return self._call(lambda c: c.take(template, timeout), idempotent=False)

    def take_if_exists(self, template: Any):
        return self._call(lambda c: c.take_if_exists(template), idempotent=False)

    def ping(self) -> bool:
        return self._call(lambda c: c.ping(), idempotent=True)

    def cancel_lease(self, lease_id: int) -> None:
        self._call(lambda c: c.cancel_lease(lease_id), idempotent=True)

    # -- lease re-acquisition ---------------------------------------------------

    def renew_lease(self, lease_id: int, duration: float) -> float:
        """Renew; after a front-end restart, gracefully re-acquire.

        A restarted server forgets its ``lease_id`` table.  If this
        client wrote the entry, it re-binds the grant by replaying the
        idempotent write (the space dedups and returns the original
        lease under a fresh id) and renews that; an entry that expired
        during the outage is re-published as a new generation.
        """
        try:
            return self._call(
                lambda c: c.renew_lease(lease_id, duration), idempotent=True
            )
        except (CircuitOpenError, ConnectionClosedError, RequestTimeoutError):
            raise
        except SpaceError as exc:
            record = self._entry_for(lease_id)
            if record is None or not _is_dead_lease(exc):
                raise
            return self._reacquire(record, duration)

    def _entry_for(self, lease_id: int) -> Optional[_WrittenEntry]:
        for record in self._written.values():
            if record.lease_id == lease_id:
                return record
        return None

    def _reacquire(self, record: _WrittenEntry, duration: float) -> float:
        ack = self._call(
            lambda c: c.write(
                record.entry, lease=record.lease_duration, op_key=record.op_key
            ),
            idempotent=True,
        )
        record.lease_id = ack["lease_id"]
        if ack["dup"]:
            # Original grant re-bound under a fresh id; renew it if it
            # is still alive.
            try:
                renewed = self._call(
                    lambda c: c.renew_lease(record.lease_id, duration),
                    idempotent=True,
                )
                self.reacquired += 1
                return renewed
            except (CircuitOpenError, ConnectionClosedError, RequestTimeoutError):
                raise
            except SpaceError as exc:
                if not _is_dead_lease(exc):
                    raise
        else:
            # The op key aged out of retention: the write re-ran fresh.
            self.reacquired += 1
            return ack["granted"]
        # The entry died during the outage: re-publish a new generation.
        record.generation += 1
        record.op_key = f"{record.base_key}:g{record.generation}"
        ack = self._call(
            lambda c: c.write(
                record.entry, lease=record.lease_duration, op_key=record.op_key
            ),
            idempotent=True,
        )
        record.lease_id = ack["lease_id"]
        self.reacquired += 1
        return ack["granted"]
