"""Synchronous space client (the "C++ client" of the paper, host flavour).

Speaks the XML wire protocol over any connection exposing ``send_bytes``
/ ``recv_bytes`` — a TCP socket, the in-process loopback, or anything
byte-stream shaped.  The client keeps one outstanding request at a time
(the embedded client of the paper is likewise strictly sequential);
asynchronous NOTIFY_EVENT messages interleaved with responses are
dispatched to registered callbacks.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.clock import Clock, SystemClock
from repro.core.errors import (
    ConnectionClosedError,
    ProtocolError,
    RequestTimeoutError,
    SpaceError,
)
from repro.core.protocol import (
    REQUEST_ID_MODULUS,
    Message,
    MessageType,
    StreamParser,
    encode_message,
    make_wire_codec,
)
from repro.core.xmlcodec import XmlCodec


class SpaceClient:
    """Blocking client for a remote space server."""

    def __init__(
        self,
        connection,
        codec: XmlCodec,
        poll_interval: float = 0.005,
        clock: Optional[Clock] = None,
        request_timeout: Optional[float] = None,
    ):
        """``clock`` paces the response polling loop.

        Defaults to the wall clock; inject a
        :class:`~repro.core.clock.ManualClock` (tests) or any other
        :class:`~repro.core.clock.Clock` to make polling deterministic.

        ``request_timeout`` bounds how long a request may poll for its
        response before raising :class:`RequestTimeoutError` — without
        it a dropped response means polling forever.  ``None`` keeps the
        historical wait-forever behaviour.
        """
        self.connection = connection
        self.codec = codec
        self.poll_interval = poll_interval
        self.clock = clock if clock is not None else SystemClock()
        self.request_timeout = request_timeout
        self._parser = StreamParser(codec)
        self._wire = make_wire_codec("xml", codec)
        self.wire_codec = "xml"
        self._next_request_id = 0
        self._notify_handlers: dict[int, Callable] = {}
        self.requests_sent = 0
        self.events_received = 0
        #: Responses for earlier requests (duplicates, or replies that
        #: arrived after their request timed out), discarded on sight.
        self.stale_responses = 0

    # -- space operations ---------------------------------------------------

    def write(
        self,
        entry: Any,
        lease: Optional[float] = None,
        created_at: Optional[float] = None,
        op_key: Optional[str] = None,
    ) -> dict:
        """Write an entry; returns ``{"lease_id": ..., "granted": ..., "dup": ...}``.

        ``created_at`` (a clock-synchronized timestamp) makes the entry's
        lifetime count from its creation at the client rather than from
        its arrival at the server.

        ``op_key`` is an idempotency key: retrying the write with the
        same key after a lost acknowledgement returns the original grant
        (``dup`` True) instead of storing a second tuple.
        """
        params = {}
        if lease is not None:
            params["lease"] = lease
        if created_at is not None:
            params["created_at"] = created_at
        if op_key is not None:
            params["op_key"] = op_key
        reply = self._request(MessageType.WRITE, params, entry)
        self._expect(reply, MessageType.WRITE_ACK)
        return {
            "lease_id": reply.param_int("lease_id"),
            "granted": reply.param_float("granted"),
            "dup": bool(reply.param_int("dup")),
        }

    def read(self, template: Any, timeout: Optional[float] = None) -> Optional[Any]:
        """Blocking read; ``None`` when the server times out the request."""
        return self._blocking(MessageType.READ, template, timeout)

    def take(self, template: Any, timeout: Optional[float] = None) -> Optional[Any]:
        """Blocking take; ``None`` when the server times out the request."""
        return self._blocking(MessageType.TAKE, template, timeout)

    def read_if_exists(self, template: Any) -> Optional[Any]:
        reply = self._request(MessageType.READ_IF_EXISTS, {}, template)
        return self._result(reply)

    def take_if_exists(self, template: Any) -> Optional[Any]:
        reply = self._request(MessageType.TAKE_IF_EXISTS, {}, template)
        return self._result(reply)

    def notify(
        self,
        template: Any,
        callback: Callable[[Message], None],
        lease: Optional[float] = None,
    ) -> dict:
        """Subscribe; ``callback(message)`` runs for each NOTIFY_EVENT."""
        params = {} if lease is None else {"lease": lease}
        reply = self._request(MessageType.NOTIFY_REGISTER, params, template)
        self._expect(reply, MessageType.NOTIFY_ACK)
        registration_id = reply.param_int("registration_id")
        self._notify_handlers[registration_id] = callback
        return {
            "registration_id": registration_id,
            "lease_id": reply.param_int("lease_id"),
        }

    def cancel_lease(self, lease_id: int) -> None:
        reply = self._request(MessageType.CANCEL_LEASE, {"lease_id": lease_id})
        self._expect(reply, MessageType.LEASE_ACK)

    def renew_lease(self, lease_id: int, duration: float) -> float:
        reply = self._request(
            MessageType.RENEW_LEASE,
            {"lease_id": lease_id, "duration": duration},
        )
        self._expect(reply, MessageType.LEASE_ACK)
        return reply.param_float("remaining")

    def ping(self) -> bool:
        reply = self._request(MessageType.PING, {})
        return reply.msg_type is MessageType.PONG

    def hello(self, codecs: str = "binary,xml") -> str:
        """Negotiate the body codec; returns the server's pick.

        Must be the first request on the connection (both sides switch
        encodings right after the HELLO/HELLO_ACK pair, so frames from
        earlier requests could otherwise still be in flight).  Servers
        predating the exchange answer ERROR; the client then simply
        stays on XML.
        """
        try:
            reply = self._request(MessageType.HELLO, {"codecs": codecs})
        except SpaceError:
            return self.wire_codec
        self._expect(reply, MessageType.HELLO_ACK)
        chosen = reply.params.get("codec", "xml")
        if chosen != self.wire_codec:
            self._wire = make_wire_codec(chosen, self.codec)
            self._parser.set_codec(self._wire)
            self.wire_codec = chosen
        return chosen

    def poll_events(self) -> int:
        """Drain pending notify events without issuing a request.

        Never blocks: connections exposing ``recv_ready()`` (sockets,
        the loopback) are only read when bytes are already pending —
        a bare blocking ``recv`` here used to park the caller forever
        when no event had arrived.
        """
        ready = getattr(self.connection, "recv_ready", None)
        if ready is not None and not ready():
            return 0
        dispatched = 0
        for message in self._parser.feed(self.connection.recv_bytes()):
            if message.msg_type is not MessageType.NOTIFY_EVENT:
                self.stale_responses += 1
                continue
            self._dispatch_event(message)
            dispatched += 1
        return dispatched

    # -- plumbing -----------------------------------------------------------------

    def _blocking(self, msg_type: MessageType, template: Any, timeout) -> Optional[Any]:
        params = {} if timeout is None else {"timeout": timeout}
        reply = self._request(msg_type, params, template)
        return self._result(reply)

    def _result(self, reply: Message) -> Optional[Any]:
        if reply.msg_type is MessageType.RESULT_NULL:
            return None
        self._expect(reply, MessageType.RESULT_ENTRY)
        return reply.item

    def _request(self, msg_type: MessageType, params: dict, item: Any = None) -> Message:
        # The header packs ids as >I: wrap modulo 2^32 (skipping 0, which
        # ERROR replies use when no request id was recoverable) instead of
        # letting request 2^32 die with a struct.error mid-stream.
        self._next_request_id = (self._next_request_id + 1) % REQUEST_ID_MODULUS or 1
        request_id = self._next_request_id
        message = Message(msg_type, request_id, params, item)
        self.connection.send_bytes(encode_message(message, self._wire))
        self.requests_sent += 1
        return self._await_response(request_id)

    def _await_response(self, request_id: int) -> Message:
        deadline = (
            None
            if self.request_timeout is None
            else self.clock.now() + self.request_timeout
        )
        while True:
            data = self.connection.recv_bytes()
            if not data:
                if getattr(self.connection, "closed", False):
                    raise ConnectionClosedError("connection closed mid-request")
                if deadline is not None and self.clock.now() >= deadline:
                    raise RequestTimeoutError(
                        f"no response to request {request_id} within "
                        f"{self.request_timeout}s"
                    )
                self.clock.sleep(self.poll_interval)
                continue
            for message in self._parser.feed(data):
                if message.msg_type is MessageType.NOTIFY_EVENT:
                    self._dispatch_event(message)
                    continue
                if message.request_id == request_id:
                    if message.msg_type is MessageType.ERROR:
                        raise SpaceError(message.params.get("text", "server error"))
                    return message
                if (
                    message.msg_type is MessageType.ERROR
                    and message.request_id == 0
                ):
                    # Connection-fatal server error (a frame so broken no
                    # request id was recoverable); the close follows.
                    raise SpaceError(message.params.get("text", "server error"))
                # Wrap-safe ordering: a response is *stale* when its id
                # sits behind ours in the modular half-window (duplicated,
                # or arrived after its request timed out) — a plain `<`
                # would misclassify everything straddling the 2^32 wrap.
                behind = (request_id - message.request_id) % REQUEST_ID_MODULUS
                if 0 < behind < REQUEST_ID_MODULUS // 2:
                    self.stale_responses += 1
                    continue
                raise ProtocolError(
                    f"response for unknown request {message.request_id}"
                )

    def _dispatch_event(self, message: Message) -> None:
        self.events_received += 1
        registration_id = message.param_int("registration_id")
        handler = self._notify_handlers.get(registration_id)
        if handler is not None:
            handler(message)

    def _expect(self, reply: Message, expected: MessageType) -> None:
        if reply.msg_type is not expected:
            raise ProtocolError(
                f"expected {expected.name}, got {reply.msg_type.name}"
            )
