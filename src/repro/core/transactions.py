"""Transactions over a tuplespace (JavaSpaces-style, single-space).

Writes under a transaction are invisible to other agents until commit;
takes under a transaction provisionally remove the entry and restore it on
abort.  This is the optional JavaSpaces facility the middleware exposes as
an extension — the paper's evaluation does not use it, but real space
deployments do, and the fault-tolerance patterns benefit from it.
"""

from __future__ import annotations

import enum

from repro.core.errors import TransactionError


class TransactionState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """A unit of atomicity over one space.

    Use via the space's operations::

        txn = Transaction(space)
        space.write(entry, txn=txn)
        got = space.take_if_exists(template, txn=txn)
        txn.commit()        # or txn.abort()

    Or as a context manager (commit on success, abort on exception)::

        with Transaction(space) as txn:
            space.write(entry, txn=txn)
    """

    def __init__(self, space):
        self.space = space
        self.state = TransactionState.ACTIVE
        self._written: list = []
        self._taken: list = []
        #: blocked waiters registered under this transaction; the space
        #: deactivates them when the transaction resolves, so none can
        #: deliver into a dead transaction.
        self._waiters: list = []

    @property
    def is_active(self) -> bool:
        return self.state is TransactionState.ACTIVE

    def commit(self) -> None:
        self._require_active()
        self.state = TransactionState.COMMITTED
        self.space._commit_txn(self)

    def abort(self) -> None:
        self._require_active()
        self.state = TransactionState.ABORTED
        self.space._abort_txn(self)

    def _require_active(self) -> None:
        if not self.is_active:
            raise TransactionError(
                f"transaction already {self.state.value}"
            )

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Transaction":
        self._require_active()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self.is_active:
            return False  # resolved explicitly inside the block
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False

    def __repr__(self) -> str:
        return (
            f"Transaction({self.state.value}, writes={len(self._written)}, "
            f"takes={len(self._taken)})"
        )
