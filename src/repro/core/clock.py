"""Clock abstraction.

The tuplespace engine needs time for leases and timestamps, but it must
run in three worlds: real time (the threaded socket server), simulated
time (the co-simulation of the paper) and controlled time (tests).  All
take a :class:`Clock`.
"""

from __future__ import annotations

import time as _time


class Clock:
    """Time source protocol: ``now()`` in seconds, monotone.

    ``sleep()`` is the matching delay primitive, so components that poll
    (e.g. :class:`repro.core.client.SpaceClient`) can take one injected
    object for both reading and pacing time — under a test clock a
    "sleep" merely advances it, keeping runs deterministic and instant.
    """

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, duration: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock time (monotonic)."""

    def now(self) -> float:
        return _time.monotonic()

    def sleep(self, duration: float) -> None:
        _time.sleep(duration)


class SimClock(Clock):
    """Simulation time of a :class:`repro.des.Simulator`."""

    def __init__(self, sim):
        self.sim = sim

    def now(self) -> float:
        return self.sim.now


class ManualClock(Clock):
    """Test clock advanced explicitly."""

    def __init__(self, start: float = 0.0):
        self._now = start

    def now(self) -> float:
        return self._now

    def sleep(self, duration: float) -> None:
        self.advance(duration)

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ValueError(f"cannot go back in time by {delta}")
        self._now += delta
        return self._now

    def set(self, value: float) -> None:
        if value < self._now:
            raise ValueError(f"cannot go back in time to {value}")
        self._now = value
