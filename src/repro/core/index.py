"""Candidate-pruning indexes for the tuplespace matching engine.

The space's associative lookup ("the oldest tuple matching this
template") is semantically a scan over every stored item in timestamp
order.  This module keeps that *semantics* while shrinking the set of
records the scan has to touch:

* :class:`ItemIndex` buckets stored records by shape —
  :class:`~repro.core.tuples.LindaTuple` records by arity plus a hash
  index per ``(arity, position, value)``, :class:`~repro.core.entry.Entry`
  records under every ``Entry`` class in their MRO plus a per-field
  equality index, and anything else in an opaque bucket that always
  falls back to the linear scan;
* :class:`TemplateTable` is the reverse direction: it buckets *templates*
  (pending waiters and notify registrations) the same way, so a write
  only tests the templates that could possibly match the written item.

Both indexes prune, they never decide: every candidate still goes
through ``template.matches(item)``, so an index can only lose by
omission.  Two rules keep omissions impossible:

1. A template type is only routed through a shape bucket when its
   ``matches`` is the stock implementation
   (:meth:`TupleTemplate.matches <repro.core.tuples.TupleTemplate.matches>`
   or :meth:`Entry.matches <repro.core.entry.Entry.matches>`), whose
   pruning invariants (arity equality, ``isinstance`` on the template
   class, field equality) are known.  A subclass overriding ``matches``
   degrades to the full scan.
2. Values that cannot be hashed land in per-position/per-field *loose*
   buckets that are merged into every equality lookup at that position,
   so a hash index never hides a record from an equality it might pass.

The hash indexes assume the standard Python contract ``a == b``
implies ``hash(a) == hash(b)`` and that items are not mutated while
stored (entries are value snapshots once written, as in JavaSpaces,
where ``write`` serialises the entry).

All buckets are ``dict[int, record]`` keyed by the space's monotonic
sequence number; records are only ever inserted with a fresh, larger
``seq``, so plain insertion order *is* timestamp order and merging
buckets is an ordered merge, never a sort of the whole space.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Iterator, Optional

from repro.core.entry import Entry, iter_constrained_fields
from repro.core.tuples import LindaTuple, TupleTemplate

_EMPTY: dict = {}


def _merged(a: Optional[dict], b: Optional[dict]) -> Iterable:
    """Values of two seq-keyed dicts, in ascending ``seq`` order."""
    if not a:
        return b.values() if b else ()
    if not b:
        return a.values()
    return (record for _seq, record in heapq.merge(a.items(), b.items()))


def _stock_matches(template: Any) -> Optional[str]:
    """Which stock matching discipline ``template`` follows, if any.

    Returns ``"linda"``/``"entry"`` when the template's ``matches`` is
    the unmodified base implementation (so its pruning invariants are
    known), or ``None`` for everything else (full scan).
    """
    cls = type(template)
    if isinstance(template, TupleTemplate):
        if cls.matches is TupleTemplate.matches:
            return "linda"
        return None
    if isinstance(template, Entry):
        if cls.matches is Entry.matches:
            return "entry"
    return None


class ItemIndex:
    """Shape-bucketed index over a space's live records.

    A *record* is any object with ``seq`` (int, unique, monotonic) and
    ``item`` attributes — the space's internal storage slot.  The index
    holds no liveness state of its own: the space adds a record when it
    is stored and discards it when it is dropped, and visibility
    filtering (leases, transactions) stays in the space.
    """

    __slots__ = (
        "_linda_arity",
        "_linda_field",
        "_linda_loose",
        "_entry_class",
        "_entry_field",
        "_entry_loose",
        "_opaque",
        "_handles",
    )

    def __init__(self):
        #: arity -> {seq: record}
        self._linda_arity: dict[int, dict] = {}
        #: (arity, position, field value) -> {seq: record}
        self._linda_field: dict[tuple, dict] = {}
        #: (arity, position) -> {seq: record} with unhashable values there
        self._linda_loose: dict[tuple, dict] = {}
        #: Entry subclass -> {seq: record}, one bucket per MRO level
        self._entry_class: dict[type, dict] = {}
        #: (field name, field value) -> {seq: record}
        self._entry_field: dict[tuple, dict] = {}
        #: field name -> {seq: record} with unhashable values for it
        self._entry_loose: dict[str, dict] = {}
        #: neither LindaTuple nor Entry: only the full scan can find these
        self._opaque: dict[int, Any] = {}
        #: seq -> [(bucket, table, key), ...] for O(#buckets) removal
        self._handles: dict[int, list] = {}

    # -- maintenance -------------------------------------------------------

    def add(self, record) -> None:
        """Index one freshly stored record (``record.seq`` must be new
        and larger than every seq indexed before it)."""
        seq = record.seq
        item = record.item
        handles = []
        shaped = False
        if isinstance(item, LindaTuple):
            shaped = True
            arity = item.arity
            self._put(self._linda_arity, arity, seq, record, handles)
            for position, value in enumerate(item.fields):
                try:
                    self._put(
                        self._linda_field, (arity, position, value),
                        seq, record, handles,
                    )
                except TypeError:
                    self._put(
                        self._linda_loose, (arity, position),
                        seq, record, handles,
                    )
        if isinstance(item, Entry):
            shaped = True
            for cls in type(item).__mro__:
                if cls is not object and issubclass(cls, Entry):
                    self._put(self._entry_class, cls, seq, record, handles)
            for name, value in iter_constrained_fields(item):
                try:
                    self._put(
                        self._entry_field, (name, value), seq, record, handles
                    )
                except TypeError:
                    self._put(self._entry_loose, name, seq, record, handles)
        if not shaped:
            self._opaque[seq] = record
            handles.append((self._opaque, None, None))
        self._handles[seq] = handles

    @staticmethod
    def _put(table: dict, key, seq: int, record, handles: list) -> None:
        bucket = table.get(key)
        if bucket is None:
            bucket = table[key] = {}
        bucket[seq] = record
        handles.append((bucket, table, key))

    def discard(self, seq: int) -> None:
        """Forget a record; empty value buckets are reclaimed."""
        for bucket, table, key in self._handles.pop(seq, ()):
            bucket.pop(seq, None)
            if not bucket and table is not None and table.get(key) is bucket:
                del table[key]

    # -- lookup ------------------------------------------------------------

    def candidates(self, template) -> Optional[Iterable]:
        """Records that could match ``template``, oldest first.

        Returns ``None`` when the template's discipline is unknown and
        the caller must scan every record.
        """
        kind = _stock_matches(template)
        if kind == "linda":
            return self._linda_candidates(template)
        if kind == "entry":
            return self._entry_candidates(template)
        return None

    def _linda_candidates(self, template: TupleTemplate) -> Iterable:
        arity = template.arity
        bound = template.first_bound
        if bound is None:
            return self._linda_arity.get(arity, _EMPTY).values()
        position, value = bound
        try:
            exact = self._linda_field.get((arity, position, value))
        except TypeError:
            # Unhashable actual: no equality bucket to consult, but the
            # arity bucket is still a valid (complete) candidate set.
            return self._linda_arity.get(arity, _EMPTY).values()
        return _merged(exact, self._linda_loose.get((arity, position)))

    def _entry_candidates(self, template: Entry) -> Iterable:
        bucket = self._entry_class.get(type(template))
        if not bucket:
            return ()
        for name, value in iter_constrained_fields(template):
            try:
                exact = self._entry_field.get((name, value))
            except TypeError:
                continue  # unhashable constraint: try the next field
            loose = self._entry_loose.get(name)
            narrowed = (len(exact) if exact else 0) + (
                len(loose) if loose else 0
            )
            if narrowed >= len(bucket):
                break  # the class bucket is already the tighter set
            return (
                record
                for record in _merged(exact, loose)
                if record.seq in bucket
            )
        return bucket.values()

    # -- introspection -----------------------------------------------------

    def bucket_count(self) -> int:
        """Live buckets across every table (the obs gauge)."""
        return (
            len(self._linda_arity)
            + len(self._linda_field)
            + len(self._linda_loose)
            + len(self._entry_class)
            + len(self._entry_field)
            + len(self._entry_loose)
            + (1 if self._opaque else 0)
        )

    def stats(self) -> dict:
        """Bucket population summary (tests and debugging)."""
        return {
            "linda_arity": {k: len(v) for k, v in self._linda_arity.items()},
            "linda_field_buckets": len(self._linda_field),
            "linda_loose_buckets": len(self._linda_loose),
            "entry_class": {
                cls.__name__: len(v) for cls, v in self._entry_class.items()
            },
            "entry_field_buckets": len(self._entry_field),
            "entry_loose_buckets": len(self._entry_loose),
            "opaque": len(self._opaque),
        }

    def __len__(self) -> int:
        return len(self._handles)


class TemplateTable:
    """Registration-ordered table of template holders (waiters or
    notify registrations), bucketed by template shape.

    A *holder* is any object with ``template`` and ``active``
    attributes.  ``candidates_for(item)`` returns, in registration
    order, exactly the holders whose template could match ``item`` —
    holders with an unrecognised template discipline are kept in a
    generic bucket that every item is tested against.
    """

    __slots__ = ("_order", "_by_arity", "_by_class", "_generic", "_handles")

    def __init__(self):
        self._order = 0
        #: arity -> {order: holder} (stock TupleTemplate templates)
        self._by_arity: dict[int, dict] = {}
        #: template class -> {order: holder} (stock Entry templates)
        self._by_class: dict[type, dict] = {}
        #: order -> holder (unknown template disciplines)
        self._generic: dict[int, Any] = {}
        #: id(holder) -> (order, bucket, table, key)
        self._handles: dict[int, tuple] = {}

    def add(self, holder) -> None:
        """Register ``holder``; later calls rank later in delivery."""
        self._order += 1
        order = self._order
        template = holder.template
        kind = _stock_matches(template)
        if kind == "linda":
            table, key = self._by_arity, template.arity
        elif kind == "entry":
            table, key = self._by_class, type(template)
        else:
            self._generic[order] = holder
            self._handles[id(holder)] = (order, self._generic, None, None)
            return
        bucket = table.get(key)
        if bucket is None:
            bucket = table[key] = {}
        bucket[order] = holder
        self._handles[id(holder)] = (order, bucket, table, key)

    def discard(self, holder) -> None:
        """Forget ``holder`` (idempotent)."""
        handle = self._handles.pop(id(holder), None)
        if handle is None:
            return
        order, bucket, table, key = handle
        bucket.pop(order, None)
        if not bucket and table is not None and table.get(key) is bucket:
            del table[key]

    def candidates_for(self, item) -> list:
        """Holders whose template could match ``item``, in registration
        order (a materialised snapshot: delivery callbacks may mutate
        the table without disturbing the iteration)."""
        sources = []
        if self._generic:
            sources.append(self._generic)
        if isinstance(item, LindaTuple):
            bucket = self._by_arity.get(item.arity)
            if bucket:
                sources.append(bucket)
        if isinstance(item, Entry):
            for cls in type(item).__mro__:
                bucket = self._by_class.get(cls)
                if bucket:
                    sources.append(bucket)
        if not sources:
            return []
        if len(sources) == 1:
            return list(sources[0].values())
        return [
            holder
            for _order, holder in heapq.merge(
                *(source.items() for source in sources)
            )
        ]

    def _iter_holders(self) -> Iterator:
        yield from self._generic.values()
        for table in (self._by_arity, self._by_class):
            for bucket in table.values():
                yield from bucket.values()

    def prune(self) -> None:
        """Drop every holder whose ``active`` has gone false."""
        dead = [h for h in self._iter_holders() if not h.active]
        for holder in dead:
            self.discard(holder)

    def count_active(self) -> int:
        return sum(1 for holder in self._iter_holders() if holder.active)

    def bucket_count(self) -> int:
        return (
            len(self._by_arity)
            + len(self._by_class)
            + (1 if self._generic else 0)
        )

    def __len__(self) -> int:
        return len(self._handles)
