"""In-process remote method invocation (the Java RMI analog).

Sec. 4.1: clients of the Java prototype reach the SpaceServer through
RMI; after the socket wrapper is introduced, "RMI is still used inside the
server, this time to interface the server with the Java/socket wrapper".

The analog keeps RMI's essential semantics without a JVM:

* a :class:`Registry` binds names to :class:`Skeleton`-wrapped objects;
* :meth:`Registry.lookup` hands out a :class:`RemoteProxy` whose method
  calls are forwarded through the skeleton;
* arguments and results are passed **by value** (deep-copied) when
  ``isolate=True``, reproducing RMI marshalling semantics — mutations on
  one side never leak to the other;
* an optional invocation hook observes every call (used by the
  co-simulation to charge marshalling/dispatch latency).
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Optional

from repro.core.errors import RmiError


class Skeleton:
    """Server-side dispatcher for one remote object."""

    def __init__(self, target: Any, exposed: Optional[list[str]] = None, isolate: bool = False):
        self.target = target
        if exposed is None:
            exposed = [
                name
                for name in dir(target)
                if not name.startswith("_") and callable(getattr(target, name))
            ]
        self.exposed = set(exposed)
        self.isolate = isolate
        self.invocations = 0

    def invoke(self, method: str, args: tuple, kwargs: dict) -> Any:
        if method not in self.exposed:
            raise RmiError(
                f"method {method!r} is not exposed by "
                f"{type(self.target).__name__}"
            )
        self.invocations += 1
        if self.isolate:
            args = copy.deepcopy(args)
            kwargs = copy.deepcopy(kwargs)
        result = getattr(self.target, method)(*args, **kwargs)
        if self.isolate:
            result = copy.deepcopy(result)
        return result


class RemoteProxy:
    """Client-side stub: attribute access yields forwarding callables."""

    def __init__(
        self,
        skeleton: Skeleton,
        name: str,
        call_hook: Optional[Callable[[str, str], None]] = None,
    ):
        # Avoid __setattr__ recursion by writing through __dict__.
        self.__dict__["_skeleton"] = skeleton
        self.__dict__["_name"] = name
        self.__dict__["_call_hook"] = call_hook

    def __getattr__(self, method: str):
        if method.startswith("_"):
            raise AttributeError(method)
        skeleton = self.__dict__["_skeleton"]
        name = self.__dict__["_name"]
        hook = self.__dict__["_call_hook"]

        def invoke(*args, **kwargs):
            if hook is not None:
                hook(name, method)
            return skeleton.invoke(method, args, kwargs)

        invoke.__name__ = method
        return invoke

    def __setattr__(self, key, value):
        raise AttributeError("remote proxies expose methods only")

    def __repr__(self) -> str:
        return f"RemoteProxy({self.__dict__['_name']!r})"


class Registry:
    """Name service binding remote objects (``rmiregistry`` analog)."""

    def __init__(self, call_hook: Optional[Callable[[str, str], None]] = None):
        self._bindings: dict[str, Skeleton] = {}
        self.call_hook = call_hook

    def bind(
        self,
        name: str,
        target: Any,
        exposed: Optional[list[str]] = None,
        isolate: bool = False,
    ) -> Skeleton:
        if name in self._bindings:
            raise RmiError(f"name {name!r} is already bound")
        skeleton = Skeleton(target, exposed, isolate)
        self._bindings[name] = skeleton
        return skeleton

    def rebind(self, name: str, target: Any, **kwargs) -> Skeleton:
        self._bindings.pop(name, None)
        return self.bind(name, target, **kwargs)

    def unbind(self, name: str) -> None:
        if name not in self._bindings:
            raise RmiError(f"name {name!r} is not bound")
        del self._bindings[name]

    def lookup(self, name: str) -> RemoteProxy:
        skeleton = self._bindings.get(name)
        if skeleton is None:
            raise RmiError(f"name {name!r} is not bound")
        return RemoteProxy(skeleton, name, self.call_hook)

    def names(self) -> list[str]:
        return sorted(self._bindings)
