"""Length-prefixed binary body codec (negotiated alternative to XML).

The paper's wire format is XML (Sec. 4.2) and stays the default for
fidelity — every golden trace is byte-identical XML.  At the scale the
ROADMAP targets, though, encoding dominates per-op cost, so a connection
may negotiate this compact binary encoding through the HELLO/HELLO_ACK
exchange of :mod:`repro.core.protocol` (docs/wire.md).  Only the frame
*body* changes; the 11-byte header and the framing rules are shared.

The codec mirrors the XML value model exactly — both decode against the
same :class:`~repro.core.xmlcodec.XmlCodec` entry-class registry, and
every value the XML codec can carry (including the ``pytuple`` kind that
keeps Python tuples distinct from lists) round-trips identically here.

Body layout (big-endian)::

    param_count: varint
    param_count x (key: str, value: str)     -- scalar params, sorted key
    item_flag(1)                             -- 0x00 absent, 0x01 present
    item: value                              -- tagged value (below)

Values are one tag byte plus a tag-specific payload; varints are
unsigned LEB128, ints additionally zigzag-encoded so arbitrary Python
ints survive (matching XML's unbounded decimal literals)::

    0x00 none | 0x01 false | 0x02 true
    0x03 int      zigzag varint
    0x04 float    8-byte IEEE-754 double
    0x05 str      varint byte length + UTF-8
    0x06 bytes    varint length + raw
    0x07 list     varint count + values
    0x08 pytuple  varint count + values
    0x09 dict     varint count + (key str, value), sorted keys
    0x0A tuple    varint count + values          (a LindaTuple)
    0x0B entry    class-name str + varint count + (name str, value)
    0x0C template varint count + patterns
    0x0D any      (template wildcard)
    0x0E formal   type-name str                  (template type pattern)

Decoding is strict: truncated payloads, unknown tags, non-canonical
floats of the wrong width or trailing garbage all raise
:class:`~repro.core.errors.ProtocolError`, never crash or mis-decode.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.core.entry import Entry, entry_fields
from repro.core.errors import ProtocolError
from repro.core.protocol import Message, MessageType
from repro.core.tuples import ANY, LindaTuple, TupleTemplate
from repro.core.xmlcodec import XmlCodec

TAG_NONE = 0x00
TAG_FALSE = 0x01
TAG_TRUE = 0x02
TAG_INT = 0x03
TAG_FLOAT = 0x04
TAG_STR = 0x05
TAG_BYTES = 0x06
TAG_LIST = 0x07
TAG_PYTUPLE = 0x08
TAG_DICT = 0x09
TAG_TUPLE = 0x0A
TAG_ENTRY = 0x0B
TAG_TEMPLATE = 0x0C
TAG_ANY = 0x0D
TAG_FORMAL = 0x0E

_DOUBLE = struct.Struct(">d")

#: Formal (type-pattern) names shared with the XML codec's table.
_FORMAL_TYPES = dict(XmlCodec._FORMAL_TYPES)
_FORMAL_NAMES = {cls: name for name, cls in _FORMAL_TYPES.items()}


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    _write_varint(out, len(raw))
    out += raw


class _Reader:
    """Bounds-checked cursor over one body; all errors are typed."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def read_exact(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise ProtocolError("truncated binary body")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise ProtocolError("truncated binary body")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def varint(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 4096 * 7:
                # Ints are unbounded like XML's decimal literals, but a
                # multi-kilobyte varint is an attack, not a number.
                raise ProtocolError("malformed varint")

    def string(self) -> str:
        raw = self.read_exact(self.varint())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"bad UTF-8 in binary body: {exc}") from exc

    def done(self) -> bool:
        return self.pos == len(self.data)


class BinaryCodec:
    """Encode/decode the XML codec's value model as tagged binary.

    Shares the entry-class registry of the :class:`XmlCodec` it wraps:
    a class registered once decodes on both wire encodings.
    """

    def __init__(self, registry: XmlCodec):
        self.registry = registry

    # -- encoding -----------------------------------------------------------

    def encode(self, item: Any) -> bytes:
        out = bytearray()
        self._write_item(out, item)
        return bytes(out)

    def _write_item(self, out: bytearray, item: Any) -> None:
        if isinstance(item, Entry):
            out.append(TAG_ENTRY)
            _write_str(out, type(item).__name__)
            fields = sorted(entry_fields(item).items())
            _write_varint(out, len(fields))
            for name, value in fields:
                _write_str(out, name)
                self._write_value(out, value)
        elif isinstance(item, LindaTuple):
            out.append(TAG_TUPLE)
            _write_varint(out, len(item.fields))
            for value in item.fields:
                self._write_value(out, value)
        elif isinstance(item, TupleTemplate):
            out.append(TAG_TEMPLATE)
            _write_varint(out, len(item.patterns))
            for pattern in item.patterns:
                self._write_pattern(out, pattern)
        else:
            raise ProtocolError(
                f"cannot encode {type(item).__name__} as a binary item"
            )

    def _write_pattern(self, out: bytearray, pattern: Any) -> None:
        if pattern is ANY:
            out.append(TAG_ANY)
        elif isinstance(pattern, type):
            name = _FORMAL_NAMES.get(pattern, pattern.__name__)
            out.append(TAG_FORMAL)
            _write_str(out, name)
        else:
            self._write_value(out, pattern)

    def _write_value(self, out: bytearray, value: Any) -> None:
        if value is None:
            out.append(TAG_NONE)
        elif isinstance(value, bool):
            out.append(TAG_TRUE if value else TAG_FALSE)
        elif isinstance(value, int):
            out.append(TAG_INT)
            # zigzag: arbitrary-precision ints survive, matching XML's
            # unbounded decimal literals.
            _write_varint(
                out, value << 1 if value >= 0 else ((-value) << 1) - 1
            )
        elif isinstance(value, float):
            out.append(TAG_FLOAT)
            out += _DOUBLE.pack(value)
        elif isinstance(value, str):
            out.append(TAG_STR)
            _write_str(out, value)
        elif isinstance(value, bytes):
            out.append(TAG_BYTES)
            _write_varint(out, len(value))
            out += value
        elif isinstance(value, list):
            out.append(TAG_LIST)
            _write_varint(out, len(value))
            for member in value:
                self._write_value(out, member)
        elif isinstance(value, tuple):
            out.append(TAG_PYTUPLE)
            _write_varint(out, len(value))
            for member in value:
                self._write_value(out, member)
        elif isinstance(value, dict):
            out.append(TAG_DICT)
            _write_varint(out, len(value))
            for key in sorted(value):
                if not isinstance(key, str):
                    raise ProtocolError("dict keys must be strings on the wire")
                _write_str(out, key)
                self._write_value(out, value[key])
        elif isinstance(value, LindaTuple):
            out.append(TAG_TUPLE)
            _write_varint(out, len(value.fields))
            for member in value.fields:
                self._write_value(out, member)
        elif isinstance(value, Entry):
            self._write_item(out, value)
        else:
            raise ProtocolError(
                f"unsupported field type {type(value).__name__} for binary"
            )

    # -- decoding -----------------------------------------------------------

    def decode(self, data: bytes) -> Any:
        reader = _Reader(data)
        item = self._read_value(reader)
        if not reader.done():
            raise ProtocolError("trailing bytes after binary item")
        return item

    def _read_value(self, reader: _Reader) -> Any:
        tag = reader.byte()
        if tag == TAG_NONE:
            return None
        if tag == TAG_FALSE:
            return False
        if tag == TAG_TRUE:
            return True
        if tag == TAG_INT:
            raw = reader.varint()
            return (raw >> 1) ^ -(raw & 1)
        if tag == TAG_FLOAT:
            return _DOUBLE.unpack(reader.read_exact(8))[0]
        if tag == TAG_STR:
            return reader.string()
        if tag == TAG_BYTES:
            return bytes(reader.read_exact(reader.varint()))
        if tag == TAG_LIST:
            return [self._read_value(reader) for _ in range(reader.varint())]
        if tag == TAG_PYTUPLE:
            return tuple(
                self._read_value(reader) for _ in range(reader.varint())
            )
        if tag == TAG_DICT:
            members = {}
            for _ in range(reader.varint()):
                key = reader.string()
                members[key] = self._read_value(reader)
            return members
        if tag == TAG_TUPLE:
            return LindaTuple(
                *[self._read_value(reader) for _ in range(reader.varint())]
            )
        if tag == TAG_ENTRY:
            return self._read_entry(reader)
        if tag == TAG_TEMPLATE:
            return TupleTemplate(
                *[self._read_pattern(reader) for _ in range(reader.varint())]
            )
        if tag in (TAG_ANY, TAG_FORMAL):
            raise ProtocolError("pattern tag outside a template")
        raise ProtocolError(f"unknown binary tag {tag:#04x}")

    def _read_entry(self, reader: _Reader) -> Entry:
        class_name = reader.string()
        entry_class = self.registry.resolve_class(class_name)
        fields = {}
        for _ in range(reader.varint()):
            name = reader.string()
            fields[name] = self._read_value(reader)
        try:
            return entry_class(**fields)
        except TypeError as exc:
            raise ProtocolError(
                f"cannot construct {class_name}(**{sorted(fields)}): {exc}"
            ) from exc

    def _read_pattern(self, reader: _Reader) -> Any:
        tag = reader.data[reader.pos] if reader.pos < len(reader.data) else None
        if tag == TAG_ANY:
            reader.byte()
            return ANY
        if tag == TAG_FORMAL:
            reader.byte()
            name = reader.string()
            formal = _FORMAL_TYPES.get(name)
            if formal is None:
                raise ProtocolError(f"unknown formal type {name!r}")
            return formal
        return self._read_value(reader)


class BinaryWireCodec:
    """Binary *body* encoding of whole protocol messages.

    Plugs into :class:`~repro.core.protocol.StreamParser` and
    :func:`~repro.core.protocol.encode_message` wherever the XML wire
    codec does; selected per-connection by the HELLO exchange.
    """

    name = "binary"

    def __init__(self, registry: XmlCodec):
        self.registry = registry
        self.values = BinaryCodec(registry)

    def encode_body(self, message: Message) -> bytes:
        if not message.params and message.item is None:
            return b""
        out = bytearray()
        params = sorted(message.params.items())
        _write_varint(out, len(params))
        for key, value in params:
            _write_str(out, key)
            _write_str(out, str(value))
        if message.item is None:
            out.append(0x00)
        else:
            out.append(0x01)
            self.values._write_item(out, message.item)
        return bytes(out)

    def decode_body(
        self, msg_type: MessageType, request_id: int, body: bytes
    ) -> Message:
        if not body:
            return Message(msg_type, request_id)
        reader = _Reader(body)
        params = {}
        for _ in range(reader.varint()):
            key = reader.string()
            params[key] = reader.string()
        flag = reader.byte()
        if flag not in (0x00, 0x01):
            raise ProtocolError(f"bad item flag {flag:#04x}")
        item = None
        if flag:
            item = self.values._read_value(reader)
        if not reader.done():
            raise ProtocolError("trailing bytes after binary message body")
        return Message(msg_type, request_id, params, item)


__all__ = ["BinaryCodec", "BinaryWireCodec"]
