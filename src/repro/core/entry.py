"""JavaSpaces-style entries.

Sec. 4.1: "a JavaSpaces server holds entries.  Technically, an entry is a
typed group of objects, expressed as a class that implements the Entry
interface."  Matching follows the JavaSpaces rules: a template entry
matches a stored entry when the stored entry's class is the template's
class (or a subclass) and every non-``None`` field of the template equals
the stored entry's field; ``None`` fields are wildcards.

Define entries as plain classes with keyword fields::

    class SensorReading(Entry):
        def __init__(self, sensor_id=None, value=None, tick=None):
            self.sensor_id = sensor_id
            self.value = value
            self.tick = tick

    space.write(SensorReading("t1", 20.5, 7), lease=60.0)
    hot = space.take(SensorReading(sensor_id="t1"))   # value/tick wildcards
"""

from __future__ import annotations

from typing import Any, Optional


class Entry:
    """Base class of everything stored in a space.

    An :class:`Entry` doubles as its own template: any instance with some
    fields left ``None`` matches entries of its class (and subclasses)
    agreeing on the non-``None`` fields.
    """

    def matches(self, item: Any) -> bool:
        """JavaSpaces template matching with ``self`` as the template."""
        if not isinstance(item, type(self)):
            return False
        item_fields = entry_fields(item)
        for name, value in entry_fields(self).items():
            if value is None:
                continue
            if name not in item_fields or item_fields[name] != value:
                return False
        return True

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and entry_fields(self) == entry_fields(other)

    # Entries are mutable records, not dictionary keys.
    __hash__ = None

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{k}={v!r}" for k, v in sorted(entry_fields(self).items())
        )
        return f"{type(self).__name__}({inner})"


def entry_fields(entry: Entry) -> dict[str, Any]:
    """Public fields of an entry: instance attributes not starting with _."""
    return {
        name: value
        for name, value in vars(entry).items()
        if not name.startswith("_")
    }


def iter_constrained_fields(entry: Entry):
    """Yield the ``(name, value)`` pairs a template actually constrains.

    For a stored entry this is every public field with a value; for a
    template it is the non-``None`` (non-wildcard) fields, in the
    deterministic order the instance assigned them — the matching
    engine's per-field equality index keys off exactly these pairs.
    """
    for name, value in vars(entry).items():
        if value is not None and not name.startswith("_"):
            yield name, value


def make_template(entry_class: type, **fields) -> Entry:
    """Build a template of ``entry_class`` with only ``fields`` constrained.

    Works for entry classes whose ``__init__`` accepts the field names as
    keyword arguments (the conventional JavaSpaces no-arg-friendly shape).
    """
    if not issubclass(entry_class, Entry):
        raise TypeError(f"{entry_class!r} is not an Entry subclass")
    template = entry_class(**fields)
    return template
