"""Asyncio wire front-end: one event loop serving thousands of clients.

The paper's socket wrapper (Sec. 4.2) is reproduced faithfully by the
thread-per-connection :class:`~repro.core.transports.SocketSpaceServer`;
this module is the scale-out front end the ROADMAP asks for on top of
the same :class:`~repro.core.server.SpaceServer` — the space engine
stays single-threaded, the loop multiplexes connections around it:

* **single-writer send path per connection** — responses, notify events
  and timer-driven timeouts all append to one per-connection outbox
  drained by one writer task, so frames never interleave;
* **backpressure** — a connection whose outbox passes the high-water
  mark stops having its requests read until the writer drains below the
  resume mark (TCP pushes back on the client); a consumer so slow the
  hard cap is passed is closed and counted, never buffered unboundedly;
* **request pipelining/batching** — every frame completed by one socket
  read is dispatched back-to-back before the next read, and the outbox
  is flushed once per batch;
* **codec negotiation** — the HELLO/HELLO_ACK exchange of
  :mod:`repro.core.protocol` switches a connection from XML to the
  binary body codec; clients that never send HELLO speak the historical
  XML protocol unchanged;
* **graceful shutdown and a health/stats endpoint** — ``stop()`` parks
  no request forever (waiters are reaped through ``session_closed``),
  and a tiny HTTP listener answers ``/health`` and ``/stats`` for
  supervisors, modelled on gateway-daemon layouts.

Timer callbacks run on the loop via :class:`LoopTimers`, so — like the
simulated stack — *everything* touching the space runs on one thread
and no locks are needed.  See docs/wire.md for the full protocol story.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Optional

from repro.core.errors import (
    ConnectionClosedError,
    ProtocolError,
    RequestTimeoutError,
    SpaceError,
)
from repro.core.protocol import (
    REQUEST_ID_MODULUS,
    Message,
    MessageType,
    StreamParser,
    encode_message,
    make_wire_codec,
    negotiate_codec,
)
from repro.core.server import SpaceServer, Timers
from repro.core.xmlcodec import XmlCodec

#: Outbox byte thresholds: pause reading a connection above ``HIGH_WATER``,
#: resume below ``RESUME``, close a slow consumer above ``LIMIT``.
HIGH_WATER = 64 * 1024
RESUME = 16 * 1024
LIMIT = 4 * 1024 * 1024


class LoopTimers(Timers):
    """Blocking-request timeouts on the event loop (``loop.call_later``).

    The returned ``TimerHandle`` exposes ``cancel()`` — exactly the
    :class:`~repro.core.server.Timers` handle protocol — and the
    callback runs on the loop thread, serialised with request dispatch.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop

    def call_later(self, delay: float, fn) -> asyncio.TimerHandle:
        return self._loop.call_later(delay, fn)


class _AsyncConnection:
    """One client connection: parser, outbox, reader + writer tasks.

    Duck-typed over ``(reader, writer)`` so the same machinery serves
    real TCP streams and the in-loop :func:`memory_pipe` endpoints the
    concurrency benchmark multiplexes by the thousands.

    This object is also the *session* handed to ``SpaceServer.handle``:
    ``send`` encodes with the connection's negotiated codec and appends
    to the outbox.
    """

    def __init__(self, front, reader, writer):
        self.front = front
        self.reader = reader
        self.writer = writer
        self.registry: XmlCodec = front.server.codec
        self.wire = make_wire_codec("xml", self.registry)
        self.parser = StreamParser(self.registry)
        self._outbox = bytearray()
        self._loop = front._loop
        self._send_waiter: Optional[asyncio.Future] = None
        self._resume_waiter: Optional[asyncio.Future] = None
        self._eof = False
        self._closed = False
        self._writer_task: Optional[asyncio.Task] = None
        self._reader_task: Optional[asyncio.Task] = None

    # -- session protocol (called by SpaceServer and timer callbacks) -------

    def send(self, message: Message) -> None:
        if self._closed:
            return
        self.enqueue(encode_message(message, self.wire))

    def enqueue(self, data: bytes) -> None:
        self._outbox += data
        if len(self._outbox) > self.front.limit_bytes:
            # Slow consumer: notify events kept arriving while the peer
            # stopped draining.  Dropping the connection bounds memory;
            # buffering forever would not.
            self.front.slow_consumer_closes += 1
            self._begin_close()
            return
        waiter = self._send_waiter
        if waiter is not None and not waiter.done():
            waiter.set_result(None)

    # -- tasks ---------------------------------------------------------------

    async def run(self) -> None:
        """Read/dispatch until EOF or close, then flush and tear down."""
        self._writer_task = self._loop.create_task(self._write_loop())
        self._reader_task = self._loop.create_task(self._read_loop())
        try:
            # _begin_close (shutdown, slow-consumer cap) cancels the
            # reader task, so a read parked on an idle socket never
            # wedges teardown.
            await self._reader_task
        except asyncio.CancelledError:
            pass
        finally:
            self._begin_close()
            try:
                await asyncio.wait_for(
                    self._writer_task, self.front.drain_grace
                )
            except (asyncio.TimeoutError, asyncio.CancelledError, OSError):
                self._writer_task.cancel()
            self.front._connection_done(self)

    async def _read_loop(self) -> None:
        while not self._eof:
            try:
                data = await self.reader.read(65536)
            except (OSError, ConnectionError, asyncio.IncompleteReadError):
                return
            if not data:
                return
            self.front.bytes_in += len(data)
            try:
                messages = self.parser.feed(data)
            except ProtocolError as exc:
                # Same contract as the threaded server: a malformed
                # frame answers ERROR when a request id is recoverable,
                # then the connection closes cleanly.
                self.front.protocol_errors += 1
                request_id = self.parser.error_request_id
                if request_id is not None:
                    self.send(Message(
                        MessageType.ERROR, request_id, {"text": str(exc)}
                    ))
                return
            for message in messages:
                self._dispatch(message)
                if self._eof:
                    return
            if len(self._outbox) > self.front.high_water:
                # Backpressure: stop reading this connection's requests
                # until the writer drains its responses.
                self.front.backpressure_pauses += 1
                self._resume_waiter = self._loop.create_future()
                await self._resume_waiter

    def _dispatch(self, message: Message) -> None:
        self.front.requests += 1
        if message.msg_type is MessageType.HELLO:
            chosen = negotiate_codec(message.params.get("codecs", "")) or "xml"
            self.send(Message(
                MessageType.HELLO_ACK, message.request_id, {"codec": chosen}
            ))
            wire = make_wire_codec(chosen, self.registry)
            self.parser.set_codec(wire)
            self.wire = wire
            self.front.negotiated[chosen] = (
                self.front.negotiated.get(chosen, 0) + 1
            )
            return
        if message.msg_type is MessageType.STATS:
            self.send(Message(
                MessageType.STATS_ACK, message.request_id, self.front.stats()
            ))
            return
        self.front.server.handle(self, message)

    async def _write_loop(self) -> None:
        writer = self.writer
        try:
            while True:
                if not self._outbox:
                    if self._eof:
                        return
                    self._send_waiter = self._loop.create_future()
                    await self._send_waiter
                    continue
                chunk = bytes(self._outbox)
                del self._outbox[: len(chunk)]
                writer.write(chunk)
                await writer.drain()
                self.front.bytes_out += len(chunk)
                resume = self._resume_waiter
                if (
                    resume is not None
                    and not resume.done()
                    and len(self._outbox) <= self.front.resume_bytes
                ):
                    resume.set_result(None)
        except (OSError, ConnectionError):
            return

    # -- teardown ------------------------------------------------------------

    def _begin_close(self) -> None:
        """Stop reading, let the writer flush what is queued, then die."""
        if self._closed:
            return
        self._closed = True
        self._eof = True
        for waiter in (self._send_waiter, self._resume_waiter):
            if waiter is not None and not waiter.done():
                waiter.set_result(None)
        reader_task = self._reader_task
        if reader_task is not None and not reader_task.done():
            reader_task.cancel()
        # Reap parked blocking requests: a dead connection's TAKE must
        # never consume a tuple into the void.
        self.front.server.session_closed(self)


class AsyncSpaceServer:
    """Asyncio front end over a :class:`SpaceServer` (ROADMAP item 2).

    Usage::

        front = AsyncSpaceServer(space_server, port=0)
        await front.start()
        ...                       # front.address is the bound (host, port)
        await front.stop()

    ``health_port`` additionally binds a minimal HTTP listener answering
    ``GET /health`` and ``GET /stats`` with JSON, so a supervisor can
    probe the daemon without speaking the space protocol.
    """

    def __init__(
        self,
        server: SpaceServer,
        host: str = "127.0.0.1",
        port: int = 0,
        health_port: Optional[int] = None,
        high_water: int = HIGH_WATER,
        resume_bytes: int = RESUME,
        limit_bytes: int = LIMIT,
        drain_grace: float = 2.0,
    ):
        self.server = server
        self.host = host
        self.port = port
        self.health_port = health_port
        self.high_water = high_water
        self.resume_bytes = resume_bytes
        self.limit_bytes = limit_bytes
        self.drain_grace = drain_grace
        self.address = None
        self.health_address = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._listener: Optional[asyncio.AbstractServer] = None
        self._health_listener: Optional[asyncio.AbstractServer] = None
        self._connections: dict[int, _AsyncConnection] = {}
        self._conn_tasks: dict[int, asyncio.Task] = {}
        self._stopping = False
        # -- counters surfaced by /stats and the STATS message
        self.connections_total = 0
        self.requests = 0
        self.protocol_errors = 0
        self.slow_consumer_closes = 0
        self.backpressure_pauses = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.negotiated: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "AsyncSpaceServer":
        self._loop = asyncio.get_running_loop()
        # All dispatch and every timeout callback runs on this loop —
        # the single-threaded-engine invariant, without locks.
        self.server.timers = LoopTimers(self._loop)
        self._listener = await asyncio.start_server(
            self._client_connected, self.host, self.port
        )
        self.address = self._listener.sockets[0].getsockname()
        if self.health_port is not None:
            self._health_listener = await asyncio.start_server(
                self._health_connected, self.host, self.health_port
            )
            self.health_address = self._health_listener.sockets[0].getsockname()
        return self

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, flush and close every
        connection (reaping its parked waiters), release the ports."""
        self._stopping = True
        for listener in (self._listener, self._health_listener):
            if listener is not None:
                listener.close()
        for conn in list(self._connections.values()):
            conn._begin_close()
        tasks = list(self._conn_tasks.values())
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for listener in (self._listener, self._health_listener):
            if listener is not None:
                await listener.wait_closed()

    async def __aenter__(self) -> "AsyncSpaceServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- connections ---------------------------------------------------------

    def _client_connected(self, reader, writer) -> None:
        if self._stopping:
            writer.close()
            return
        self._track(_AsyncConnection(self, reader, writer))

    def open_local(self):
        """In-loop loopback connect: no socket, no file descriptor.

        Returns a ``(reader, writer)`` pair speaking to a fresh server
        connection — what the 10k-client concurrency benchmark uses to
        go beyond the process fd limit.  Must run inside the loop that
        :meth:`start` ran on (or pass the pair to
        :class:`AsyncSpaceClient` in the same loop).
        """
        client_reader, server_writer = memory_pipe(self._loop)
        server_reader, client_writer = memory_pipe(self._loop)
        self._track(_AsyncConnection(self, server_reader, server_writer))
        return client_reader, client_writer

    def _track(self, conn: _AsyncConnection) -> None:
        self.connections_total += 1
        self._connections[id(conn)] = conn
        self._conn_tasks[id(conn)] = self._loop.create_task(conn.run())

    def _connection_done(self, conn: _AsyncConnection) -> None:
        self._connections.pop(id(conn), None)
        self._conn_tasks.pop(id(conn), None)
        try:
            conn.writer.close()
        except (OSError, RuntimeError):
            pass

    @property
    def connections_open(self) -> int:
        return len(self._connections)

    # -- stats / health ------------------------------------------------------

    def stats(self) -> dict:
        """Flat scalar counters (STATS message params / ``/stats`` JSON)."""
        return {
            "connections_open": self.connections_open,
            "connections_total": self.connections_total,
            "requests": self.requests,
            "requests_handled": self.server.requests_handled,
            "errors_sent": self.server.errors_sent,
            "waiters_reaped": self.server.waiters_reaped,
            "protocol_errors": self.protocol_errors,
            "slow_consumer_closes": self.slow_consumer_closes,
            "backpressure_pauses": self.backpressure_pauses,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "negotiated_binary": self.negotiated.get("binary", 0),
            "negotiated_xml": self.negotiated.get("xml", 0),
        }

    async def _health_connected(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) > 1 else "/"
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if path == "/health":
                status, payload = "200 OK", {"status": "ok"}
            elif path == "/stats":
                status, payload = "200 OK", self.stats()
            else:
                status, payload = "404 Not Found", {"error": "not found"}
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            writer.write(
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n".encode("latin-1") + body
            )
            await writer.drain()
        except (OSError, ConnectionError):
            pass
        finally:
            try:
                writer.close()
            except (OSError, RuntimeError):
                pass


class AsyncSpaceClient:
    """Pipelined asyncio client: many requests in flight per connection.

    Unlike the strictly-sequential :class:`~repro.core.client.SpaceClient`
    (the paper's embedded client), this one multiplexes: each request
    gets a future keyed by its (wrap-safe) id, and one reader task
    resolves them as responses arrive, dispatching interleaved
    ``NOTIFY_EVENT`` messages to registered callbacks on the way.
    """

    def __init__(
        self,
        reader,
        writer,
        codec: XmlCodec,
        request_timeout: Optional[float] = None,
    ):
        self.reader = reader
        self.writer = writer
        self.codec = codec
        self.request_timeout = request_timeout
        self.wire_codec = "xml"
        self._wire = make_wire_codec("xml", codec)
        self._parser = StreamParser(codec)
        self._loop = asyncio.get_running_loop()
        self._pending: dict[int, asyncio.Future] = {}
        self._notify_handlers: dict[int, Callable] = {}
        self._next_request_id = 0
        self._closed = False
        self.requests_sent = 0
        self.events_received = 0
        self.stale_responses = 0
        self._reader_task = self._loop.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        address,
        codec: XmlCodec,
        codecs: Optional[str] = "binary,xml",
        request_timeout: Optional[float] = None,
    ) -> "AsyncSpaceClient":
        """Open a TCP connection; negotiate unless ``codecs`` is None."""
        host, port = address
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, codec, request_timeout=request_timeout)
        if codecs is not None:
            await client.negotiate(codecs)
        return client

    # -- space operations ----------------------------------------------------

    async def negotiate(self, codecs: str = "binary,xml") -> str:
        """The HELLO exchange (``SpaceClient.hello``'s async counterpart)."""
        reply = await self._request(MessageType.HELLO, {"codecs": codecs})
        self._expect(reply, MessageType.HELLO_ACK)
        chosen = reply.params.get("codec", "xml")
        if chosen != self.wire_codec:
            self._wire = make_wire_codec(chosen, self.codec)
            self._parser.set_codec(self._wire)
            self.wire_codec = chosen
        return chosen

    async def write(
        self,
        entry: Any,
        lease: Optional[float] = None,
        created_at: Optional[float] = None,
        op_key: Optional[str] = None,
    ) -> dict:
        params = {}
        if lease is not None:
            params["lease"] = lease
        if created_at is not None:
            params["created_at"] = created_at
        if op_key is not None:
            params["op_key"] = op_key
        reply = await self._request(MessageType.WRITE, params, entry)
        self._expect(reply, MessageType.WRITE_ACK)
        return {
            "lease_id": reply.param_int("lease_id"),
            "granted": reply.param_float("granted"),
            "dup": bool(reply.param_int("dup")),
        }

    async def read(self, template: Any, timeout: Optional[float] = None):
        return await self._blocking(MessageType.READ, template, timeout)

    async def take(self, template: Any, timeout: Optional[float] = None):
        return await self._blocking(MessageType.TAKE, template, timeout)

    async def read_if_exists(self, template: Any):
        reply = await self._request(MessageType.READ_IF_EXISTS, {}, template)
        return self._result(reply)

    async def take_if_exists(self, template: Any):
        reply = await self._request(MessageType.TAKE_IF_EXISTS, {}, template)
        return self._result(reply)

    async def notify(
        self,
        template: Any,
        callback: Callable[[Message], None],
        lease: Optional[float] = None,
    ) -> dict:
        params = {} if lease is None else {"lease": lease}
        reply = await self._request(MessageType.NOTIFY_REGISTER, params, template)
        self._expect(reply, MessageType.NOTIFY_ACK)
        registration_id = reply.param_int("registration_id")
        self._notify_handlers[registration_id] = callback
        return {
            "registration_id": registration_id,
            "lease_id": reply.param_int("lease_id"),
        }

    async def cancel_lease(self, lease_id: int) -> None:
        reply = await self._request(
            MessageType.CANCEL_LEASE, {"lease_id": lease_id}
        )
        self._expect(reply, MessageType.LEASE_ACK)

    async def renew_lease(self, lease_id: int, duration: float) -> float:
        reply = await self._request(
            MessageType.RENEW_LEASE,
            {"lease_id": lease_id, "duration": duration},
        )
        self._expect(reply, MessageType.LEASE_ACK)
        return reply.param_float("remaining")

    async def ping(self) -> bool:
        reply = await self._request(MessageType.PING, {})
        return reply.msg_type is MessageType.PONG

    async def stats(self) -> dict:
        reply = await self._request(MessageType.STATS, {})
        self._expect(reply, MessageType.STATS_ACK)
        return dict(reply.params)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        self._fail_pending(ConnectionClosedError("client closed"))
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (OSError, ConnectionError, RuntimeError):
            pass

    # -- plumbing ------------------------------------------------------------

    async def _blocking(self, msg_type, template, timeout):
        params = {} if timeout is None else {"timeout": timeout}
        reply = await self._request(msg_type, params, template)
        return self._result(reply)

    def _result(self, reply: Message):
        if reply.msg_type is MessageType.RESULT_NULL:
            return None
        self._expect(reply, MessageType.RESULT_ENTRY)
        return reply.item

    async def _request(self, msg_type, params: dict, item: Any = None) -> Message:
        if self._closed:
            raise ConnectionClosedError("client is closed")
        self._next_request_id = (
            self._next_request_id + 1
        ) % REQUEST_ID_MODULUS or 1
        request_id = self._next_request_id
        future = self._loop.create_future()
        self._pending[request_id] = future
        message = Message(msg_type, request_id, params, item)
        try:
            self.writer.write(encode_message(message, self._wire))
            await self.writer.drain()
        except (OSError, ConnectionError):
            self._pending.pop(request_id, None)
            raise ConnectionClosedError("connection closed mid-request")
        self.requests_sent += 1
        try:
            if self.request_timeout is None:
                return await future
            try:
                return await asyncio.wait_for(future, self.request_timeout)
            except asyncio.TimeoutError:
                # Same contract as the sync client; the response, if it
                # ever arrives, is counted stale by the reader task.
                raise RequestTimeoutError(
                    f"no response to request {request_id} within "
                    f"{self.request_timeout}s"
                )
        finally:
            self._pending.pop(request_id, None)

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self.reader.read(65536)
                if not data:
                    self._fail_pending(
                        ConnectionClosedError("connection closed mid-request")
                    )
                    return
                for message in self._parser.feed(data):
                    self._deliver(message)
        except (OSError, ConnectionError, asyncio.CancelledError):
            self._fail_pending(
                ConnectionClosedError("connection closed mid-request")
            )

    def _deliver(self, message: Message) -> None:
        if message.msg_type is MessageType.NOTIFY_EVENT:
            self.events_received += 1
            handler = self._notify_handlers.get(
                message.param_int("registration_id")
            )
            if handler is not None:
                handler(message)
            return
        future = self._pending.get(message.request_id)
        if future is None or future.done():
            if message.msg_type is MessageType.ERROR and message.request_id == 0:
                self._fail_pending(
                    SpaceError(message.params.get("text", "server error"))
                )
            else:
                self.stale_responses += 1
            return
        if message.msg_type is MessageType.ERROR:
            future.set_exception(
                SpaceError(message.params.get("text", "server error"))
            )
        else:
            future.set_result(message)

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    def _expect(self, reply: Message, expected: MessageType) -> None:
        if reply.msg_type is not expected:
            raise ProtocolError(
                f"expected {expected.name}, got {reply.msg_type.name}"
            )


# -- in-loop byte pipes ------------------------------------------------------


class _MemoryReader:
    """Reader half of :func:`memory_pipe` (``await read(n)``)."""

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self._buffer = bytearray()
        self._eof = False
        self._waiter: Optional[asyncio.Future] = None

    def _feed(self, data: bytes) -> None:
        self._buffer += data
        waiter = self._waiter
        if waiter is not None and not waiter.done():
            waiter.set_result(None)

    def _feed_eof(self) -> None:
        self._eof = True
        waiter = self._waiter
        if waiter is not None and not waiter.done():
            waiter.set_result(None)

    async def read(self, max_bytes: int = 65536) -> bytes:
        while not self._buffer:
            if self._eof:
                return b""
            self._waiter = self._loop.create_future()
            await self._waiter
        chunk = bytes(self._buffer[:max_bytes])
        del self._buffer[: len(chunk)]
        return chunk


class _MemoryWriter:
    """Writer half: quacks like ``asyncio.StreamWriter`` where needed."""

    def __init__(self, peer: _MemoryReader):
        self._peer = peer
        self._closed = False

    def write(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionClosedError("memory pipe closed")
        self._peer._feed(data)

    async def drain(self) -> None:
        return None

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._peer._feed_eof()

    async def wait_closed(self) -> None:
        return None

    def is_closing(self) -> bool:
        return self._closed


def memory_pipe(loop: asyncio.AbstractEventLoop):
    """One-directional in-loop byte pipe: ``(reader, writer)``.

    No socket, no fd — which is what lets the concurrency benchmark run
    10k+ simulated client connections in one process.
    """
    reader = _MemoryReader(loop)
    return reader, _MemoryWriter(reader)


__all__ = [
    "AsyncSpaceServer",
    "AsyncSpaceClient",
    "LoopTimers",
    "memory_pipe",
]
