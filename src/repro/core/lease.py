"""Leases on entries and registrations (JavaSpaces lease model).

Every entry written to a space gets a lease; when the lease expires the
entry vanishes.  Table 4 of the paper is built on exactly this mechanism:
the client's ``take`` succeeds "only if the entry lifetime is not
out-of-date" under a 160 s lease.

Leases can be renewed and cancelled.  ``FOREVER`` requests an unlimited
lease; the space may cap it (``max_lease``).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.core.clock import Clock
from repro.core.errors import LeaseDeniedError, LeaseExpiredError

#: Requested duration meaning "never expire".
FOREVER = math.inf


class Lease:
    """A grant of storage (or registration) for a bounded duration.

    ``max_duration`` is the granting space's policy cap: renewals are
    clamped to it exactly like the original grant, so a client cannot
    renew its way past what :meth:`LeaseManager.grant` enforced.
    """

    def __init__(
        self,
        clock: Clock,
        duration: float,
        on_cancel: Optional[Callable[["Lease"], None]] = None,
        max_duration: float = FOREVER,
        on_renew: Optional[Callable[["Lease"], None]] = None,
    ):
        if duration <= 0:
            raise LeaseDeniedError(f"lease duration must be positive, got {duration}")
        self.clock = clock
        self.granted_at = clock.now()
        self.expires_at = self.granted_at + duration
        self.max_duration = max_duration
        self._on_cancel = on_cancel
        self._on_renew = on_renew
        self.cancelled = False

    @property
    def duration(self) -> float:
        return self.expires_at - self.granted_at

    def remaining(self) -> float:
        """Seconds left (0 when expired or cancelled)."""
        if self.cancelled:
            return 0.0
        return max(0.0, self.expires_at - self.clock.now())

    @property
    def expired(self) -> bool:
        return self.cancelled or self.clock.now() >= self.expires_at

    def renew(self, duration: float) -> float:
        """Extend the lease to ``duration`` from now; returns the
        granted duration (clamped to the grantor's ``max_duration``).

        The grant window restarts at the renewal instant, so
        :attr:`duration` reports the renewed term, not the total
        lifetime accumulated across renewals.
        """
        if self.expired:
            raise LeaseExpiredError("cannot renew an expired lease")
        if duration <= 0:
            raise LeaseDeniedError(f"renewal duration must be positive, got {duration}")
        granted = min(duration, self.max_duration)
        self.granted_at = self.clock.now()
        self.expires_at = self.granted_at + granted
        if self._on_renew is not None:
            self._on_renew(self)
        return granted

    def cancel(self) -> None:
        """Give the grant back early."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel(self)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else (
            "expired" if self.expired else f"{self.remaining():.3f}s left"
        )
        return f"Lease({state})"


class LeaseManager:
    """Grants leases, applying the space's duration policy."""

    def __init__(self, clock: Clock, max_lease: float = FOREVER, default_lease: float = FOREVER):
        if max_lease <= 0 or default_lease <= 0:
            raise LeaseDeniedError("lease bounds must be positive")
        self.clock = clock
        self.max_lease = max_lease
        self.default_lease = default_lease

    def grant(
        self,
        duration: Optional[float] = None,
        on_cancel: Optional[Callable[[Lease], None]] = None,
        on_renew: Optional[Callable[[Lease], None]] = None,
    ) -> Lease:
        """Grant a lease of ``duration`` (clamped to the space maximum).

        The cap travels with the lease: renewals clamp against the same
        ``max_lease`` this grant applied.
        """
        requested = self.default_lease if duration is None else duration
        if requested <= 0:
            raise LeaseDeniedError(f"lease duration must be positive, got {requested}")
        granted = min(requested, self.max_lease)
        return Lease(
            self.clock,
            granted,
            on_cancel=on_cancel,
            max_duration=self.max_lease,
            on_renew=on_renew,
        )
