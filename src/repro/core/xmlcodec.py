"""XML encoding of entries and tuples (XML-Tuples, ref. [8] of the paper).

Sec. 4.2: "Using sockets, communication between the client and the
SpaceServer relies on TCP-IP for information exchange and in particular,
XML is used to represent data entries."

The encoded size matters: it is the number of bytes that crosses the
TpWIRE bus per operation, which is what Table 4 measures.  The codec is
therefore a real, reversible XML serialisation, not a stub.

Format::

    <entry class="SensorReading">
      <field name="sensor_id" type="str">t1</field>
      <field name="value" type="float">20.5</field>
      <field name="tick" type="none"/>
    </entry>

    <tuple>
      <field type="str">fft-request</field>
      <field type="list">...</field>
    </tuple>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Optional

from repro.core.entry import Entry, entry_fields
from repro.core.errors import ProtocolError
from repro.core.tuples import ANY, LindaTuple, TupleTemplate


class XmlCodec:
    """Encode/decode entries, tuples and templates to XML bytes.

    Decoding entries needs the entry classes; register them up front::

        codec = XmlCodec()
        codec.register(SensorReading)
    """

    def __init__(self):
        self._classes: dict[str, type] = {}

    def register(self, entry_class: type) -> type:
        """Register an Entry subclass for decoding (usable as decorator)."""
        if not (isinstance(entry_class, type) and issubclass(entry_class, Entry)):
            raise ProtocolError(f"{entry_class!r} is not an Entry subclass")
        self._classes[entry_class.__name__] = entry_class
        return entry_class

    def known_classes(self) -> list[str]:
        return sorted(self._classes)

    def resolve_class(self, name: str) -> type:
        """Registered Entry class for ``name`` (shared with the binary
        codec, which decodes against the same value model/registry)."""
        entry_class = self._classes.get(name)
        if entry_class is None:
            raise ProtocolError(f"unregistered entry class {name!r}")
        return entry_class

    # -- encoding -----------------------------------------------------------

    def encode(self, item: Any) -> bytes:
        """Serialise an entry, tuple or template to UTF-8 XML bytes."""
        return ET.tostring(self.to_element(item), encoding="utf-8")

    def to_element(self, item: Any) -> ET.Element:
        if isinstance(item, Entry):
            element = ET.Element("entry", {"class": type(item).__name__})
            for name, value in sorted(entry_fields(item).items()):
                element.append(self._field_element(value, name=name))
            return element
        if isinstance(item, LindaTuple):
            element = ET.Element("tuple")
            for value in item.fields:
                element.append(self._field_element(value))
            return element
        if isinstance(item, TupleTemplate):
            element = ET.Element("template")
            for pattern in item.patterns:
                element.append(self._pattern_element(pattern))
            return element
        raise ProtocolError(f"cannot encode {type(item).__name__} as XML")

    def _field_element(self, value: Any, name: Optional[str] = None) -> ET.Element:
        attrs = {} if name is None else {"name": name}
        element = ET.Element("field", attrs)
        self._write_value(element, value)
        return element

    def _pattern_element(self, pattern: Any) -> ET.Element:
        element = ET.Element("field")
        if pattern is ANY:
            element.set("type", "any")
        elif isinstance(pattern, type):
            element.set("type", "formal")
            element.text = pattern.__name__
        else:
            self._write_value(element, pattern)
        return element

    def _write_value(self, element: ET.Element, value: Any) -> None:
        if value is None:
            element.set("type", "none")
        elif isinstance(value, bool):
            element.set("type", "bool")
            element.text = "true" if value else "false"
        elif isinstance(value, int):
            element.set("type", "int")
            element.text = str(value)
        elif isinstance(value, float):
            element.set("type", "float")
            element.text = repr(value)
        elif isinstance(value, str):
            element.set("type", "str")
            element.text = value
        elif isinstance(value, bytes):
            element.set("type", "bytes")
            element.text = value.hex()
        elif isinstance(value, list):
            element.set("type", "list")
            for member in value:
                element.append(self._field_element(member))
        elif isinstance(value, tuple):
            # A distinct tag: encoding tuples as "list" made
            # ``LindaTuple("k", (1, 2))`` round-trip to a list field and
            # stop equality-matching its own template over the wire.
            element.set("type", "pytuple")
            for member in value:
                element.append(self._field_element(member))
        elif isinstance(value, dict):
            element.set("type", "dict")
            for key in sorted(value):
                if not isinstance(key, str):
                    raise ProtocolError("dict keys must be strings for XML")
                element.append(self._field_element(value[key], name=key))
        elif isinstance(value, LindaTuple):
            element.set("type", "tuple")
            for member in value.fields:
                element.append(self._field_element(member))
        elif isinstance(value, Entry):
            element.set("type", "entry")
            element.append(self.to_element(value))
        else:
            raise ProtocolError(
                f"unsupported field type {type(value).__name__} for XML"
            )

    # -- decoding -------------------------------------------------------------

    def decode(self, data: bytes) -> Any:
        try:
            element = ET.fromstring(data)
        except ET.ParseError as exc:
            raise ProtocolError(f"bad XML: {exc}") from exc
        return self.from_element(element)

    def from_element(self, element: ET.Element) -> Any:
        if element.tag == "entry":
            return self._decode_entry(element)
        if element.tag == "tuple":
            return LindaTuple(
                *[self._read_value(child) for child in element]
            )
        if element.tag == "template":
            return TupleTemplate(
                *[self._read_pattern(child) for child in element]
            )
        raise ProtocolError(f"unknown XML element <{element.tag}>")

    def _decode_entry(self, element: ET.Element) -> Entry:
        class_name = element.get("class")
        if class_name is None:
            raise ProtocolError("<entry> without a class attribute")
        entry_class = self.resolve_class(class_name)
        fields = {}
        for child in element:
            name = child.get("name")
            if name is None:
                raise ProtocolError("entry <field> without a name")
            fields[name] = self._read_value(child)
        try:
            return entry_class(**fields)
        except TypeError as exc:
            raise ProtocolError(
                f"cannot construct {class_name}(**{sorted(fields)}): {exc}"
            ) from exc

    _PRIMITIVES = {"none", "bool", "int", "float", "str", "bytes"}

    def _read_value(self, element: ET.Element) -> Any:
        kind = element.get("type")
        text = element.text or ""
        if kind == "none":
            return None
        if kind == "bool":
            if text not in ("true", "false"):
                raise ProtocolError(f"bad bool literal {text!r}")
            return text == "true"
        if kind == "int":
            return int(text)
        if kind == "float":
            return float(text)
        if kind == "str":
            return text
        if kind == "bytes":
            return bytes.fromhex(text)
        if kind == "list":
            return [self._read_value(child) for child in element]
        if kind == "pytuple":
            return tuple(self._read_value(child) for child in element)
        if kind == "dict":
            members = {}
            for child in element:
                name = child.get("name")
                if name is None:
                    # The encoder enforces string keys; accepting a
                    # nameless field here would fabricate a {None: ...}
                    # key no encoder could ever have produced.
                    raise ProtocolError("dict <field> without a name")
                members[name] = self._read_value(child)
            return members
        if kind == "tuple":
            return LindaTuple(*[self._read_value(child) for child in element])
        if kind == "entry":
            children = list(element)
            if len(children) != 1:
                raise ProtocolError("nested entry field needs one child")
            return self.from_element(children[0])
        raise ProtocolError(f"unknown field type {kind!r}")

    _FORMAL_TYPES = {
        "int": int,
        "float": float,
        "str": str,
        "bool": bool,
        "bytes": bytes,
        "list": list,
        "tuple": tuple,
        "dict": dict,
    }

    def _read_pattern(self, element: ET.Element) -> Any:
        kind = element.get("type")
        if kind == "any":
            return ANY
        if kind == "formal":
            name = element.text or ""
            formal = self._FORMAL_TYPES.get(name)
            if formal is None:
                raise ProtocolError(f"unknown formal type {name!r}")
            return formal
        return self._read_value(element)
