"""Tuplespace middleware exceptions."""


class SpaceError(Exception):
    """Base class for tuplespace errors."""


class NoMatchError(SpaceError):
    """A blocking read/take timed out without finding a matching entry."""


class LeaseDeniedError(SpaceError):
    """The space refused the requested lease duration."""


class LeaseExpiredError(SpaceError):
    """An operation referenced a lease that has already expired."""


class TransactionError(SpaceError):
    """Illegal transaction usage (reuse after commit, cross-space, ...)."""


class ProtocolError(SpaceError):
    """Malformed wire-protocol message or XML entry encoding."""


class ConnectionClosedError(SpaceError, ConnectionError):
    """The transport closed mid-request (also a ``ConnectionError``)."""


class RmiError(SpaceError):
    """Registry/skeleton misuse (unknown name, unexposed method)."""


class RequestTimeoutError(SpaceError):
    """A client request got no response within its deadline."""


class CircuitOpenError(SpaceError):
    """The circuit breaker is open; the operation was not attempted."""
