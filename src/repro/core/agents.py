"""Factory-automation agents over the tuplespace.

Two of the paper's motivating patterns (Sec. 2.1), as runnable agents:

* **Fault tolerance** (Figure 1): a :class:`ControlAgent` and a set of
  redundant :class:`ActuatorAgent` devices follow the paper's four-step
  failover protocol — a start tuple taken by exactly one actuator, a state
  tuple heartbeat per tick, and backups that promote themselves when the
  heartbeat disappears.
* **Scalability / offload**: :class:`ProducerAgent` devices without FPU
  support post FFT work tuples; :class:`ConsumerAgent` devices with FPU
  support take, compute and answer.  Throughput scales with the number of
  consumers, which the ablation benchmark measures.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.core.simops import space_read, space_take
from repro.core.space import TupleSpace
from repro.core.tuples import ANY, LindaTuple, TupleTemplate


class SpaceAgent:
    """Base class: an agent bound to a simulator and a space."""

    def __init__(self, sim, space: TupleSpace, name: str = ""):
        self.sim = sim
        self.space = space
        self.name = name or type(self).__name__
        self.process = None

    def start(self):
        if self.process is not None:
            return self.process
        self.process = self.sim.spawn(self.run(), name=self.name)
        return self.process

    def run(self):
        raise NotImplementedError
        yield  # pragma: no cover - makes run() a generator in subclasses

    def take(self, template, timeout: Optional[float] = None):
        return space_take(self.sim, self.space, template, timeout)

    def read(self, template, timeout: Optional[float] = None):
        return space_read(self.sim, self.space, template, timeout)


# -- Figure 1: redundant actuators ------------------------------------------

def start_tuple(group: str) -> LindaTuple:
    return LindaTuple("actuator-start", group)

def start_template(group: str) -> TupleTemplate:
    return TupleTemplate("actuator-start", group)

def state_tuple(group: str, tick: int) -> LindaTuple:
    return LindaTuple("actuator-state", group, tick, "operating OK")

def state_template(group: str) -> TupleTemplate:
    return TupleTemplate("actuator-state", group, int, str)

def alive_tuple(group: str, position: int, tick: int) -> LindaTuple:
    return LindaTuple("actuator-alive", group, position, tick)

def alive_template(group: str, position: int) -> TupleTemplate:
    return TupleTemplate("actuator-alive", group, position, int)


class ControlAgent(SpaceAgent):
    """Step 1 of the protocol: requests an actuator and waits for pickup."""

    def __init__(self, sim, space, group: str, poll_interval: float = 0.1, name: str = ""):
        super().__init__(sim, space, name or f"control.{group}")
        self.group = group
        self.poll_interval = poll_interval
        self.control_started_at: Optional[float] = None

    def run(self):
        self.space.write(start_tuple(self.group))
        # "It waits to start the control loop until the tuple is removed
        # from space."
        template = start_template(self.group)
        while self.space.read_if_exists(template) is not None:
            yield self.sim.timeout(self.poll_interval)
        self.control_started_at = self.sim.now


class ActuatorAgent(SpaceAgent):
    """Steps 2-4: claim the start tuple, heartbeat, or shadow and recover.

    The paper's protocol is a redundant *pair*: the operating actuator
    writes a state tuple every tick and its backup takes it, promoting
    itself when the take fails.  This agent generalises the pair to a
    *chain* of ``rank``-ordered backups: the operating actuator (chain
    position 0) writes the state tuple; every backup at position ``i``
    writes its own alive tuple and takes the heartbeat of position
    ``i - 1`` each tick.  A missed take shifts the backup one position up
    — so the death of any member, including the operating one, cascades
    cleanly and exactly one backup ends up operating.

    ``fail_at`` injects a failure: the agent stops dead at that time.
    """

    OPERATING = "operating"
    BACKUP = "backup"

    def __init__(
        self,
        sim,
        space,
        group: str,
        rank: int = 0,
        tick: float = 1.0,
        fail_at: Optional[float] = None,
        name: str = "",
    ):
        super().__init__(sim, space, name or f"actuator.{group}.{rank}")
        self.group = group
        self.rank = rank
        self.tick = tick
        self.fail_at = fail_at
        self.state: Optional[str] = None
        self.position: Optional[int] = None
        self.history: list[tuple[float, str]] = []
        self.ticks_executed = 0
        self.failed = False

    def _set_state(self, state: str) -> None:
        self.state = state
        self.history.append((self.sim.now, state))

    def _should_fail(self) -> bool:
        if self.fail_at is not None and self.sim.now >= self.fail_at:
            self.failed = True
            return True
        return False

    def _heartbeat(self) -> None:
        """Publish this tick's liveness for the chain position held.

        Position 0 writes the paper's state tuple; deeper positions write
        alive tuples.  Leases bound the garbage left by dead shadowers.
        """
        lease = 2.5 * self.tick
        if self.position == 0:
            self.space.write(
                state_tuple(self.group, self.ticks_executed), lease=lease
            )
        else:
            self.space.write(
                alive_tuple(self.group, self.position, self.ticks_executed),
                lease=lease,
            )

    def _upstream_template(self):
        if self.position == 1:
            return state_template(self.group)
        return alive_template(self.group, self.position - 1)

    def run(self):
        # Step 2: race for the start tuple; exactly one actuator wins
        # (the timestamp total order on the take resolves the race).
        claimed = self.space.take_if_exists(start_template(self.group))
        if claimed is not None:
            self.position = 0
            self._set_state(self.OPERATING)
            yield from self._operate()
        else:
            self.position = max(1, self.rank)
            self._set_state(self.BACKUP)
            yield from self._shadow()

    def _operate(self):
        # Step 3: execute the program semantics; write the state tuple on
        # each tick.
        while True:
            if self._should_fail():
                return
            self._heartbeat()
            self.ticks_executed += 1
            yield self.sim.timeout(self.tick)

    def _shadow(self):
        # Step 4: on each tick remove the upstream neighbour's heartbeat;
        # a failed take starts the recovery procedure (shift one position
        # up; position 0 means taking over the actuator program).
        stagger = self.position * (self.tick / 100.0)
        yield self.sim.timeout(self.tick + stagger)
        while True:
            if self._should_fail():
                return
            found = self.space.take_if_exists(self._upstream_template())
            if found is None:
                self.position -= 1
                if self.position == 0:
                    self._set_state(self.OPERATING)
                    yield from self._operate()
                    return
            else:
                self.ticks_executed += 1
            self._heartbeat()
            yield self.sim.timeout(self.tick)


# -- Sec. 2.1: producer/consumer FFT offload -----------------------------------

def fft_request(job_id: int, samples: list) -> LindaTuple:
    return LindaTuple("fft-request", job_id, samples)

def fft_request_template() -> TupleTemplate:
    return TupleTemplate("fft-request", int, list)

def fft_result_template(job_id: int) -> TupleTemplate:
    return TupleTemplate("fft-result", job_id, ANY)


class ProducerAgent(SpaceAgent):
    """A low-performance node posting FFT jobs and awaiting results."""

    def __init__(
        self,
        sim,
        space,
        producer_id: int,
        n_jobs: int,
        samples_per_job: int = 16,
        interval: float = 0.5,
        name: str = "",
    ):
        super().__init__(sim, space, name or f"producer{producer_id}")
        self.producer_id = producer_id
        self.n_jobs = n_jobs
        self.samples_per_job = samples_per_job
        self.interval = interval
        self.response_times: list[float] = []
        self.completed = 0

    def run(self):
        rng = self.sim.stream(f"producer.{self.producer_id}")
        for index in range(self.n_jobs):
            job_id = self.producer_id * 100000 + index
            samples = [rng.uniform(-1.0, 1.0) for _ in range(self.samples_per_job)]
            posted_at = self.sim.now
            self.space.write(fft_request(job_id, samples))
            result = yield self.take(fft_result_template(job_id))
            self.response_times.append(self.sim.now - posted_at)
            self.completed += 1
            yield self.sim.timeout(self.interval)

    @property
    def mean_response_time(self) -> float:
        if not self.response_times:
            return math.nan
        return sum(self.response_times) / len(self.response_times)


class ConsumerAgent(SpaceAgent):
    """A high-performance node serving FFT jobs from the space."""

    def __init__(self, sim, space, consumer_id: int, service_time: float = 0.2, name: str = ""):
        super().__init__(sim, space, name or f"consumer{consumer_id}")
        self.consumer_id = consumer_id
        self.service_time = service_time
        self.jobs_served = 0

    def run(self):
        while True:
            job = yield self.take(fft_request_template())
            _, job_id, samples = job.fields
            yield self.sim.timeout(self.service_time)
            spectrum = dft_magnitudes(samples)
            self.space.write(LindaTuple("fft-result", job_id, spectrum))
            self.jobs_served += 1


def dft_magnitudes(samples: list) -> list:
    """Magnitudes of the discrete Fourier transform (the offloaded job)."""
    n = len(samples)
    if n == 0:
        return []
    out = []
    for k in range(n):
        real = sum(
            x * math.cos(-2.0 * math.pi * k * i / n)
            for i, x in enumerate(samples)
        )
        imag = sum(
            x * math.sin(-2.0 * math.pi * k * i / n)
            for i, x in enumerate(samples)
        )
        out.append(math.hypot(real, imag))
    return out
