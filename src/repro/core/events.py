"""Subscribe/notify support (JavaSpaces ``notify`` analog).

Sec. 2: "primitives to support the subscribe (declare the interest of an
agent on some kind of tuples) and notify (callback to subscriber) paradigm
are usually provided."

A listener registers a template; every subsequently written matching entry
triggers a :class:`RemoteEvent` callback.  Registrations are leased like
entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.lease import Lease


@dataclass(frozen=True)
class RemoteEvent:
    """Delivered to a listener when a matching entry is written."""

    registration_id: int
    sequence: int          #: per-registration notification count (1-based)
    space_sequence: int    #: the space-wide timestamp of the written entry
    item: Any = None       #: the written entry (convenience; JavaSpaces
                           #: proper delivers only the notification)


class EventRegistration:
    """One active subscription.

    ``registration_id`` is assigned by the owning space from its own
    counter (ids restart at 1 for every space), so a scenario re-run in
    the same process logs identical ids — a process-global counter here
    would leak state between runs and break trace determinism.
    """

    def __init__(
        self,
        template: Any,
        listener: Callable[[RemoteEvent], None],
        lease: Lease,
        registration_id: int = 0,
    ):
        self.registration_id = registration_id
        self.template = template
        self.listener = listener
        self.lease = lease
        self.notifications = 0

    @property
    def active(self) -> bool:
        return not self.lease.expired

    def deliver(self, space_sequence: int, item: Any) -> None:
        self.notifications += 1
        event = RemoteEvent(
            self.registration_id, self.notifications, space_sequence, item
        )
        self.listener(event)

    def cancel(self) -> None:
        self.lease.cancel()

    def __repr__(self) -> str:
        return (
            f"EventRegistration(id={self.registration_id}, "
            f"notifications={self.notifications})"
        )
