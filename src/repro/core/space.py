"""The tuplespace engine.

Sec. 2: "a tuplespace is simply an unstructured collection of tuples" with
agents "writing, reading and removing tuples" addressed associatively, and
"the timestamp on each tuple determines a total order relation".

The engine is single-threaded and clock-driven: leases expire lazily
against the injected :class:`~repro.core.clock.Clock`, and blocking
semantics are expressed through *waiters* (callbacks registered for the
next matching write), so the same engine serves the threaded socket
server, the discrete-event co-simulation and plain unit tests.

Stored items can be :class:`~repro.core.tuples.LindaTuple`,
:class:`~repro.core.entry.Entry`, or anything else; templates are any
object with a ``matches(item) -> bool`` method.

Matching is indexed (:mod:`repro.core.index`): records are bucketed by
shape so ``read``/``take``/waiter delivery touch only the candidates a
template could match, instead of scanning the whole space, and lease
expiry runs off a min-heap of deadlines instead of periodic O(n)
sweeps.  The index prunes but never decides — every candidate still
passes through ``template.matches`` — and candidate order is the
timestamp order, so the oldest-match ("total order") semantics are
exactly those of the original linear scan.  See ``docs/tuplespace.md``.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from collections import OrderedDict
from typing import Any, Callable, Optional

from repro.core.clock import Clock, SystemClock
from repro.core.errors import SpaceError, TransactionError
from repro.core.events import EventRegistration, RemoteEvent
from repro.core.index import ItemIndex, TemplateTable
from repro.core.lease import FOREVER, Lease, LeaseManager


class WaitMode(enum.Enum):
    READ = "read"
    TAKE = "take"


class _Record:
    """Internal storage slot for one item."""

    __slots__ = ("seq", "item", "lease", "txn_owner", "taken_by", "op_key")

    def __init__(self, seq: int, item: Any, lease: Lease):
        self.seq = seq
        self.item = item
        self.lease = lease
        #: transaction that wrote the item (invisible outside it until commit)
        self.txn_owner = None
        #: transaction holding a provisional take (invisible until resolved)
        self.taken_by = None
        #: idempotency key of the write that created this record, if any
        self.op_key = None


class Waiter:
    """A pending blocking read/take."""

    __slots__ = ("template", "mode", "callback", "txn", "active")

    def __init__(self, template, mode: WaitMode, callback, txn=None):
        self.template = template
        self.mode = mode
        self.callback = callback
        self.txn = txn
        self.active = True

    def cancel(self) -> None:
        self.active = False


class SpaceStats:
    """Operation counters of one space."""

    def __init__(self):
        self.writes = 0
        self.reads = 0
        self.takes = 0
        self.misses = 0
        self.expirations = 0
        self.notifications = 0

    def as_dict(self) -> dict:
        return {
            "writes": self.writes,
            "reads": self.reads,
            "takes": self.takes,
            "misses": self.misses,
            "expirations": self.expirations,
            "notifications": self.notifications,
        }


class TupleSpace:
    """Associatively addressed, leased, observable item store."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        max_lease: float = FOREVER,
        default_lease: float = FOREVER,
        name: str = "space",
        obs=None,
    ):
        self.clock = clock if clock is not None else SystemClock()
        self.name = name
        self.leases = LeaseManager(self.clock, max_lease, default_lease)
        self._records: dict[int, _Record] = {}
        self._seq = 0
        self._index = ItemIndex()
        #: (expires_at, seq) deadlines; lazily invalidated on renew/cancel
        self._expiry_heap: list[tuple[float, int]] = []
        self._waiters = TemplateTable()
        self._registrations = TemplateTable()
        self._registration_ids = itertools.count(1)
        #: Completed idempotent writes: ``op_key -> granted lease``.  The
        #: entry outlives its record (a retried write after the tuple was
        #: taken or expired must NOT resurrect it), capped FIFO so the
        #: table cannot grow without bound.
        self._op_keys: OrderedDict[str, Lease] = OrderedDict()
        self.op_key_retention = 4096
        self.duplicate_writes = 0
        self.stats = SpaceStats()
        #: storage observers (e.g. the persistence journal); each gets
        #: ``item_stored(seq, item, expires_at)`` / ``item_dropped(seq)``.
        self.observers: list = []
        # -- observability (nullable; stamped with this space's clock)
        self.obs = obs
        if obs is not None:
            obs.bind_clock(self.clock.now)
            metrics = obs.metrics
            self._obs_counters = {
                op: metrics.counter(f"{name}.{op}")
                for op in ("writes", "reads", "takes", "misses",
                           "expirations", "notifications")
            }
            self._obs_items = metrics.gauge(f"{name}.items")
            self._obs_buckets = metrics.gauge(f"{name}.index_buckets")
            self._obs_heap = metrics.gauge(f"{name}.expiry_heap")

    def _obs_op(self, counter: str, event: str, **fields) -> None:
        """Record one space operation (no-op when uninstrumented)."""
        if self.obs is None:
            return
        self._obs_counters[counter].inc()
        self.obs.tracer.event("space", event, space=self.name, **fields)

    def _obs_depth(self) -> None:
        if self.obs is not None:
            self._obs_items.set(len(self))
            self._obs_buckets.set(self._index.bucket_count())
            self._obs_heap.set(len(self._expiry_heap))

    # -- write -------------------------------------------------------------

    def write(
        self,
        item: Any,
        lease: Optional[float] = None,
        txn=None,
        op_key: Optional[str] = None,
    ) -> Lease:
        """Store ``item`` under a lease; returns the granted lease.

        ``op_key`` makes the write idempotent: a second write carrying
        the same key is a duplicate delivery (a client retry after a
        lost acknowledgement) and returns the original grant without
        storing anything — even if the original tuple has meanwhile been
        taken or expired, because the operation it retries *did* happen.
        """
        if item is None:
            raise SpaceError("cannot write None to a space")
        self._check_txn(txn)
        if op_key is not None:
            if txn is not None:
                raise SpaceError("op_key cannot be combined with a transaction")
            existing = self._op_keys.get(op_key)
            if existing is not None:
                self.duplicate_writes += 1
                if self.obs is not None:
                    self.obs.tracer.event(
                        "space", "write-dup", space=self.name, op_key=op_key
                    )
                return existing
        self._seq += 1
        record = _Record(self._seq, item, None)
        record.lease = self.leases.grant(
            lease,
            on_cancel=lambda _l, rec=record: self._drop(rec),
            on_renew=lambda l, seq=record.seq: self._reschedule_expiry(seq, l),
        )
        record.txn_owner = txn
        if op_key is not None:
            record.op_key = op_key
            self._op_keys[op_key] = record.lease
            while len(self._op_keys) > self.op_key_retention:
                self._op_keys.popitem(last=False)
        self._records[record.seq] = record
        self._index.add(record)
        expires_at = record.lease.expires_at
        if not math.isinf(expires_at):
            heapq.heappush(self._expiry_heap, (expires_at, record.seq))
        if txn is not None:
            txn._written.append(record)
        self.stats.writes += 1
        self._obs_op(
            "writes", "write", seq=record.seq,
            lease=record.lease.duration if record.lease.duration != FOREVER else None,
            txn=txn is not None,
        )
        if txn is None:
            self._notify_stored(record)
            self._item_became_visible(record)
        self._obs_depth()
        return record.lease

    def _notify_stored(self, record: _Record) -> None:
        for observer in self.observers:
            observer.item_stored(
                record.seq, record.item, record.lease.expires_at
            )

    # -- non-blocking read/take ------------------------------------------------

    def read_if_exists(self, template, txn=None) -> Optional[Any]:
        """The oldest matching item, or ``None`` (item stays in the space)."""
        self._check_txn(txn)
        record = self._find(template, txn)
        if record is None:
            self.stats.misses += 1
            self._obs_op("misses", "miss", op="read")
            return None
        self.stats.reads += 1
        self._obs_op("reads", "read", seq=record.seq)
        return record.item

    def take_if_exists(self, template, txn=None) -> Optional[Any]:
        """Remove and return the oldest matching item, or ``None``."""
        self._check_txn(txn)
        record = self._find(template, txn)
        if record is None:
            self.stats.misses += 1
            self._obs_op("misses", "miss", op="take")
            return None
        self._consume(record, txn)
        self.stats.takes += 1
        self._obs_op("takes", "take", seq=record.seq)
        self._obs_depth()
        return record.item

    # -- blocking support ---------------------------------------------------------

    def register_waiter(
        self,
        template,
        mode: WaitMode,
        callback: Callable[[Any], None],
        txn=None,
    ) -> Waiter:
        """Register a callback for the next matching visible item.

        If a match already exists the callback fires immediately (and a
        take consumes the item).  The returned waiter can be cancelled,
        which is how timeouts are implemented by the callers.
        """
        self._check_txn(txn)
        record = self._find(template, txn)
        waiter = Waiter(template, mode, callback, txn)
        if record is not None:
            waiter.active = False
            if mode is WaitMode.TAKE:
                self._consume(record, txn)
                self.stats.takes += 1
                self._obs_op("takes", "take", seq=record.seq, waited=False)
                self._obs_depth()
            else:
                self.stats.reads += 1
                self._obs_op("reads", "read", seq=record.seq, waited=False)
            callback(record.item)
            return waiter
        self._waiters.add(waiter)
        if txn is not None:
            txn._waiters.append(waiter)
        return waiter

    # -- notify ------------------------------------------------------------------

    def notify(
        self,
        template,
        listener: Callable[[RemoteEvent], None],
        lease: Optional[float] = None,
    ) -> EventRegistration:
        """Subscribe ``listener`` to future writes matching ``template``."""
        granted = self.leases.grant(lease)
        registration = EventRegistration(
            template, listener, granted,
            registration_id=next(self._registration_ids),
        )
        self._registrations.add(registration)
        return registration

    # -- maintenance -----------------------------------------------------------------

    def sweep_expired(self) -> int:
        """Drop every lease-expired record; returns how many were dropped."""
        dropped = self._expire_due()
        self._waiters.prune()
        self._registrations.prune()
        if dropped:
            self._obs_depth()
        return dropped

    def __len__(self) -> int:
        """Number of live, publicly visible items."""
        return sum(
            1
            for r in self._records.values()
            if not r.lease.expired and r.txn_owner is None and r.taken_by is None
        )

    @property
    def pending_waiters(self) -> int:
        return self._waiters.count_active()

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _check_txn(txn) -> None:
        if txn is not None and not txn.is_active:
            raise TransactionError(f"transaction is {txn.state.value}, not active")

    def _visible(self, record: _Record, txn) -> bool:
        if record.taken_by is not None:
            return False
        if record.txn_owner is not None and record.txn_owner is not txn:
            return False
        if record.lease.expired:
            return False
        return True

    def _find(self, template, txn) -> Optional[_Record]:
        """Oldest visible matching record (total order by timestamp)."""
        self._expire_due()
        candidates = self._index.candidates(template)
        if candidates is None:
            # Unknown template discipline: only the full scan is safe.
            candidates = self._records.values()
        for record in candidates:
            if self._visible(record, txn) and template.matches(record.item):
                return record
        return None

    def _expire_due(self) -> int:
        """Drop every record whose lease deadline has passed.

        Deadlines sit in a min-heap of ``(expires_at, seq)``; renewals
        push a fresh entry and leave the stale one to be recognised and
        skipped when popped (lazy invalidation), so expiry costs
        O(log n) per record instead of an O(n) sweep.
        """
        heap = self._expiry_heap
        if not heap:
            return 0
        now = self.clock.now()
        dropped = 0
        while heap and heap[0][0] <= now:
            _when, seq = heapq.heappop(heap)
            record = self._records.get(seq)
            if record is None:
                continue  # already dropped (taken, cancelled, committed away)
            if not record.lease.expired:
                continue  # renewed: the renewal pushed the live deadline
            self._drop(record)
            dropped += 1
            self.stats.expirations += 1
            self._obs_op("expirations", "expire", seq=seq)
        return dropped

    def _reschedule_expiry(self, seq: int, lease: Lease) -> None:
        """Lease renewal hook: enter the new deadline into the heap."""
        if seq in self._records and not math.isinf(lease.expires_at):
            heapq.heappush(self._expiry_heap, (lease.expires_at, seq))

    def _consume(self, record: _Record, txn) -> None:
        if txn is None:
            self._drop(record)
        else:
            record.taken_by = txn
            txn._taken.append(record)

    def _drop(self, record: _Record) -> None:
        existed = self._records.pop(record.seq, None)
        if existed is not None:
            self._index.discard(record.seq)
            if record.txn_owner is None:
                for observer in self.observers:
                    observer.item_dropped(record.seq)

    def _item_became_visible(self, record: _Record) -> None:
        """Serve waiters and notify subscribers for a newly visible item.

        Notifications fire for every visible write, even when a blocked
        take consumes the item immediately (JavaSpaces semantics).
        """
        self._serve_waiters(record)
        self._fire_notifications(record)

    def _serve_waiters(self, record: _Record) -> bool:
        """Deliver to matching waiters in registration order.

        Read waiters all observe the item; the first matching take waiter
        consumes it and stops delivery.  Returns True when consumed.

        A waiter whose transaction resolved while it was blocked is
        skipped and deactivated: consuming into a dead transaction would
        strand the item in a ``_taken`` list nothing will ever restore.
        """
        for waiter in self._waiters.candidates_for(record.item):
            if not waiter.active:
                self._waiters.discard(waiter)
                continue
            if waiter.txn is not None and not waiter.txn.is_active:
                waiter.active = False
                self._waiters.discard(waiter)
                continue
            if not waiter.template.matches(record.item):
                continue
            waiter.active = False
            self._waiters.discard(waiter)
            if waiter.mode is WaitMode.READ:
                self.stats.reads += 1
                self._obs_op("reads", "read", seq=record.seq, waited=True)
                waiter.callback(record.item)
                continue
            self._consume(record, waiter.txn)
            self.stats.takes += 1
            self._obs_op("takes", "take", seq=record.seq, waited=True)
            self._obs_depth()
            waiter.callback(record.item)
            return True
        return False

    def _fire_notifications(self, record: _Record) -> None:
        for registration in self._registrations.candidates_for(record.item):
            if not registration.active:
                self._registrations.discard(registration)
                continue
            if registration.template.matches(record.item):
                registration.deliver(record.seq, record.item)
                self.stats.notifications += 1
                self._obs_op(
                    "notifications", "notify",
                    seq=record.seq,
                    registration=registration.registration_id,
                )

    # -- transaction resolution (called by Transaction) ---------------------------

    def _commit_txn(self, txn) -> None:
        self._retire_txn_waiters(txn)
        for record in txn._taken:
            self._drop(record)
        for record in txn._written:
            if record.seq in self._records and not record.lease.expired:
                record.txn_owner = None
                self._notify_stored(record)
                self._item_became_visible(record)

    def _abort_txn(self, txn) -> None:
        self._retire_txn_waiters(txn)
        for record in txn._written:
            self._drop(record)
        for record in txn._taken:
            if record.seq not in self._records:
                # Written and taken within the same transaction: the
                # aborted write already dropped it; nothing to restore.
                continue
            if record.lease.expired:
                self._drop(record)
                continue
            record.taken_by = None
            self._item_became_visible(record)

    def _retire_txn_waiters(self, txn) -> None:
        """A resolved transaction's blocked waiters can never deliver."""
        for waiter in txn._waiters:
            if waiter.active:
                waiter.active = False
                self._waiters.discard(waiter)

    def __repr__(self) -> str:
        return f"TupleSpace({self.name!r}, items={len(self)})"
