"""Byte transport over TpWIRE.

Slaves cannot talk to each other (Sec. 3.1: "Slaves can communicate with
the Master only"), so application data between two slave boards is relayed
by the master: it polls each slave's mailbox, reads outbound link messages
byte-by-byte with READ_DATA frames and writes them into the destination
slave's inbound mailbox with WRITE_DATA frames.  This master-mediated store
and forward path is what gives the tuplespace traffic its large per-byte
frame overhead — the effect the paper measures in Table 4.

Link message format (7 bytes of overhead per message)::

    dest(1) src(1) seq(1) flags(1) length(1) payload(0..MAX) crc16(2)

``flags`` bit 0 marks the final chunk of a segmented application send.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Generator, Optional

from repro.des.monitor import RateMonitor
from repro.tpwire.commands import Command
from repro.tpwire.errors import BusError, TpwireError
from repro.tpwire.frames import TxFrame
from repro.tpwire.master import TpwireMaster
from repro.tpwire.registers import Flag, MmioRegion


# -- CRC-16/CCITT over message header+payload ------------------------------

def _crc16_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


#: Byte-indexed lookup table so the per-message CRC is one table hit per
#: byte instead of eight shift/xor steps (every relayed link message is
#: encoded once and decoded twice on its way through the master).
_CRC16_TABLE = _crc16_table()


def crc16_ccitt(data: bytes, initial: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE (poly 0x1021), as used by the link messages."""
    crc = initial
    table = _CRC16_TABLE
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ table[(crc >> 8) ^ byte]
    return crc


#: Header bytes before the payload.
HEADER_SIZE = 5

#: Trailing CRC bytes.
CRC_SIZE = 2

#: Total per-message overhead.
MESSAGE_OVERHEAD = HEADER_SIZE + CRC_SIZE

#: Default largest payload per link message.
DEFAULT_MAX_PAYLOAD = 32

#: ``flags`` bit marking the last chunk of an application-level send.
LAST_CHUNK = 0x01


class LinkMessage:
    """One link-layer message relayed by the master."""

    __slots__ = ("dest", "src", "seq", "flags", "payload")

    def __init__(self, dest: int, src: int, seq: int, flags: int, payload: bytes):
        if not 0 <= dest <= 0xFF or not 0 <= src <= 0xFF:
            raise TpwireError("dest/src must be single bytes")
        if not 0 <= seq <= 0xFF or not 0 <= flags <= 0xFF:
            raise TpwireError("seq/flags must be single bytes")
        if len(payload) > 0xFF:
            raise TpwireError(f"payload too long: {len(payload)}")
        self.dest = dest
        self.src = src
        self.seq = seq
        self.flags = flags
        self.payload = bytes(payload)

    @property
    def is_last_chunk(self) -> bool:
        return bool(self.flags & LAST_CHUNK)

    @property
    def wire_size(self) -> int:
        return MESSAGE_OVERHEAD + len(self.payload)

    def encode(self) -> bytes:
        header = bytes(
            [self.dest, self.src, self.seq, self.flags, len(self.payload)]
        )
        body = header + self.payload
        crc = crc16_ccitt(body)
        return body + bytes([crc >> 8, crc & 0xFF])

    @classmethod
    def decode(cls, wire: bytes) -> "LinkMessage":
        if len(wire) < MESSAGE_OVERHEAD:
            raise TpwireError(f"message too short: {len(wire)} bytes")
        dest, src, seq, flags, length = wire[:HEADER_SIZE]
        expected = MESSAGE_OVERHEAD + length
        if len(wire) != expected:
            raise TpwireError(
                f"message length mismatch: header says {expected}, "
                f"got {len(wire)}"
            )
        payload = wire[HEADER_SIZE : HEADER_SIZE + length]
        crc = (wire[-2] << 8) | wire[-1]
        if crc16_ccitt(wire[:-CRC_SIZE]) != crc:
            raise TpwireError("link message CRC-16 mismatch")
        return cls(dest, src, seq, flags, payload)

    def __repr__(self) -> str:
        return (
            f"LinkMessage({self.src}->{self.dest} seq={self.seq} "
            f"len={len(self.payload)})"
        )


class MailboxDevice:
    """Memory-mapped mailbox peripheral on a slave.

    MMIO layout (all *sticky* — the address pointer does not advance, so a
    burst of READ_DATA/WRITE_DATA frames streams bytes through one
    register):

    ========  ====  =======================================================
    OUT_COUNT 0xF0  (r) bytes still queued outbound (clamped to 255)
    OUT_DATA  0xF1  (r) pop the next outbound byte
    IN_DATA   0xF2  (w) push one inbound byte (reassembled into messages)
    IN_STATUS 0xF3  (r) bit0 set when the inbound buffer is full
    ========  ====  =======================================================
    """

    OUT_COUNT = 0xF0
    OUT_DATA = 0xF1
    IN_DATA = 0xF2
    IN_STATUS = 0xF3
    #: repeat register: the last byte popped from OUT_DATA.  Reading
    #: OUT_DATA is destructive, so a master whose RX frame was garbled
    #: recovers the byte here instead of popping the next one.
    OUT_LAST = 0xF4

    def __init__(self, out_capacity: int = 65536, in_capacity: int = 65536):
        self.out_capacity = out_capacity
        self.in_capacity = in_capacity
        self._outbound: deque[int] = deque()
        self._last_out = 0
        self._inbound = bytearray()
        self._slave = None
        self.on_message: Optional[Callable[[LinkMessage], None]] = None
        self.delivered_messages = 0
        self.corrupt_inbound = 0
        self.rejected_sends = 0

    # -- installation -----------------------------------------------------

    def install(self, slave) -> None:
        self._slave = slave
        regs = slave.registers
        regs.register_mmio(MmioRegion(
            self.OUT_COUNT, 1, read=self._read_out_count,
            name="mailbox.out_count", sticky=True,
        ))
        regs.register_mmio(MmioRegion(
            self.OUT_DATA, 1, read=self._read_out_data,
            name="mailbox.out_data", sticky=True,
        ))
        regs.register_mmio(MmioRegion(
            self.IN_DATA, 1, write=self._write_in_data,
            name="mailbox.in_data", sticky=True,
        ))
        regs.register_mmio(MmioRegion(
            self.IN_STATUS, 1, read=self._read_in_status,
            name="mailbox.in_status", sticky=True,
        ))
        regs.register_mmio(MmioRegion(
            self.OUT_LAST, 1, read=lambda _off: self._last_out,
            name="mailbox.out_last", sticky=True,
        ))

    def on_reset(self) -> None:
        """Slave reset wiped the FLAGS register: re-assert mailbox state."""
        self._update_flags()

    # -- application side (the slave's own firmware) ------------------------

    def enqueue_message(self, message: LinkMessage) -> bool:
        """Queue an outbound message; ``False`` when the outbox is full."""
        wire = message.encode()
        if len(self._outbound) + len(wire) > self.out_capacity:
            self.rejected_sends += 1
            return False
        self._outbound.extend(wire)
        self._update_flags()
        return True

    @property
    def outbound_bytes(self) -> int:
        return len(self._outbound)

    # -- MMIO handlers (the master's view) -------------------------------------

    def _read_out_count(self, _offset: int) -> int:
        return min(len(self._outbound), 0xFF)

    def _read_out_data(self, _offset: int) -> int:
        if not self._outbound:
            raise TpwireError("mailbox outbound underrun")
        value = self._outbound.popleft()
        self._last_out = value
        self._update_flags()
        return value

    def _write_in_data(self, _offset: int, value: int) -> None:
        if len(self._inbound) >= self.in_capacity:
            raise TpwireError("mailbox inbound overrun")
        self._inbound.append(value)
        self._try_deliver()
        self._update_flags()

    def _read_in_status(self, _offset: int) -> int:
        return 1 if len(self._inbound) >= self.in_capacity else 0

    # -- reassembly -----------------------------------------------------------

    def _try_deliver(self) -> None:
        """Deliver every complete message at the head of the inbound buffer."""
        while True:
            if len(self._inbound) < HEADER_SIZE:
                return
            length = self._inbound[4]
            total = MESSAGE_OVERHEAD + length
            if len(self._inbound) < total:
                return
            wire = bytes(self._inbound[:total])
            del self._inbound[:total]
            try:
                message = LinkMessage.decode(wire)
            except TpwireError:
                self.corrupt_inbound += 1
                continue
            self.delivered_messages += 1
            if self.on_message is not None:
                self.on_message(message)

    #: FLAGS bits the mailbox owns, refreshed together after every byte.
    _FLAG_MASK = int(Flag.OUT_READY | Flag.INT_PENDING | Flag.IN_FULL)
    _FLAG_OUT = int(Flag.OUT_READY | Flag.INT_PENDING)
    _FLAG_IN_FULL = int(Flag.IN_FULL)

    def _update_flags(self) -> None:
        if self._slave is None:
            return
        value = self._FLAG_OUT if self._outbound else 0
        if len(self._inbound) >= self.in_capacity:
            value |= self._FLAG_IN_FULL
        self._slave.registers.set_flags_masked(self._FLAG_MASK, value)


class TransportFabric:
    """Shared bookkeeping of all endpoints on one logical transport.

    Holds the endpoint registry and the side table associating in-flight
    application sends with their context objects (e.g. the
    :class:`~repro.net.packet.Packet` a traffic generator produced), so the
    receiving endpoint can hand the original object to its application.
    """

    def __init__(self):
        self.endpoints: dict[int, "TransportEndpoint"] = {}
        self.contexts: dict[tuple[int, int], object] = {}

    def register(self, endpoint: "TransportEndpoint") -> None:
        if endpoint.node_id in self.endpoints:
            raise TpwireError(
                f"endpoint for node {endpoint.node_id} already registered"
            )
        self.endpoints[endpoint.node_id] = endpoint


class TransportEndpoint:
    """Application-level byte transport for one slave board.

    ``send`` segments data into link messages and queues them in the
    slave's mailbox; the master relays them; the destination endpoint
    reassembles and invokes ``on_data(src_id, data, context)``.
    """

    def __init__(
        self,
        sim,
        fabric: TransportFabric,
        mailbox: MailboxDevice,
        node_id: int,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ):
        if not 1 <= max_payload <= 0xFF:
            raise TpwireError(f"max_payload must be 1..255, got {max_payload}")
        self.sim = sim
        self.fabric = fabric
        self.mailbox = mailbox
        self.node_id = node_id
        self.max_payload = max_payload
        self._seq = 0
        self._rx_buffers: dict[int, bytearray] = {}
        self.on_data: Optional[Callable[[int, bytes, object], None]] = None
        self.sent_bytes = 0
        self.received_bytes = 0
        fabric.register(self)
        mailbox.on_message = self._on_link_message

    def _next_seq(self) -> int:
        self._seq = (self._seq + 1) & 0xFF
        return self._seq

    # -- sending ------------------------------------------------------------

    def send(self, dest_id: int, data: bytes, context: object = None) -> bool:
        """Queue ``data`` for ``dest_id``; ``False`` if the outbox filled."""
        if not data:
            raise TpwireError("cannot send an empty payload")
        chunks = [
            data[i : i + self.max_payload]
            for i in range(0, len(data), self.max_payload)
        ]
        for index, chunk in enumerate(chunks):
            last = index == len(chunks) - 1
            seq = self._next_seq()
            message = LinkMessage(
                dest_id, self.node_id, seq,
                LAST_CHUNK if last else 0, chunk,
            )
            if not self.mailbox.enqueue_message(message):
                return False
            if last and context is not None:
                self.fabric.contexts[(self.node_id, seq)] = context
        self.sent_bytes += len(data)
        return True

    def wire_size_of(self, data_len: int) -> int:
        """Bytes that actually cross the bus for an application payload."""
        full, rest = divmod(data_len, self.max_payload)
        chunks = full + (1 if rest else 0)
        return data_len + chunks * MESSAGE_OVERHEAD

    # -- receiving -----------------------------------------------------------

    def _on_link_message(self, message: LinkMessage) -> None:
        buffer = self._rx_buffers.setdefault(message.src, bytearray())
        buffer.extend(message.payload)
        if not message.is_last_chunk:
            return
        data = bytes(buffer)
        self._rx_buffers[message.src] = bytearray()
        self.received_bytes += len(data)
        context = self.fabric.contexts.pop(
            (message.src, message.seq), None
        )
        if self.on_data is not None:
            self.on_data(message.src, data, context)


class PollStrategy(enum.Enum):
    """How the master's firmware discovers pending mailbox traffic."""

    #: Visit every slave's flags each round (simple, deterministic).
    ROUND_ROBIN = "round-robin"
    #: Poll only the deepest slave when idle: its RX frame passes through
    #: the whole chain, so the INT bit aggregates every slave's pending
    #: interrupt (Sec. 3.1); scan individual flags only when INT is set.
    INTERRUPT_SCAN = "interrupt-scan"


class MasterPoller:
    """The master's firmware loop: poll mailboxes and relay messages.

    Each visit reads a slave's flags (one SELECT + READ_FLAGS pair of
    cycles) and, when the OUT_READY flag is set, relays up to
    ``max_messages_per_visit`` link messages to their destination
    mailboxes.  The whole visit holds the master's operation lock so
    selection state stays coherent.

    Two discovery strategies (ablated in the benchmark suite): plain
    round-robin, and the interrupt-scan optimisation built on the INT
    piggyback bit of the RX frames.
    """

    def __init__(
        self,
        sim,
        master: TpwireMaster,
        fabric: TransportFabric,
        slave_ids: list[int],
        max_messages_per_visit: int = 4,
        idle_delay: float = 0.0,
        strategy: PollStrategy = PollStrategy.ROUND_ROBIN,
        use_dma: bool = False,
    ):
        if not slave_ids:
            raise TpwireError("poller needs at least one slave id")
        self.sim = sim
        self.master = master
        self.fabric = fabric
        self.slave_ids = list(slave_ids)
        self.max_messages_per_visit = max_messages_per_visit
        self.idle_delay = idle_delay
        self.strategy = strategy
        #: deliver message bytes with DMA write bursts instead of
        #: acknowledged per-byte writes (the Sec. 3.1 DMA counter).
        self.use_dma = use_dma
        self.running = False
        self._process = None
        self.relayed_messages = 0
        self.relayed_bytes = 0
        self.dropped_messages = 0
        self.bus_errors = 0
        self.idle_polls = 0
        self.sentinel_polls = 0
        #: bytes rescued from the OUT_LAST repeat register after a
        #: garbled reply to a destructive FIFO pop
        self.recovered_bytes = 0
        #: inbox writes whose acknowledgement was garbled and which were
        #: therefore treated as delivered rather than resent
        self.optimistic_acks = 0
        self.relay_rate = RateMonitor(sim, name="poller.relay")

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        body = (
            self._run_interrupt_scan()
            if self.strategy is PollStrategy.INTERRUPT_SCAN
            else self._run_round_robin()
        )
        self._process = self.sim.spawn(body, name="master-poller")

    def stop(self) -> None:
        self.running = False

    # -- round-robin loop --------------------------------------------------------

    def _run_round_robin(self) -> Generator:
        while self.running:
            serviced_any = yield from self._scan_all()
            if not serviced_any and self.idle_delay > 0:
                yield self.sim.timeout(self.idle_delay)

    def _scan_all(self) -> Generator:
        """Visit every slave once; returns True if anything was relayed."""
        serviced_any = False
        for slave_id in self.slave_ids:
            if not self.running:
                return serviced_any
            try:
                serviced = yield self.master.run_op(
                    self._visit(slave_id), name=f"visit{slave_id}"
                )
            except BusError:
                self.bus_errors += 1
                self.master.invalidate_selection()
                continue
            if serviced:
                serviced_any = True
            else:
                self.idle_polls += 1
        return serviced_any

    # -- interrupt-scan loop --------------------------------------------------------

    def _run_interrupt_scan(self) -> Generator:
        deepest = self.slave_ids[-1]
        while self.running:
            try:
                rx = yield self.master.run_op(
                    self.master.op_poll(deepest), name="sentinel-poll"
                )
            except BusError:
                self.bus_errors += 1
                self.master.invalidate_selection()
                continue
            self.sentinel_polls += 1
            if rx is not None and rx.int_pending:
                # Someone along the chain has pending traffic: drain the
                # mailboxes until a full scan comes back clean.
                while self.running:
                    serviced_any = yield from self._scan_all()
                    if not serviced_any:
                        break
            elif self.idle_delay > 0:
                yield self.sim.timeout(self.idle_delay)

    def _visit(self, slave_id: int) -> Generator:
        """One polling visit; returns True when messages were relayed."""
        flags = yield from self.master.op_read_flags(slave_id)
        if not flags & Flag.OUT_READY:
            return False
        serviced = 0
        while serviced < self.max_messages_per_visit:
            message = yield from self._read_one_message(slave_id)
            if message is None:
                break
            yield from self._deliver(message)
            serviced += 1
            # Stop early when the outbox drained.
            count = yield from self._read_out_count(slave_id)
            if count == 0:
                break
        return serviced > 0

    def _read_out_count(self, slave_id: int) -> Generator:
        data = yield from self.master.op_read_bytes(
            slave_id, MailboxDevice.OUT_COUNT, 1
        )
        return data[0]

    def _read_one_message(self, slave_id: int) -> Generator:
        """Pull one complete link message out of a slave's outbox."""
        header = yield from self._read_mailbox_bytes(slave_id, HEADER_SIZE)
        length = header[4]
        rest = yield from self._read_mailbox_bytes(slave_id, length + CRC_SIZE)
        wire = bytes(header) + bytes(rest)
        try:
            message = LinkMessage.decode(wire)
        except TpwireError:
            self.dropped_messages += 1
            return None
        return message

    #: bounded resend budget for fault-aware FIFO access
    FIFO_ATTEMPTS = 8

    def _read_mailbox_bytes(self, slave_id: int, count: int) -> Generator:
        """Destructive-FIFO-safe read of ``count`` outbox bytes.

        Popping OUT_DATA is destructive, so a blind retry after a garbled
        reply would skip a byte.  Instead: a TIMEOUT (the slave never saw
        the frame) is resent; a CRC_ERROR (the slave popped the byte but
        the reply was lost) is recovered from the OUT_LAST repeat
        register.
        """
        from repro.tpwire.bus import CycleStatus

        yield from self.master.op_select(slave_id)
        yield from self.master.op_set_pointer(MailboxDevice.OUT_DATA)
        out = bytearray()
        frame = TxFrame.of(Command.READ_DATA, 0)
        while len(out) < count:
            for _attempt in range(self.FIFO_ATTEMPTS):
                result = yield self.master.transact_raw(frame)
                if result.status is CycleStatus.OK:
                    out.append(result.rx.data)
                    break
                if result.status is CycleStatus.CRC_ERROR:
                    self.recovered_bytes += 1
                    value = yield from self.master.op_read_bytes(
                        slave_id, MailboxDevice.OUT_LAST, 1
                    )
                    out.append(value[0])
                    yield from self.master.op_set_pointer(
                        MailboxDevice.OUT_DATA
                    )
                    break
                # TIMEOUT: the frame never executed; resend it.
            else:
                raise BusError(
                    f"mailbox read from node {slave_id} failed after "
                    f"{self.FIFO_ATTEMPTS} attempts"
                )
        return bytes(out)

    def _write_mailbox_bytes(self, dest: int, data: bytes) -> Generator:
        """Duplicate-safe write into a destination inbox FIFO.

        Writing IN_DATA is not idempotent, so a blind retry after a
        garbled acknowledgement would duplicate the byte.  A CRC_ERROR
        therefore counts as delivered; only TIMEOUTs are resent.
        """
        from repro.tpwire.bus import CycleStatus

        yield from self.master.op_select(dest)
        yield from self.master.op_set_pointer(MailboxDevice.IN_DATA)
        for value in data:
            frame = TxFrame.of(Command.WRITE_DATA, value)
            for _attempt in range(self.FIFO_ATTEMPTS):
                result = yield self.master.transact_raw(frame)
                if result.status is CycleStatus.OK:
                    break
                if result.status is CycleStatus.CRC_ERROR:
                    self.optimistic_acks += 1
                    break
            else:
                raise BusError(
                    f"mailbox write to node {dest} failed after "
                    f"{self.FIFO_ATTEMPTS} attempts"
                )

    def _deliver(self, message: LinkMessage) -> Generator:
        """Write a message into the destination slave's inbound mailbox."""
        endpoint = self.fabric.endpoints.get(message.dest)
        if endpoint is None:
            self.dropped_messages += 1
            return
        wire = message.encode()
        for offset in range(0, len(wire), 255):
            chunk = wire[offset : offset + 255]
            if self.use_dma and len(chunk) >= 4:
                yield from self.master.op_dma_write_bytes(
                    message.dest, MailboxDevice.IN_DATA, chunk
                )
            else:
                yield from self._write_mailbox_bytes(message.dest, chunk)
        self.relayed_messages += 1
        self.relayed_bytes += len(message.payload)
        self.relay_rate.tick(len(message.payload))
