"""n-wire scalability variants (Sec. 3.2).

The paper proposes scaling TpWIRE "by increasing the number of lines from
the 1-wire to a n-wire architecture", used in one of two ways:

1. *parallel data*: "One line is used to communicate with the Master,
   while the other lines are used to parallel transmit data" — modelled
   by :class:`~repro.tpwire.timing.BusTiming` with
   ``mode=WireMode.PARALLEL_DATA`` (the DATA byte is striped over the
   extra lines, shortening every frame);
2. *parallel buses*: "Each line is used to implement one 1-wire bus, thus
   having n parallel 1-wire transmissions" — modelled by
   :class:`ParallelBusGroup`, a set of independent 1-wire buses whose
   slaves are partitioned across the lines.

``timing_for(wires, ...)`` is the convenience constructor the benchmark
suite uses for the 1-wire / 2-wire comparison of Table 4.
"""

from __future__ import annotations

from typing import Optional

from repro.tpwire.bus import BitErrorModel, TpwireBus
from repro.tpwire.errors import TpwireError
from repro.tpwire.master import TpwireMaster
from repro.tpwire.slave import TpwireSlave
from repro.tpwire.timing import BusTiming, WireMode


def timing_for(
    wires: int,
    bit_rate: float = 2400.0,
    mode: Optional[WireMode] = None,
    **kwargs,
) -> BusTiming:
    """A :class:`BusTiming` for an n-wire bus.

    ``wires=1`` is the deployed serial bus; ``wires>=2`` defaults to the
    parallel-data mode, the configuration behind the paper's 2-wire
    estimate in Table 4.
    """
    if wires < 1:
        raise TpwireError(f"wires must be >= 1, got {wires}")
    if mode is None:
        mode = WireMode.SERIAL if wires == 1 else WireMode.PARALLEL_DATA
    return BusTiming(bit_rate=bit_rate, wires=wires, mode=mode, **kwargs)


class ParallelBusGroup:
    """``n`` independent 1-wire buses driven by one master controller.

    Slaves are partitioned across the lines (each physical board hangs off
    exactly one line); the master can run one communication cycle per line
    concurrently.  Inter-line relaying is possible because every line
    terminates at the same master.
    """

    def __init__(
        self,
        sim,
        wires: int,
        bit_rate: float = 2400.0,
        max_retries: int = 3,
        error_model: Optional[BitErrorModel] = None,
        name: str = "tpwire-group",
        obs=None,
        **timing_kwargs,
    ):
        if wires < 1:
            raise TpwireError(f"wires must be >= 1, got {wires}")
        self.sim = sim
        self.name = name
        timing = BusTiming(
            bit_rate=bit_rate, wires=1, mode=WireMode.SERIAL, **timing_kwargs
        )
        self.buses = [
            TpwireBus(sim, timing, error_model, name=f"{name}.line{i}", obs=obs)
            for i in range(wires)
        ]
        self.masters = [
            TpwireMaster(sim, bus, max_retries, name=f"{name}.master{i}", obs=obs)
            for i, bus in enumerate(self.buses)
        ]
        self._line_of_node: dict[int, int] = {}

    @property
    def wires(self) -> int:
        return len(self.buses)

    def attach_slave(self, slave: TpwireSlave, line: Optional[int] = None) -> int:
        """Attach a slave to a line (default: the least-loaded line)."""
        if slave.node_id in self._line_of_node:
            raise TpwireError(f"node {slave.node_id} already attached")
        if line is None:
            line = min(
                range(self.wires), key=lambda i: len(self.buses[i].slaves)
            )
        if not 0 <= line < self.wires:
            raise TpwireError(f"no line {line} on {self.name}")
        self.buses[line].attach_slave(slave)
        self._line_of_node[slave.node_id] = line
        return line

    def line_of(self, node_id: int) -> int:
        try:
            return self._line_of_node[node_id]
        except KeyError:
            raise TpwireError(f"node {node_id} is not attached to {self.name}")

    def master_for(self, node_id: int) -> TpwireMaster:
        """The master driving the line a node is attached to."""
        return self.masters[self.line_of(node_id)]

    # -- aggregate statistics ------------------------------------------------

    @property
    def tx_frames(self) -> int:
        return sum(bus.tx_frames for bus in self.buses)

    @property
    def rx_frames(self) -> int:
        return sum(bus.rx_frames for bus in self.buses)

    @property
    def timeouts(self) -> int:
        return sum(bus.timeouts for bus in self.buses)

    def __repr__(self) -> str:
        return f"ParallelBusGroup({self.name!r}, wires={self.wires})"
