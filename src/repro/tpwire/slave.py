"""TpWIRE slave protocol state machine.

A slave observes every TX frame travelling down the daisy chain (which
feeds its reset watchdog), executes the command when it is the selected
node, and answers with an RX frame.  The broadcast node (id 127) makes all
slaves execute without replying (Sec. 3.1).

The reset watchdog is modelled lazily: on each observed frame the slave
checks whether more than 2048 bit periods elapsed since the last valid TX
frame; if so it self-reset at that deadline and stays unresponsive for the
33-bit-period reset pulse.
"""

from __future__ import annotations

from typing import Optional

from repro.tpwire.commands import (
    AddressSpace,
    BROADCAST_NODE_ID,
    Command,
    SysCommand,
    split_address,
    status_byte,
)
from repro.tpwire.errors import TpwireError
from repro.tpwire.frames import RxFrame, TxFrame
from repro.tpwire.commands import RxType
from repro.tpwire.registers import Flag, SlaveRegisterFile, SystemRegister
from repro.tpwire.timing import BusTiming

_FLAGS_ADDRESS = int(SystemRegister.FLAGS)


class TpwireSlave:
    """One slave node: register file, selection state, reset watchdog."""

    def __init__(
        self,
        sim,
        node_id: int,
        timing: BusTiming,
        memory_size: int = 256,
        name: Optional[str] = None,
        obs=None,
    ):
        if not 0 <= node_id < BROADCAST_NODE_ID:
            raise TpwireError(
                f"slave node id must be 0..{BROADCAST_NODE_ID - 1}, "
                f"got {node_id}"
            )
        self.sim = sim
        self.node_id = node_id
        self.timing = timing
        self.name = name or f"slave{node_id}"
        self.obs = obs
        if obs is not None:
            self._ctr_resets = obs.metrics.counter(f"{self.name}.resets")
        self.registers = SlaveRegisterFile(memory_size)
        #: Address space selected by the last matching SELECT, or ``None``.
        self.selected_space: Optional[AddressSpace] = None
        #: True when selection came via the broadcast node: the slave
        #: executes commands but never replies (Sec. 3.1).
        self.broadcast_selected = False
        self._last_valid_tx: float = sim.now
        self._reset_until: float = -1.0
        #: Fail-stop switch: a powered-off slave neither observes nor
        #: answers frames (its master sees pure timeouts).  Restoring
        #: power performs a cold reset, exactly like a physical brown-out.
        self.powered = True
        self.resets = 0
        self.executed_frames = 0
        #: bytes left in an armed DMA write burst (0 = no burst active)
        self.dma_write_remaining = 0
        self._devices: list = []
        self._ack_frames = (
            RxFrame.of(RxType.ACK, status_byte(node_id, False), False),
            RxFrame.of(RxType.ACK, status_byte(node_id, True), True),
        )

    # -- device attachment ---------------------------------------------------

    def attach_device(self, device) -> None:
        """Attach a peripheral; it installs MMIO handlers on our registers."""
        device.install(self)
        self._devices.append(device)

    @property
    def devices(self) -> list:
        return list(self._devices)

    # -- interrupts -----------------------------------------------------------

    @property
    def interrupt_pending(self) -> bool:
        return self.registers.test_flag(Flag.INT_PENDING)

    def raise_interrupt(self) -> None:
        self.registers.set_flag(Flag.INT_PENDING, True)

    def clear_interrupt(self) -> None:
        self.registers.set_flag(Flag.INT_PENDING, False)

    # -- reset watchdog ---------------------------------------------------------

    def _service_watchdog(self, now: float) -> None:
        """Apply any reset that should have happened before ``now``."""
        deadline = self._last_valid_tx + self.timing.reset_timeout
        if now > deadline:
            self._perform_reset(deadline, reason="watchdog")

    def _perform_reset(self, at: float, reason: str = "command") -> None:
        self.registers.reset()
        self.selected_space = None
        self.dma_write_remaining = 0
        self._reset_until = at + self.timing.reset_active
        self.resets += 1
        if self.obs is not None:
            self._ctr_resets.inc()
            # ``at`` is the reset's effective instant: a lazily-serviced
            # watchdog reset happened at its deadline, not at the frame
            # arrival that surfaced it.
            self.obs.tracer.event(
                "slave", "reset", time=at,
                node=self.node_id, reason=reason,
            )
        # The watchdog restarts once reset releases.
        self._last_valid_tx = self._reset_until
        # Peripherals re-assert their state (e.g. the mailbox re-raises
        # OUT_READY for traffic queued before the reset).
        for device in self._devices:
            handler = getattr(device, "on_reset", None)
            if handler is not None:
                handler()

    @property
    def in_reset_at(self):
        return self._reset_until

    def is_in_reset(self, now: float) -> bool:
        self._service_watchdog(now)
        return now < self._reset_until

    # -- frame handling ------------------------------------------------------------

    def power_off(self) -> None:
        """Fail-stop the slave: it goes dark until :meth:`power_on`."""
        self.powered = False

    def power_on(self, now: float) -> None:
        """Restore power; the slave cold-resets at ``now``."""
        if not self.powered:
            self.powered = True
            self._perform_reset(now, reason="power-on")

    def observe_tx(self, frame: TxFrame, now: float) -> None:
        """A valid TX frame passed through this slave: feed the watchdog."""
        if not self.powered:
            return
        # _service_watchdog inlined: this runs once per slave per TX frame.
        deadline = self._last_valid_tx + self.timing.reset_timeout
        if now > deadline:
            self._perform_reset(deadline, reason="watchdog")
        if now >= self._reset_until:
            self._last_valid_tx = now

    def execute(self, frame: TxFrame, now: float) -> Optional[RxFrame]:
        """Execute ``frame`` if it applies to this slave.

        Returns the RX frame to send back, or ``None`` when the slave does
        not respond (powered off, not selected, in reset, or a broadcast).
        """
        if not self.powered:
            return None
        # is_in_reset() + observe_tx() inlined (one call per frame per
        # slave): service the watchdog, bail while the reset pulse is
        # active, then service again — after a gap longer than two
        # watchdog periods the first reset's release re-arms a second,
        # later deadline — and feed the watchdog.
        reset_timeout = self.timing.reset_timeout
        deadline = self._last_valid_tx + reset_timeout
        if now > deadline:
            self._perform_reset(deadline, reason="watchdog")
        if now < self._reset_until:
            return None
        deadline = self._last_valid_tx + reset_timeout
        if now > deadline:
            self._perform_reset(deadline, reason="watchdog")
        if now >= self._reset_until:
            self._last_valid_tx = now
        return self._dispatch_frame(frame)

    def execute_observed(self, frame: TxFrame, now: float) -> Optional[RxFrame]:
        """:meth:`execute` for a frame this slave has already observed.

        The bus applies :meth:`observe_tx` to every slave in the chain
        before resolving execution, which leaves the watchdog serviced
        and fed for ``now``; re-doing that per slave per frame is the
        single hottest redundancy on the cycle path.  Callers that have
        not just observed the same ``(frame, now)`` must use
        :meth:`execute`.
        """
        if not self.powered:
            return None
        if now < self._reset_until:
            return None
        return self._dispatch_frame(frame)

    def _dispatch_frame(self, frame: TxFrame) -> Optional[RxFrame]:
        if frame.cmd is Command.SELECT:
            return self._execute_select(frame)
        if self.selected_space is None:
            return None
        self.executed_frames += 1
        reply = self._execute_selected(frame)
        if self.broadcast_selected:
            return None
        return reply

    # -- command implementations -----------------------------------------------------

    def _execute_select(self, frame: TxFrame) -> Optional[RxFrame]:
        node_id, space = split_address(frame.data)
        if node_id == BROADCAST_NODE_ID:
            # Broadcast select: everyone selected, nobody replies.
            self.selected_space = space
            self.broadcast_selected = True
            return None
        if node_id == self.node_id:
            self.selected_space = space
            self.broadcast_selected = False
            return self._ack()
        self.selected_space = None
        self.broadcast_selected = False
        return None

    def _execute_selected(self, frame: TxFrame) -> RxFrame:
        space = self.selected_space
        regs = self.registers
        cmd = frame.cmd
        rx_of = RxFrame.of
        try:
            if cmd is Command.WRITE_ADDR:
                regs.set_pointer(frame.data)
                return self._ack()
            if cmd is Command.WRITE_DATA:
                if space is AddressSpace.MEMORY:
                    regs.write_at_pointer(frame.data)
                else:
                    regs.write_system(regs.pointer, frame.data)
                    regs.set_pointer((regs.pointer + 1) % 256)
                if self.dma_write_remaining > 0:
                    # Burst mode: stay silent until the final byte lands.
                    self.dma_write_remaining -= 1
                    if self.dma_write_remaining > 0:
                        return None
                return self._ack()
            if cmd is Command.READ_DATA:
                if space is AddressSpace.MEMORY:
                    value = regs.read_at_pointer()
                else:
                    value = regs.read_system(regs.pointer)
                    regs.set_pointer((regs.pointer + 1) % 256)
                return rx_of(RxType.DATA, value, self.interrupt_pending)
            if cmd is Command.READ_FLAGS:
                value = regs.read_system(_FLAGS_ADDRESS)
                regs.set_flag(Flag.RESET_OCCURRED, False)
                return rx_of(RxType.FLAGS, value, self.interrupt_pending)
            if cmd is Command.SYS_CMD:
                regs.write_system(0, frame.data)  # COMMAND register
                if frame.data == int(SysCommand.DMA_WRITE):
                    from repro.tpwire.registers import SystemRegister
                    self.dma_write_remaining = regs.system[
                        SystemRegister.DMA_COUNTER
                    ]
                for device in self._devices:
                    handler = getattr(device, "on_sys_command", None)
                    if handler is not None:
                        handler(frame.data)
                return self._ack()
            if cmd is Command.POLL:
                return self._ack()
            if cmd is Command.RESET:
                self._perform_reset(self.sim.now)
                return None
        except TpwireError:
            regs.set_flag(Flag.ERROR, True)
            return RxFrame(
                RxType.ERROR,
                status_byte(self.node_id, self.interrupt_pending),
                self.interrupt_pending,
            )
        # Unknown command value (cannot happen with the 3-bit enum, but be
        # explicit rather than silent).
        return RxFrame(
            RxType.ERROR,
            status_byte(self.node_id, self.interrupt_pending),
            self.interrupt_pending,
        )

    def _ack(self) -> RxFrame:
        # Only two ACK frames exist per node (INT bit clear/set); both are
        # interned once in __init__ so the reply path allocates nothing.
        return self._ack_frames[self.registers.test_flag(Flag.INT_PENDING)]

    def __repr__(self) -> str:
        sel = (
            self.selected_space.name if self.selected_space is not None else "-"
        )
        return f"TpwireSlave(id={self.node_id}, selected={sel})"
