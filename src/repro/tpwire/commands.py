"""TpWIRE command set and addressing.

The paper fixes the frame layout (CMD[2:0], DATA[7:0], TYPE[1:0]) but does
not publish the opcode map, so the eight commands below are *inferred* from
the behaviours the text requires: node selection, access to "the memory and
memory mapped I/O register set" via one node address and to "the system
register set: command, flags, DMA counter and SPI" via a second address,
"Data register read" and "Flags/SPI register read" responses carrying valid
data, and responses to "all other commands" carrying the node id plus the
interrupt status in DATA[0].

Addressing: node ids are 0..126, 127 is the broadcast node.  Each node has
*two* node addresses (Sec. 3.1); we encode them as ``(node_id << 1) |
space`` with ``space`` 0 for the memory / memory-mapped-I/O set and 1 for
the system register set, which fits both addresses of all 128 nodes in the
8-bit DATA field of a SELECT frame.
"""

from __future__ import annotations

import enum

from repro.tpwire.constants import BROADCAST_NODE_ID, MAX_NODE_ID


class Command(enum.IntEnum):
    """TX frame CMD[2:0] opcodes (inferred; see module docstring)."""

    SELECT = 0       #: DATA = node address; selects the node + register set
    WRITE_ADDR = 1   #: DATA = register/memory pointer (auto-increment base)
    WRITE_DATA = 2   #: DATA = byte stored at the pointer (post-increment)
    READ_DATA = 3    #: Data register read; RX DATA = byte at the pointer
    READ_FLAGS = 4   #: Flags/SPI register read; RX DATA = flags/SPI byte
    SYS_CMD = 5      #: DATA = system command executed by the slave
    POLL = 6         #: status poll; RX DATA = node id / interrupt status
    RESET = 7        #: soft reset of the selected (or broadcast) node


class RxType(enum.IntEnum):
    """RX frame TYPE[1:0] codes (inferred)."""

    ACK = 0     #: command executed; DATA = node id + interrupt status
    DATA = 1    #: response to READ_DATA; DATA = the byte read
    FLAGS = 2   #: response to READ_FLAGS; DATA = flags/SPI byte
    ERROR = 3   #: the slave rejected the command


class AddressSpace(enum.IntEnum):
    """The two per-node address spaces (Sec. 3.1)."""

    MEMORY = 0  #: memory and memory-mapped I/O register set
    SYSTEM = 1  #: system register set: command, flags, DMA counter, SPI


class SysCommand(enum.IntEnum):
    """Values of the COMMAND system register written via SYS_CMD.

    The system register set includes a *DMA counter* (Sec. 3.1);
    ``DMA_WRITE`` arms a write burst of that many bytes: the slave
    executes the following WRITE_DATA frames without replying (halving
    the per-byte bus time) and acknowledges only the final one.
    """

    NOP = 0x00
    DMA_WRITE = 0x01


#: Commands whose RX response carries payload data rather than status.
DATA_BEARING_RESPONSES = {Command.READ_DATA, Command.READ_FLAGS}


def node_address(node_id: int, space: AddressSpace = AddressSpace.MEMORY) -> int:
    """The 8-bit SELECT address of ``node_id`` in ``space``."""
    if not 0 <= node_id <= BROADCAST_NODE_ID:
        raise ValueError(
            f"node id must be 0..{BROADCAST_NODE_ID}, got {node_id}"
        )
    return (node_id << 1) | int(space)


#: Bit -> member table so the per-frame address split skips the enum
#: constructor (SELECT handling runs on every slave for every cycle).
_SPACES = (AddressSpace.MEMORY, AddressSpace.SYSTEM)


def split_address(address: int) -> tuple[int, AddressSpace]:
    """Inverse of :func:`node_address`: ``(node_id, space)``."""
    if not 0 <= address <= 0xFF:
        raise ValueError(f"address must be one byte, got {address}")
    return address >> 1, _SPACES[address & 1]


def is_broadcast(node_id: int) -> bool:
    return node_id == BROADCAST_NODE_ID


def status_byte(node_id: int, interrupt_pending: bool) -> int:
    """DATA byte for ACK responses: node id in DATA[7:1], INT in DATA[0].

    Sec. 3.1: "DATA[7:0] hold node ID and DATA[0] holds interrupt status
    ... for response to all other commands"; packing the 7-bit node id in
    the upper bits leaves DATA[0] free for the interrupt status.
    """
    if not 0 <= node_id <= BROADCAST_NODE_ID:
        raise ValueError(f"bad node id {node_id}")
    return ((node_id & 0x7F) << 1) | (1 if interrupt_pending else 0)


def split_status_byte(data: int) -> tuple[int, bool]:
    """Inverse of :func:`status_byte`: ``(node_id, interrupt_pending)``."""
    return (data >> 1) & 0x7F, bool(data & 1)
