"""Slave register files.

Sec. 3.1: each node exposes two register sets behind its two node
addresses — "the memory and memory mapped I/O register set" and "the
system register set: command, flags, DMA counter and SPI".  This module
models both, with an address pointer that auto-increments on sequential
data accesses (the usual pattern for pointer-based serial buses, and what
makes multi-byte transfers cost one frame per byte rather than three).

Memory-mapped I/O: devices (e.g. the transport mailbox) register read/write
handlers on address ranges of the memory space.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.tpwire.errors import TpwireError


class SystemRegister(enum.IntEnum):
    """Addresses within the system register set."""

    COMMAND = 0x00
    FLAGS = 0x01
    DMA_COUNTER = 0x02
    SPI = 0x03


class Flag(enum.IntFlag):
    """Bits of the FLAGS system register."""

    INT_PENDING = 0x01    #: the slave has a pending interrupt
    OUT_READY = 0x02      #: outbound mailbox has a complete message
    IN_FULL = 0x04        #: inbound mailbox cannot accept a message
    ERROR = 0x08          #: last command was rejected
    RESET_OCCURRED = 0x10  #: the slave reset since flags were last read
    USER0 = 0x20
    USER1 = 0x40
    USER2 = 0x80


#: Plain-int index of FLAGS in the system list (hot: several flag
#: reads/writes per relayed frame go through it).
_FLAGS_INDEX = int(SystemRegister.FLAGS)


class MmioRegion:
    """A handler-backed address window inside the memory space."""

    def __init__(
        self,
        start: int,
        length: int,
        read: Optional[Callable[[int], int]] = None,
        write: Optional[Callable[[int, int], None]] = None,
        name: str = "",
        sticky: bool = False,
    ):
        if start < 0 or length < 1:
            raise ValueError("MMIO region needs start >= 0 and length >= 1")
        self.start = start
        self.length = length
        self.read = read
        self.write = write
        self.name = name
        #: FIFO-style registers: the address pointer does not auto-increment
        #: across them, so repeated READ_DATA/WRITE_DATA frames stream bytes
        #: through a single address (how the mailbox transport works).
        self.sticky = sticky

    def contains(self, address: int) -> bool:
        return self.start <= address < self.start + self.length


class SlaveRegisterFile:
    """Memory + MMIO + system registers of one slave."""

    def __init__(self, memory_size: int = 256):
        if memory_size < 1:
            raise ValueError(f"memory size must be >= 1, got {memory_size}")
        self.memory_size = memory_size
        self.memory = bytearray(memory_size)
        self.pointer = 0
        #: System register values, indexed by :class:`SystemRegister` (an
        #: IntEnum, so plain list indexing).  A list beats a dict here:
        #: the FLAGS byte is touched several times per relayed frame.
        self.system: list[int] = [0] * len(SystemRegister)
        self._mmio: list[MmioRegion] = []
        #: Address -> region map so every memory access resolves its MMIO
        #: region with one dict hit instead of a scan over all regions.
        self._mmio_map: dict[int, MmioRegion] = {}

    # -- MMIO registration -------------------------------------------------

    def register_mmio(self, region: MmioRegion) -> None:
        for existing in self._mmio:
            overlap = (
                region.start < existing.start + existing.length
                and existing.start < region.start + region.length
            )
            if overlap:
                raise TpwireError(
                    f"MMIO region {region.name!r} overlaps {existing.name!r}"
                )
        self._mmio.append(region)
        for address in range(region.start, region.start + region.length):
            self._mmio_map[address] = region

    def _find_mmio(self, address: int) -> Optional[MmioRegion]:
        return self._mmio_map.get(address)

    # -- pointer -------------------------------------------------------------

    def set_pointer(self, address: int) -> None:
        self.pointer = address % 256

    def _advance_pointer(self) -> None:
        self.pointer = (self.pointer + 1) % 256

    # -- memory-space access ---------------------------------------------------

    def read_memory(self, address: int) -> int:
        region = self._mmio_map.get(address)
        if region is not None:
            if region.read is None:
                raise TpwireError(f"MMIO {region.name!r} is write-only")
            return region.read(address - region.start) & 0xFF
        if address >= self.memory_size:
            raise TpwireError(
                f"memory read at {address:#x} beyond size {self.memory_size}"
            )
        return self.memory[address]

    def write_memory(self, address: int, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise TpwireError(f"byte value out of range: {value}")
        region = self._mmio_map.get(address)
        if region is not None:
            if region.write is None:
                raise TpwireError(f"MMIO {region.name!r} is read-only")
            region.write(address - region.start, value)
            return
        if address >= self.memory_size:
            raise TpwireError(
                f"memory write at {address:#x} beyond size {self.memory_size}"
            )
        self.memory[address] = value

    def _pointer_is_sticky(self) -> bool:
        region = self._mmio_map.get(self.pointer)
        return region is not None and region.sticky

    def read_at_pointer(self) -> int:
        pointer = self.pointer
        region = self._mmio_map.get(pointer)
        if region is not None:
            if region.read is None:
                raise TpwireError(f"MMIO {region.name!r} is write-only")
            value = region.read(pointer - region.start) & 0xFF
            if not region.sticky:
                self.pointer = (pointer + 1) % 256
            return value
        if pointer >= self.memory_size:
            raise TpwireError(
                f"memory read at {pointer:#x} beyond size {self.memory_size}"
            )
        self.pointer = (pointer + 1) % 256
        return self.memory[pointer]

    def write_at_pointer(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise TpwireError(f"byte value out of range: {value}")
        pointer = self.pointer
        region = self._mmio_map.get(pointer)
        if region is not None:
            if region.write is None:
                raise TpwireError(f"MMIO {region.name!r} is read-only")
            region.write(pointer - region.start, value)
            if not region.sticky:
                self.pointer = (pointer + 1) % 256
            return
        if pointer >= self.memory_size:
            raise TpwireError(
                f"memory write at {pointer:#x} beyond size {self.memory_size}"
            )
        self.memory[pointer] = value
        self.pointer = (pointer + 1) % 256

    # -- system-space access ------------------------------------------------

    def read_system(self, address: int) -> int:
        # All four addresses behind the 2-bit decode are valid registers,
        # so the masked index needs no enum round trip.
        return self.system[address & 0x3] & 0xFF

    def write_system(self, address: int, value: int) -> None:
        self.system[address & 0x3] = value & 0xFF

    # -- flags ------------------------------------------------------------------

    @property
    def flags(self) -> Flag:
        return Flag(self.system[_FLAGS_INDEX])

    def set_flag(self, flag: Flag, on: bool = True) -> None:
        if on:
            self.system[_FLAGS_INDEX] |= int(flag)
        else:
            self.system[_FLAGS_INDEX] &= ~int(flag) & 0xFF

    def test_flag(self, flag: Flag) -> bool:
        # int(flag) keeps this in plain-int bitwise land: letting the
        # IntFlag operand drive ``&`` would invoke Flag.__rand__ and
        # allocate a Flag instance per test.
        return bool(self.system[_FLAGS_INDEX] & int(flag))

    def set_flags_masked(self, mask: int, value: int) -> None:
        """Replace the ``mask`` bits of FLAGS with ``value`` in one store.

        Device flag refreshes (the mailbox touches OUT_READY, INT_PENDING
        and IN_FULL after every byte) collapse to a single
        read-modify-write instead of one :meth:`set_flag` per bit.
        """
        self.system[_FLAGS_INDEX] = (
            self.system[_FLAGS_INDEX] & ~mask & 0xFF
        ) | value

    # -- reset ---------------------------------------------------------------

    def reset(self) -> None:
        """State cleared by a slave self-reset (pointer, flags, command)."""
        self.pointer = 0
        self.system[SystemRegister.COMMAND] = 0
        self.system[SystemRegister.DMA_COUNTER] = 0
        self.system[_FLAGS_INDEX] = int(Flag.RESET_OCCURRED)
