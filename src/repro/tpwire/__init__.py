"""TpWIRE bus model (Theseus Programmable Wires, Section 3 of the paper).

TpWIRE is a daisy-chain master/slave serial bus: one single-ended line, one
Master that initiates every communication cycle, up to 127 Slaves (node ids
0..126) plus the broadcast node 127.  A cycle is a 16-bit TX frame from the
Master followed (except for broadcasts) by a 16-bit RX frame from the
selected Slave; both carry a CRC-4 over the x^4 + x + 1 polynomial.

This package implements the protocol at *packet level* (the NS-2 model of
the paper): frames, the command set, slave register files and state
machines, the master transaction engine with timeout/retry, the daisy-chain
timing model, the n-wire scalability variants, and the byte transport that
the tuplespace middleware rides on.  The timing-exact *bit-level* reference
model (the stand-in for the real TpICU/SCM hardware) lives in
:mod:`repro.hw`.
"""

from repro.tpwire.errors import (
    TpwireError,
    FrameError,
    CrcMismatch,
    BusTimeout,
    BusError,
    SlaveError,
    NoSuchNode,
)
from repro.tpwire.crc import crc4, check_crc4, CRC4_POLY
from repro.tpwire.commands import (
    Command,
    RxType,
    AddressSpace,
    BROADCAST_NODE_ID,
    MAX_NODE_ID,
    node_address,
    split_address,
)
from repro.tpwire.frames import TxFrame, RxFrame
from repro.tpwire.registers import SlaveRegisterFile, SystemRegister, Flag
from repro.tpwire.timing import BusTiming, WireMode
from repro.tpwire.slave import TpwireSlave
from repro.tpwire.master import TpwireMaster
from repro.tpwire.bus import TpwireBus, BitErrorModel
from repro.tpwire.nwire import ParallelBusGroup, timing_for
from repro.tpwire.transport import (
    MailboxDevice,
    TransportEndpoint,
    MasterPoller,
    PollStrategy,
    LinkMessage,
)
from repro.tpwire.spi import (
    SpiController,
    SpiPeripheral,
    SpiSysCommand,
    TemperatureSensor,
    OutputShiftRegister,
)

__all__ = [
    "TpwireError",
    "FrameError",
    "CrcMismatch",
    "BusTimeout",
    "BusError",
    "SlaveError",
    "NoSuchNode",
    "crc4",
    "check_crc4",
    "CRC4_POLY",
    "Command",
    "RxType",
    "AddressSpace",
    "BROADCAST_NODE_ID",
    "MAX_NODE_ID",
    "node_address",
    "split_address",
    "TxFrame",
    "RxFrame",
    "SlaveRegisterFile",
    "SystemRegister",
    "Flag",
    "BusTiming",
    "WireMode",
    "TpwireSlave",
    "TpwireMaster",
    "TpwireBus",
    "BitErrorModel",
    "ParallelBusGroup",
    "timing_for",
    "MailboxDevice",
    "TransportEndpoint",
    "MasterPoller",
    "PollStrategy",
    "LinkMessage",
    "SpiController",
    "SpiPeripheral",
    "SpiSysCommand",
    "TemperatureSensor",
    "OutputShiftRegister",
]
