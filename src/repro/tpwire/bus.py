"""Packet-level TpWIRE bus: the NS-2 TpWIRE model of the paper.

One :class:`TpwireBus` is a single line group (1-wire, or an n-wire
parallel-data group) connecting the master to a daisy chain of slaves.
A *communication cycle* (Sec. 3.1) is simulated as timed events:

1. the master's TX frame propagates down the chain, reaching the slave at
   depth *h* after ``frame_duration + h * hop_delay``;
2. each slave it passes observes it (reset watchdog) and the selected
   slave executes it;
3. after the turnaround time the responder's RX frame travels back up,
   collecting the INT bit from any slave with a pending interrupt;
4. the master either receives the RX frame or times out.

The bus serialises cycles (single line); concurrent callers queue on an
internal capacity-1 resource.  Frame corruption is injected by a
:class:`BitErrorModel` — a corrupted TX is not executed by anyone (and does
not feed watchdogs); a corrupted RX surfaces as a CRC error at the master.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.des.monitor import RateMonitor, TimeWeightedMonitor
from repro.des.process import Waitable
from repro.tpwire.commands import BROADCAST_NODE_ID, Command, split_address
from repro.tpwire.errors import NoSuchNode, TpwireError
from repro.tpwire.frames import RxFrame, TxFrame
from repro.tpwire.slave import TpwireSlave
from repro.tpwire.timing import BusTiming


class CycleStatus(enum.Enum):
    OK = "ok"                #: RX frame received and valid
    TIMEOUT = "timeout"      #: nobody replied within the expected period
    CRC_ERROR = "crc-error"  #: the master received a corrupted RX frame
    BROADCAST = "broadcast"  #: broadcast cycle, no reply expected


@dataclass(frozen=True)
class CycleResult:
    """Outcome of one communication cycle."""

    status: CycleStatus
    rx: Optional[RxFrame] = None

    @property
    def ok(self) -> bool:
        return self.status in (CycleStatus.OK, CycleStatus.BROADCAST)


#: Shared no-payload outcomes: one of these finishes every cycle that
#: carries no RX frame, so the hot path reuses them instead of building
#: a frozen dataclass per cycle.
_RESULT_BROADCAST = CycleResult(CycleStatus.BROADCAST)
_RESULT_TIMEOUT = CycleResult(CycleStatus.TIMEOUT)
_RESULT_CRC_ERROR = CycleResult(CycleStatus.CRC_ERROR)


class BitErrorModel:
    """Per-frame corruption probabilities, drawn from a named RNG stream."""

    def __init__(self, sim, p_tx: float = 0.0, p_rx: float = 0.0, stream: str = "tpwire.errors"):
        for name, p in (("p_tx", p_tx), ("p_rx", p_rx)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        self.p_tx = p_tx
        self.p_rx = p_rx
        self._rng = sim.stream(stream)
        self.corrupted_tx = 0
        self.corrupted_rx = 0

    def corrupt_tx(self) -> bool:
        if self.p_tx and self._rng.random() < self.p_tx:
            self.corrupted_tx += 1
            return True
        return False

    def corrupt_rx(self) -> bool:
        if self.p_rx and self._rng.random() < self.p_rx:
            self.corrupted_rx += 1
            return True
        return False


class TpwireBus:
    """A daisy chain of slaves behind one master port."""

    def __init__(
        self,
        sim,
        timing: Optional[BusTiming] = None,
        error_model: Optional[BitErrorModel] = None,
        name: str = "tpwire",
        obs=None,
    ):
        self.sim = sim
        self.timing = timing if timing is not None else BusTiming()
        self.error_model = error_model
        self.name = name
        #: Slaves in chain order: index 0 is closest to the master
        #: (depth/hops = index + 1).
        self.slaves: list[TpwireSlave] = []
        self._by_node_id: dict[int, TpwireSlave] = {}
        #: ``(slave, arrival_delay)`` pairs in chain order — the per-depth
        #: ``tx_arrival_delay`` lookups hoisted out of the per-frame loops
        #: in :meth:`_propagate_tx` / :meth:`_find_responder`.
        self._chain: list[tuple[TpwireSlave, float]] = []
        self._busy = False
        self._pending: deque[tuple[TxFrame, bool, object]] = deque()
        # -- statistics
        self.tx_frames = 0
        self.rx_frames = 0
        self.timeouts = 0
        self.crc_errors = 0
        self.cycles = 0
        self.utilization = TimeWeightedMonitor(sim, name=f"{name}.util")
        self.frame_rate = RateMonitor(sim, name=f"{name}.frames")
        # -- observability (nullable; the fast path skips all of it)
        self.obs = obs
        if obs is not None:
            metrics = obs.metrics
            self._ctr_tx = metrics.counter(f"{name}.tx_frames")
            self._ctr_rx = metrics.counter(f"{name}.rx_frames")
            self._ctr_timeouts = metrics.counter(f"{name}.timeouts")
            self._ctr_crc = metrics.counter(f"{name}.crc_errors")
            self._queue_depth = metrics.gauge(f"{name}.queue_depth")
            metrics.attach(f"{name}.utilization", self.utilization)
            metrics.attach(f"{name}.frame_rate", self.frame_rate)
            obs.vcd.signal(f"{name}.busy", scope="tpwire")

    # -- construction ------------------------------------------------------

    def attach_slave(self, slave: TpwireSlave) -> None:
        """Append a slave at the far end of the daisy chain."""
        if slave.node_id in self._by_node_id:
            raise TpwireError(f"duplicate node id {slave.node_id}")
        self.slaves.append(slave)
        self._by_node_id[slave.node_id] = slave
        self._chain.append(
            (slave, self.timing.tx_arrival_delay(len(self.slaves)))
        )

    def slave_by_id(self, node_id: int) -> TpwireSlave:
        try:
            return self._by_node_id[node_id]
        except KeyError:
            raise NoSuchNode(f"no slave with node id {node_id} on {self.name}")

    def hops_of(self, node_id: int) -> int:
        """Chain depth of a node (1 = first slave)."""
        slave = self.slave_by_id(node_id)
        return self.slaves.index(slave) + 1

    @property
    def chain_length(self) -> int:
        return len(self.slaves)

    # -- cycle execution ------------------------------------------------------

    def execute(self, frame: TxFrame, expect_reply: bool = True) -> Waitable:
        """Run one communication cycle; succeeds with a :class:`CycleResult`.

        Cycles are serialised: if the line is busy the cycle queues
        (FIFO).  ``expect_reply=False`` marks fire-and-forget frames (DMA
        burst payload): the cycle lasts only the TX leg and completes with
        :attr:`CycleStatus.BROADCAST` regardless of any slave reply.
        """
        done = Waitable(self.sim)
        self.execute_cb(frame, expect_reply, done.succeed)
        return done

    def execute_cb(
        self, frame: TxFrame, expect_reply: bool, on_result
    ) -> None:
        """:meth:`execute` without the waitable: ``on_result(CycleResult)``
        fires when the cycle completes.  The master's transaction engine
        chains on this directly — one communication cycle per frame makes
        the waitable allocation and its callback dispatch pure overhead
        when the caller already is a callback."""
        if self._busy:
            self._pending.append((frame, expect_reply, on_result))
            if self.obs is not None:
                self._queue_depth.set(len(self._pending))
        else:
            self._start_cycle(frame, expect_reply, on_result)

    def _start_cycle(self, frame: TxFrame, expect_reply: bool, on_result) -> None:
        sim = self.sim
        error_model = self.error_model
        obs = self.obs
        self._busy = True
        self.utilization.set(1.0)
        self.cycles += 1
        self.tx_frames += 1
        self.frame_rate.tick()
        if sim.trace_enabled:
            sim.trace.record(
                sim.now, "s", "master", self.name, "tpwire-tx",
                2, cmd=frame.cmd.name, data=frame.data,
            )
        corrupted = (
            error_model.corrupt_tx() if error_model is not None else False
        )
        if obs is not None:
            self._ctr_tx.inc()
            obs.vcd.change(f"{self.name}.busy", 1, sim.now)
            obs.tracer.event(
                "tpwire", "tx", cmd=frame.cmd.name, data=frame.data,
                corrupted=corrupted,
            )
        responder = None
        if not corrupted:
            self._propagate_tx(frame)
            responder = self._find_responder(frame)
        if (
            not expect_reply
            or frame.cmd is Command.RESET
            or self._frame_target(frame) == BROADCAST_NODE_ID
        ):
            # No reply expected: the cycle lasts the broadcast duration
            # (execution on the slaves has already been applied above).
            duration = self.timing.broadcast_duration(len(self.slaves))
            sim.call_after(
                duration, self._finish_cycle, on_result, _RESULT_BROADCAST,
            )
            return
        if responder is None:
            timeout = self.timing.response_timeout(len(self.slaves))
            self.timeouts += 1
            if obs is not None:
                self._ctr_timeouts.inc()
            sim.call_after(
                timeout, self._finish_cycle, on_result, _RESULT_TIMEOUT,
            )
            return
        rx_frame, hops = responder
        duration = self.timing.exchange_duration(hops)
        rx_corrupted = (
            error_model.corrupt_rx() if error_model is not None else False
        )
        if rx_corrupted:
            self.crc_errors += 1
            if obs is not None:
                self._ctr_crc.inc()
            result = _RESULT_CRC_ERROR
        else:
            self.rx_frames += 1
            self.frame_rate.tick()
            if obs is not None:
                self._ctr_rx.inc()
            result = CycleResult(CycleStatus.OK, rx_frame)
        sim.call_after(duration, self._finish_cycle, on_result, result)

    def _finish_cycle(self, on_result, result: CycleResult) -> None:
        if self.sim.trace_enabled:
            self.sim.trace.record(
                self.sim.now, "r", self.name, "master", "tpwire-rx",
                2 if result.rx is not None else 0, status=result.status.value,
            )
        if self.obs is not None:
            self.obs.tracer.event("tpwire", "rx", status=result.status.value)
        had_queued = bool(self._pending)
        on_result(result)
        if not had_queued:
            # The line went idle at this timestamp: anything queued now
            # was chained by on_result just above.  The busy waveform
            # marks the idle point even when a chained frame follows at
            # the same instant (the waitable path used to defer the
            # chained submission, so it pulsed once per cycle); the
            # utilization monitor skips that zero-width gap — it
            # contributes nothing to the time-weighted integral — and is
            # only touched when the bus genuinely goes idle.
            if self.obs is not None:
                self.obs.vcd.change(f"{self.name}.busy", 0, self.sim.now)
            if not self._pending:
                self._busy = False
                self.utilization.set(0.0)
        if self._pending:
            frame, expect_reply, next_on_result = self._pending.popleft()
            if self.obs is not None:
                self._queue_depth.set(len(self._pending))
            self._start_cycle(frame, expect_reply, next_on_result)

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _frame_target(frame: TxFrame) -> Optional[int]:
        """Node id addressed by a SELECT frame, else ``None``."""
        if frame.cmd is Command.SELECT:
            node_id, _ = split_address(frame.data)
            return node_id
        return None

    def _propagate_tx(self, frame: TxFrame) -> None:
        """Deliver the frame's watchdog observation to every slave.

        Observations are applied eagerly, each stamped with its slave's
        arrival time, rather than scheduled as one event per slave — the
        same eager-with-timed-stamps treatment :meth:`_find_responder`
        already gives execution.  The watchdog state they touch is only
        ever read through bus cycles (which the busy flag serialises), so
        resolving them at cycle start is observationally equivalent and
        removes two scheduler events per cycle from the hot path.
        """
        now = self.sim.now
        for slave, arrival in self._chain:
            slave.observe_tx(frame, now + arrival)

    def _find_responder(self, frame: TxFrame) -> Optional[tuple[RxFrame, int]]:
        """Execute the frame on the chain; return ``(rx, hops)`` if a slave
        replies.

        Execution is evaluated immediately (state updates are applied in
        chain order) while the returned hops value carries the timing.
        SELECT frames update every slave's selection state; other commands
        execute on whichever slave considers itself selected.

        :meth:`_propagate_tx` has just observed the frame on every slave
        with these exact timestamps (both are skipped together when the
        TX is corrupted), so the observed entry point applies: the
        watchdog is already serviced and fed.
        """
        now = self.sim.now
        responder: Optional[tuple[RxFrame, int]] = None
        for index, (slave, arrival) in enumerate(self._chain):
            reply = slave.execute_observed(frame, now + arrival)
            if reply is not None and responder is None:
                responder = (reply, index + 1)
        if responder is None:
            return None
        rx_frame, hops = responder
        # INT piggyback: slaves between the responder and the master set
        # the INT bit while the RX frame passes through them.
        chain = self._chain
        for i in range(hops - 1):
            if chain[i][0].interrupt_pending:
                rx_frame = rx_frame.with_int()
                break
        return rx_frame, hops

    def __repr__(self) -> str:
        return f"TpwireBus({self.name!r}, slaves={len(self.slaves)})"
