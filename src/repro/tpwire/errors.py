"""TpWIRE error hierarchy."""


class TpwireError(Exception):
    """Base class for all TpWIRE protocol and bus errors."""


class FrameError(TpwireError):
    """Malformed frame (bad start bit, field out of range, wrong width)."""


class CrcMismatch(FrameError):
    """Frame CRC does not match its fields."""


class BusError(TpwireError):
    """The master exhausted its retries and signals an error (Sec. 3.1)."""


class BusTimeout(BusError):
    """Retries exhausted with no reply at all (vs. garbled replies)."""


class SlaveError(TpwireError):
    """A slave answered with an ERROR frame (rejected command)."""


class NoSuchNode(TpwireError):
    """A frame addressed a node id that is not on the bus."""
