"""TpWIRE master: transaction engine with timeout/retry, high-level ops.

Sec. 3.1: "If any Slave responds within an expected time period, or an
error occurs during the receive of TX or RX frames, the Master resends the
TX frame a predetermined number of times before signaling an error."

The master exposes two API levels:

* :meth:`transact` — one command/response cycle with automatic retries;
  returns a waitable that succeeds with the :class:`RxFrame` (or fails
  with :class:`BusError` once retries are exhausted).
* ``op_*`` generator helpers (select / read / write byte sequences) that
  compound multiple cycles.  Compound operations must not interleave —
  they share the selection state — so they run under the master's
  operation lock via :meth:`run_op`::

      payload = yield master.run_op(master.op_read_bytes(node, 0x10, 4))
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.des.process import Waitable
from repro.des.resource import Resource
from repro.tpwire.bus import CycleResult, CycleStatus, TpwireBus
from repro.tpwire.commands import (
    AddressSpace,
    BROADCAST_NODE_ID,
    Command,
    node_address,
)
from repro.tpwire.commands import RxType
from repro.tpwire.errors import BusError, BusTimeout, SlaveError
from repro.tpwire.frames import RxFrame, TxFrame
from repro.tpwire.registers import Flag


class _Transaction(Waitable):
    """One command/response transaction driven by cycle-completion callbacks.

    Replaces the per-transaction generator process :meth:`TpwireMaster.transact`
    used to spawn: chaining on the bus cycle's waitable directly skips a
    :class:`~repro.des.process.Process` allocation and its zero-delay
    start event for every frame pair on the polling hot path, while
    keeping the exact retry/error semantics of the old process body.
    """

    def __init__(self, master: "TpwireMaster", frame: TxFrame, expect_reply: bool):
        super().__init__(master.sim)
        self._master = master
        self._frame = frame
        self._expect_reply = expect_reply
        self._started = master.sim.now
        self._attempt = 0
        master.bus.execute_cb(frame, expect_reply, self._on_result)

    def _on_result(self, result: CycleResult) -> None:
        master = self._master
        status = result.status
        if status is CycleStatus.BROADCAST:
            master._observe_txn(self._started)
            self.succeed(None)
            return
        if status is CycleStatus.OK:
            rx = result.rx
            if rx.rtype is RxType.ERROR:
                # The slave rejected the command: retrying the same
                # frame cannot help.
                master.errors_signaled += 1
                master._observe_error("slave-error")
                self._fail_or_raise(SlaveError(
                    f"{master.name}: slave rejected {self._frame} "
                    f"(status {rx.data:#04x})"
                ))
                return
            master._observe_txn(self._started)
            self.succeed(rx)
            return
        # TIMEOUT or CRC_ERROR: resend until the retry budget runs out.
        self._attempt += 1
        if self._attempt <= master.max_retries:
            master.retries += 1
            if master.obs is not None:
                master._ctr_retries.inc()
                master.obs.tracer.event(
                    "master", "retry",
                    attempt=self._attempt, status=status.value,
                    cmd=self._frame.cmd.name,
                )
            master.bus.execute_cb(
                self._frame, self._expect_reply, self._on_result
            )
            return
        master.errors_signaled += 1
        master._selected = None  # selection state is now unknown
        master._observe_error(status.value)
        error_class = (
            BusTimeout if status is CycleStatus.TIMEOUT else BusError
        )
        self._fail_or_raise(error_class(
            f"{master.name}: no valid reply to {self._frame} after "
            f"{master.max_retries + 1} attempts (last: {status.value})"
        ))

    def _fail_or_raise(self, exc: BaseException) -> None:
        """Fail waiters; re-raise when nobody waits (errors never pass
        silently — the same contract as ``Process._fail_or_raise``)."""
        if self._callbacks:
            self.fail(exc)
        else:
            self._triggered = True
            self._ok = False
            self._exception = exc
            raise exc


class TpwireMaster:
    """The bus master; owns one :class:`TpwireBus`."""

    def __init__(
        self,
        sim,
        bus: TpwireBus,
        max_retries: int = 3,
        name: str = "master",
        obs=None,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.sim = sim
        self.bus = bus
        self.max_retries = max_retries
        self.name = name
        self.lock = Resource(sim, capacity=1)
        # -- statistics
        self.transactions = 0
        self.retries = 0
        self.errors_signaled = 0
        # -- observability (nullable)
        self.obs = obs
        if obs is not None:
            self._ctr_retries = obs.metrics.counter(f"{name}.retries")
            self._ctr_errors = obs.metrics.counter(f"{name}.errors_signaled")
            self._txn_seconds = obs.metrics.histogram(f"{name}.transaction_seconds")
        #: Node id the last SELECT addressed (cache to skip redundant selects).
        self._selected: Optional[tuple[int, AddressSpace]] = None

    # -- single-cycle transaction with retries ------------------------------

    def transact(self, frame: TxFrame, expect_reply: bool = True) -> Waitable:
        """Send ``frame``; retry on timeout/CRC error; waitable succeeds
        with the RX frame (or ``None`` for no-reply cycles)."""
        self.transactions += 1
        return _Transaction(self, frame, expect_reply)

    def transact_raw(self, frame: TxFrame, expect_reply: bool = True) -> Waitable:
        """One cycle, no retries: succeeds with the raw :class:`CycleResult`.

        For protocol steps where blind resending is wrong (destructive
        FIFO registers): the caller inspects the status — a TIMEOUT means
        the slave never executed the frame (safe to resend), a CRC_ERROR
        means it executed but the reply was garbled (recover, don't
        resend).
        """
        self.transactions += 1
        return self.bus.execute(frame, expect_reply)

    def _observe_txn(self, started: float) -> None:
        if self.obs is not None:
            self._txn_seconds.observe(self.sim.now - started)

    def _observe_error(self, reason: str) -> None:
        if self.obs is not None:
            self._ctr_errors.inc()
            self.obs.tracer.event("master", "error", reason=reason)

    # -- compound operations (generators; run under the lock) ----------------

    def op_select(
        self, node_id: int, space: AddressSpace = AddressSpace.MEMORY
    ) -> Generator:
        """SELECT a node/register set (skipped when already selected)."""
        if self._selected == (node_id, space):
            return None
        frame = TxFrame.of(Command.SELECT, node_address(node_id, space))
        expect_reply = node_id != BROADCAST_NODE_ID
        reply = yield self.transact(frame, expect_reply=expect_reply)
        self._selected = (node_id, space)
        return reply

    def op_set_pointer(self, address: int) -> Generator:
        yield self.transact(TxFrame.of(Command.WRITE_ADDR, address & 0xFF))
        return None

    def op_write_bytes(
        self,
        node_id: int,
        address: int,
        data: bytes,
        space: AddressSpace = AddressSpace.MEMORY,
    ) -> Generator:
        """SELECT + WRITE_ADDR + one WRITE_DATA frame per byte."""
        yield from self.op_select(node_id, space)
        yield from self.op_set_pointer(address)
        for value in data:
            yield self.transact(TxFrame.of(Command.WRITE_DATA, value))
        return len(data)

    def op_read_bytes(
        self,
        node_id: int,
        address: int,
        count: int,
        space: AddressSpace = AddressSpace.MEMORY,
    ) -> Generator:
        """SELECT + WRITE_ADDR + one READ_DATA frame per byte."""
        yield from self.op_select(node_id, space)
        yield from self.op_set_pointer(address)
        out = bytearray()
        read_frame = TxFrame.of(Command.READ_DATA, 0)
        for _ in range(count):
            rx: RxFrame = yield self.transact(read_frame)
            out.append(rx.data)
        return bytes(out)

    def op_dma_write_bytes(
        self,
        node_id: int,
        address: int,
        data: bytes,
    ) -> Generator:
        """Burst write using the DMA counter (Sec. 3.1 system registers).

        Arms the slave's DMA write counter, then streams the payload as
        fire-and-forget WRITE_DATA frames; only the final byte is
        acknowledged, halving the per-byte bus time of long writes.  A
        frame lost mid-burst desynchronises the counter, so the final
        frame times out and the whole operation raises
        :class:`~repro.tpwire.errors.BusError` — callers retry the burst.
        """
        if not data:
            raise ValueError("DMA burst needs at least one byte")
        if len(data) > 0xFF:
            raise ValueError(
                f"DMA counter is one byte; burst of {len(data)} too long"
            )
        from repro.tpwire.commands import SysCommand
        from repro.tpwire.registers import SystemRegister

        # Program the DMA counter (system space), then arm the burst and
        # stream into the memory-space destination.
        yield from self.op_select(node_id, AddressSpace.SYSTEM)
        yield from self.op_set_pointer(int(SystemRegister.DMA_COUNTER))
        yield self.transact(TxFrame.of(Command.WRITE_DATA, len(data)))
        yield from self.op_select(node_id, AddressSpace.MEMORY)
        yield from self.op_set_pointer(address)
        yield self.transact(
            TxFrame.of(Command.SYS_CMD, int(SysCommand.DMA_WRITE))
        )
        for value in data[:-1]:
            yield self.transact(
                TxFrame.of(Command.WRITE_DATA, value), expect_reply=False
            )
        # The final byte is acknowledged: it validates the whole burst.
        yield self.transact(TxFrame.of(Command.WRITE_DATA, data[-1]))
        return len(data)

    def op_read_flags(self, node_id: int) -> Generator:
        """SELECT + READ_FLAGS; returns the :class:`Flag` byte."""
        yield from self.op_select(node_id, AddressSpace.MEMORY)
        rx: RxFrame = yield self.transact(TxFrame.of(Command.READ_FLAGS, 0))
        return Flag(rx.data)

    def op_poll(self, node_id: int) -> Generator:
        """SELECT + POLL; returns the raw status RX frame."""
        yield from self.op_select(node_id, AddressSpace.MEMORY)
        rx: RxFrame = yield self.transact(TxFrame.of(Command.POLL, 0))
        return rx

    def op_sys_command(self, node_id: int, command: int) -> Generator:
        yield from self.op_select(node_id, AddressSpace.MEMORY)
        yield self.transact(TxFrame.of(Command.SYS_CMD, command & 0xFF))
        return None

    def op_broadcast_reset(self) -> Generator:
        """Broadcast-select then RESET: every slave resets, nobody replies."""
        yield from self.op_select(BROADCAST_NODE_ID, AddressSpace.MEMORY)
        yield self.transact(TxFrame.of(Command.RESET, 0), expect_reply=False)
        self._selected = None
        return None

    # -- running compound ops -------------------------------------------------

    def run_op(self, op: Generator, name: str = "op"):
        """Run a compound op under the operation lock; returns its Process."""
        return self.sim.spawn(self._locked(op), name=f"{self.name}.{name}")

    def _locked(self, op: Generator) -> Generator:
        request = self.lock.request()
        yield request
        try:
            result = yield from op
        finally:
            self.lock.release(request)
        return result

    def invalidate_selection(self) -> None:
        """Forget the cached selection (e.g. after an external reset)."""
        self._selected = None

    def __repr__(self) -> str:
        return (
            f"TpwireMaster({self.name!r}, txn={self.transactions}, "
            f"retries={self.retries})"
        )
