"""TpWIRE frame encoding/decoding.

Frame layouts (Tables 1 and 2 of the paper), 16 bits each, MSB first:

========  ===========================================================
TX frame  ``0 | CMD[2:0] | DATA[7:0] | CRC[3:0]``
RX frame  ``0 | INT | TYPE[1:0] | DATA[7:0] | CRC[3:0]``
========  ===========================================================

The start bit is always 0.  The TX CRC covers CMD+DATA (11 bits); the RX
CRC covers TYPE+DATA (10 bits) — the INT bit is *excluded* because slaves
along the daisy chain may set it while the frame passes through them
(Sec. 3.1), which must not invalidate the CRC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tpwire.commands import Command, RxType
from repro.tpwire.constants import FRAME_BITS
from repro.tpwire.crc import crc4
from repro.tpwire.errors import CrcMismatch, FrameError


def _to_bits(value: int, width: int) -> list[int]:
    return [(value >> i) & 1 for i in range(width - 1, -1, -1)]


def _from_bits(bits: list[int]) -> int:
    value = 0
    for bit in bits:
        value = (value << 1) | bit
    return value


#: Intern caches for the ``of()`` constructors.  Bounded by the frame
#: value spaces (8 commands x 256 bytes; 4 types x 256 bytes x 2).
_TX_CACHE: dict = {}
_RX_CACHE: dict = {}


@dataclass(frozen=True)
class TxFrame:
    """Master-to-slave frame."""

    cmd: Command
    data: int

    def __post_init__(self):
        if not 0 <= int(self.cmd) <= 7:
            raise FrameError(f"CMD must fit 3 bits, got {self.cmd}")
        if not 0 <= self.data <= 0xFF:
            raise FrameError(f"DATA must fit 8 bits, got {self.data}")

    @classmethod
    def of(cls, cmd: Command, data: int) -> "TxFrame":
        """Interned constructor: frames are frozen value objects, so hot
        paths (one TX frame per communication cycle) share instances
        instead of re-validating and re-allocating identical frames."""
        key = (cmd, data)
        frame = _TX_CACHE.get(key)
        if frame is None:
            frame = _TX_CACHE[key] = cls(cmd, data)
        return frame

    @property
    def crc(self) -> int:
        return crc4((int(self.cmd) << 8) | self.data, 11)

    def encode(self) -> int:
        """The 16-bit word: start(0) CMD DATA CRC."""
        return (int(self.cmd) << 12) | (self.data << 4) | self.crc

    def to_bits(self) -> list[int]:
        return _to_bits(self.encode(), FRAME_BITS)

    @classmethod
    def decode(cls, word: int) -> "TxFrame":
        if not 0 <= word < (1 << FRAME_BITS):
            raise FrameError(f"TX word must be 16 bits, got {word:#x}")
        if word >> 15:
            raise FrameError("TX start bit must be 0")
        cmd = (word >> 12) & 0x7
        data = (word >> 4) & 0xFF
        crc = word & 0xF
        if crc4((cmd << 8) | data, 11) != crc:
            raise CrcMismatch(
                f"TX CRC mismatch: cmd={cmd} data={data:#04x} crc={crc:#x}"
            )
        return cls(Command(cmd), data)

    @classmethod
    def from_bits(cls, bits: list[int]) -> "TxFrame":
        if len(bits) != FRAME_BITS:
            raise FrameError(f"TX frame needs {FRAME_BITS} bits, got {len(bits)}")
        return cls.decode(_from_bits(bits))

    def __str__(self) -> str:
        return f"TX[{self.cmd.name} data={self.data:#04x}]"


@dataclass(frozen=True)
class RxFrame:
    """Slave-to-master frame.

    ``int_pending`` is the INT bit: set when any slave the frame passed
    through (including the originator) has a pending interrupt.
    """

    rtype: RxType
    data: int
    int_pending: bool = False

    def __post_init__(self):
        if not 0 <= int(self.rtype) <= 3:
            raise FrameError(f"TYPE must fit 2 bits, got {self.rtype}")
        if not 0 <= self.data <= 0xFF:
            raise FrameError(f"DATA must fit 8 bits, got {self.data}")

    @classmethod
    def of(cls, rtype: RxType, data: int, int_pending: bool = False) -> "RxFrame":
        """Interned constructor (see :meth:`TxFrame.of`): one RX frame per
        replied cycle makes this the hottest allocation on the slave side,
        and the value space is tiny (type x byte x INT bit)."""
        key = (rtype, data, int_pending)
        frame = _RX_CACHE.get(key)
        if frame is None:
            frame = _RX_CACHE[key] = cls(rtype, data, int_pending)
        return frame

    @property
    def crc(self) -> int:
        # CRC over TYPE+DATA only; INT is mutable in flight.
        return crc4((int(self.rtype) << 8) | self.data, 10)

    def encode(self) -> int:
        """The 16-bit word: start(0) INT TYPE DATA CRC."""
        return (
            (int(self.int_pending) << 14)
            | (int(self.rtype) << 12)
            | (self.data << 4)
            | self.crc
        )

    def to_bits(self) -> list[int]:
        return _to_bits(self.encode(), FRAME_BITS)

    def with_int(self) -> "RxFrame":
        """Copy of this frame with the INT bit set (daisy-chain piggyback)."""
        if self.int_pending:
            return self
        return RxFrame.of(self.rtype, self.data, True)

    @classmethod
    def decode(cls, word: int) -> "RxFrame":
        if not 0 <= word < (1 << FRAME_BITS):
            raise FrameError(f"RX word must be 16 bits, got {word:#x}")
        if word >> 15:
            raise FrameError("RX start bit must be 0")
        int_pending = bool((word >> 14) & 1)
        rtype = (word >> 12) & 0x3
        data = (word >> 4) & 0xFF
        crc = word & 0xF
        if crc4((rtype << 8) | data, 10) != crc:
            raise CrcMismatch(
                f"RX CRC mismatch: type={rtype} data={data:#04x} crc={crc:#x}"
            )
        return cls(RxType(rtype), data, int_pending)

    @classmethod
    def from_bits(cls, bits: list[int]) -> "RxFrame":
        if len(bits) != FRAME_BITS:
            raise FrameError(f"RX frame needs {FRAME_BITS} bits, got {len(bits)}")
        return cls.decode(_from_bits(bits))

    def __str__(self) -> str:
        mark = "!" if self.int_pending else ""
        return f"RX[{self.rtype.name}{mark} data={self.data:#04x}]"
