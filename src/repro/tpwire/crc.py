"""CRC-4 over the x^4 + x + 1 polynomial.

The TpWIRE specification (Section 3.1) protects each frame with four CRC
bits computed over CMD[2:0] + DATA[7:0] (TX frames) or TYPE[1:0] + DATA[7:0]
(RX frames) using the generator polynomial x^4 + x + 1 (0b1_0011).

The CRC is a plain polynomial remainder, MSB-first, zero initial value.
"""

from __future__ import annotations

from repro.tpwire.constants import CRC4_POLY, CRC4_WIDTH


def crc4(value: int, nbits: int) -> int:
    """CRC-4 remainder of ``value`` interpreted as ``nbits`` bits, MSB first.

    >>> crc4(0b101_0101010, 10) in range(16)
    True
    """
    if nbits < 0:
        raise ValueError(f"nbits must be >= 0, got {nbits}")
    if value < 0 or value >= (1 << nbits):
        raise ValueError(f"value {value} does not fit in {nbits} bits")
    # Append CRC4_WIDTH zero bits, then reduce modulo the polynomial.
    remainder = value << CRC4_WIDTH
    total_bits = nbits + CRC4_WIDTH
    for shift in range(total_bits - 1, CRC4_WIDTH - 1, -1):
        if remainder & (1 << shift):
            remainder ^= CRC4_POLY << (shift - CRC4_WIDTH)
    return remainder & 0xF


def check_crc4(value: int, nbits: int, crc: int) -> bool:
    """``True`` when ``crc`` is the valid CRC-4 for ``value``."""
    if crc < 0 or crc > 0xF:
        raise ValueError(f"crc {crc} is not a 4-bit value")
    return crc4(value, nbits) == crc


def crc4_bits(bits: list[int]) -> int:
    """CRC-4 of a bit list (MSB first), for the bit-level PHY model."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {bit!r}")
        value = (value << 1) | bit
    return crc4(value, len(bits))
