"""The single source of truth for TpWIRE protocol constants.

Three independent models implement the same protocol — the packet-level
model in this package, the bit-level PHY in :mod:`repro.hw`, and the
NS-2-style network layer in :mod:`repro.net` — exactly the paper's
methodology (SystemC, NS-2 and the middleware stack all modelling one
bus).  The models only stay mutually consistent if every frame width,
CRC parameter and timeout bit count has exactly one definition.  This
module is that definition; ``repro.tpwire.frames``/``crc``/``timing``/
``commands`` re-export from here, and the ``proto-const-drift`` project
lint rule rejects any other module that rebinds one of these names to a
literal instead of tracing back to this file.

Values follow Section 3.1 of the paper (frame layout: Tables 1 and 2).
"""

from __future__ import annotations

#: Total frame length in bits, both directions (start bit included).
FRAME_BITS = 16

#: Bits of the DATA field.
DATA_BITS = 8

#: TX CMD field width.
CMD_BITS = 3

#: RX TYPE field width.
TYPE_BITS = 2

#: Trailing CRC bits of every frame.
CRC_BITS = 4

#: Leading serial bits before the DATA byte: start + CMD[2:0] (TX) or
#: start + INT + TYPE[1:0] (RX) — four either way.
LEAD_BITS = 4

#: Serial bits that are not the DATA byte: start + cmd/typ+int + crc.
HEADER_BITS = FRAME_BITS - DATA_BITS

#: CRC-4 generator polynomial x^4 + x + 1, including the leading x^4 term.
CRC4_POLY = 0b10011

#: Width of the CRC remainder in bits (same field as ``CRC_BITS``; kept
#: as the historical name the CRC module exports).
CRC4_WIDTH = 4

#: Highest addressable real node id (7-bit address space).
MAX_NODE_ID = 126

#: The virtual broadcast node (Sec. 3.1: "the 128th node").
BROADCAST_NODE_ID = 127

#: Sec. 3.1: a slave resets after this many bit periods without a valid TX.
RESET_TIMEOUT_BITS = 2048

#: Sec. 3.1: the reset pulse stays active for this many bit periods.
RESET_ACTIVE_BITS = 33
