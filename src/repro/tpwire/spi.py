"""SPI peripheral behind the system register set (Sec. 3.1).

The slave's system registers include an SPI data register.  This module
gives it behaviour: an :class:`SpiController` device that shifts bytes
between the SPI register and an attached SPI peripheral, one byte per
SYS_CMD ``SPI_XFER`` — the standard full-duplex SPI contract (every
transfer simultaneously sends the register byte and receives the
peripheral's response into it).

Two concrete peripherals cover the factory-automation cases the paper
motivates: a temperature sensor (the "sensors" of Sec. 1) and a shift
register for digital outputs (the "actuators").
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.tpwire.errors import TpwireError
from repro.tpwire.registers import SystemRegister


class SpiSysCommand(enum.IntEnum):
    """SYS_CMD values owned by the SPI controller."""

    #: one full-duplex byte transfer with the attached peripheral
    SPI_XFER = 0x10


class SpiPeripheral:
    """Protocol of an attached SPI device: one byte in, one byte out."""

    def transfer(self, mosi: int) -> int:
        raise NotImplementedError


class SpiController:
    """Slave device wiring the SPI system register to a peripheral."""

    def __init__(self, peripheral: Optional[SpiPeripheral] = None):
        self.peripheral = peripheral
        self._slave = None
        self.transfers = 0

    def install(self, slave) -> None:
        self._slave = slave

    def attach_peripheral(self, peripheral: SpiPeripheral) -> None:
        self.peripheral = peripheral

    def on_sys_command(self, value: int) -> None:
        if value != int(SpiSysCommand.SPI_XFER):
            return
        if self._slave is None:
            raise TpwireError("SPI controller not installed on a slave")
        if self.peripheral is None:
            raise TpwireError("no SPI peripheral attached")
        regs = self._slave.registers
        mosi = regs.read_system(int(SystemRegister.SPI))
        miso = self.peripheral.transfer(mosi) & 0xFF
        regs.write_system(int(SystemRegister.SPI), miso)
        self.transfers += 1


class TemperatureSensor(SpiPeripheral):
    """An SPI thermometer (command 0x01 = sample, then read the byte).

    Protocol: send ``0x01`` to trigger a sample; the byte clocked out on
    the *next* transfer is the temperature in half-degrees C (0..255 ->
    0..127.5 degC).  Any other command byte shifts out ``0x00``.
    """

    SAMPLE = 0x01

    def __init__(self, temperature_c: float = 20.0):
        self.temperature_c = temperature_c
        self._pending = 0
        self.samples_taken = 0

    def transfer(self, mosi: int) -> int:
        out = self._pending
        self._pending = 0
        if mosi == self.SAMPLE:
            clamped = min(max(self.temperature_c, 0.0), 127.5)
            self._pending = int(round(clamped * 2))
            self.samples_taken += 1
        return out


class OutputShiftRegister(SpiPeripheral):
    """A 74HC595-style output latch: every byte written drives 8 outputs."""

    def __init__(self):
        self.outputs = 0
        self.writes = 0

    def transfer(self, mosi: int) -> int:
        previous = self.outputs
        self.outputs = mosi & 0xFF
        self.writes += 1
        return previous  # shifted-out previous state, as real chains do

    def pin(self, index: int) -> bool:
        if not 0 <= index <= 7:
            raise ValueError(f"pin index must be 0..7, got {index}")
        return bool(self.outputs & (1 << index))
