"""TpWIRE timing model.

All packet-level durations derive from here.  The base parameters follow
Section 3.1: 16-bit frames, a slave reset timeout of 2048 bit periods and
a reset pulse of 33 bit periods.  The per-hop repeater delay, inter-frame
gap and slave turnaround are configuration knobs (the physical values are
not published); their defaults are small multiples of the bit period.

n-wire scalability (Sec. 3.2) enters through :class:`WireMode`:

* ``SERIAL`` — the deployed 1-wire bus: every frame bit serial on one line.
* ``PARALLEL_DATA`` — one line carries the serial command stream while
  the DATA byte is striped over the remaining ``wires - 1`` lines.  The
  receiver needs the start bit to synchronise, so data lines begin one
  bit period in; the CRC (computed over the data) follows serially once
  both the command bits and the striped data have landed.  A frame
  therefore lasts ``max(lead_bits, 1 + ceil(8/(wires-1))) + crc_bits``
  periods — 13 instead of 16 for the 2-wire case.
* ``PARALLEL_BUS`` — ``wires`` independent 1-wire buses
  (:class:`repro.tpwire.nwire.ParallelBusGroup`); each individual bus uses
  SERIAL timing.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from repro.tpwire.constants import (
    CRC_BITS,
    DATA_BITS,
    FRAME_BITS,
    HEADER_BITS,
    LEAD_BITS,
    RESET_ACTIVE_BITS,
    RESET_TIMEOUT_BITS,
)


class WireMode(enum.Enum):
    SERIAL = "serial"
    PARALLEL_DATA = "parallel-data"
    PARALLEL_BUS = "parallel-bus"


@dataclass(frozen=True)
class BusTiming:
    """Timing parameters of one TpWIRE line group.

    Parameters
    ----------
    bit_rate:
        Line rate in bits/s of each wire.
    wires:
        Number of physical lines (>= 1).
    mode:
        How extra wires are used (see module docstring).  ``SERIAL``
        requires ``wires == 1``.
    gap_bits:
        Idle bit periods the master leaves between communication cycles.
    turnaround_bits:
        Bit periods a slave takes between the end of the TX frame and the
        start of its RX frame (command execution + line turnaround).
    hop_delay_bits:
        Repeater latency a frame accrues at each slave it passes through
        in the daisy chain.

    Derived durations (``bit_period``, ``frame_duration``, ``gap_duration``,
    ``turnaround_duration``, ``reset_timeout``, ``reset_active``,
    ``frame_bits_on_wire``) are computed once in ``__post_init__`` and read
    as plain attributes: the bus derives several of them per frame, and on
    a multi-thousand-frame run re-deriving ``1.0 / bit_rate`` and friends
    on every access is pure overhead.  The per-hop delay/arrival/exchange
    tables grow lazily up to the deepest chain position ever asked for.
    """

    bit_rate: float = 2400.0
    wires: int = 1
    mode: WireMode = WireMode.SERIAL
    gap_bits: int = 4
    turnaround_bits: int = 4
    hop_delay_bits: int = 2

    def __post_init__(self):
        if self.bit_rate <= 0:
            raise ValueError(f"bit rate must be positive, got {self.bit_rate}")
        if self.wires < 1:
            raise ValueError(f"wires must be >= 1, got {self.wires}")
        if self.mode is WireMode.SERIAL and self.wires != 1:
            raise ValueError("SERIAL mode uses exactly one wire")
        if self.mode is WireMode.PARALLEL_DATA and self.wires < 2:
            raise ValueError("PARALLEL_DATA mode needs at least 2 wires")
        if min(self.gap_bits, self.turnaround_bits, self.hop_delay_bits) < 0:
            raise ValueError("bit-period counts must be >= 0")
        # Precomputed scalars (the dataclass is frozen; these are caches,
        # not fields, so equality/repr still follow the declared knobs).
        set_attr = object.__setattr__
        bit_period = 1.0 / self.bit_rate
        set_attr(self, "bit_period", bit_period)
        if self.mode is WireMode.PARALLEL_DATA:
            # Data lines start one bit after the start bit; the CRC goes
            # out serially once command bits and striped data are in.
            data_done = 1 + math.ceil(DATA_BITS / (self.wires - 1))
            frame_bits = max(LEAD_BITS, data_done) + CRC_BITS
        else:
            frame_bits = FRAME_BITS
        set_attr(self, "frame_bits_on_wire", frame_bits)
        set_attr(self, "frame_duration", frame_bits * bit_period)
        set_attr(self, "gap_duration", self.gap_bits * bit_period)
        set_attr(self, "turnaround_duration", self.turnaround_bits * bit_period)
        set_attr(self, "reset_timeout", RESET_TIMEOUT_BITS * bit_period)
        set_attr(self, "reset_active", RESET_ACTIVE_BITS * bit_period)
        # Timing-wheel resolution: half a bit period.  Every fixed bus
        # delay is an integer number of bit periods, so at this
        # granularity each one lands on the integer tick grid and
        # TimingWheelScheduler.for_timing() schedules on the level-0
        # fast path for the whole frame/gap/turnaround delay set.
        set_attr(self, "wheel_resolution", 0.5 * bit_period)
        # Per-hop tables, indexed by chain depth; hop 0 seeds them.
        set_attr(self, "_hop_delay_table", [0 * self.hop_delay_bits * bit_period])
        set_attr(self, "_tx_arrival_table", [self.frame_duration + self._hop_delay_table[0]])
        one_way = self._tx_arrival_table[0]
        set_attr(
            self,
            "_exchange_table",
            [one_way + self.turnaround_duration + one_way + self.gap_duration],
        )

    def _grow_tables(self, hops: int) -> None:
        """Extend the per-hop tables through depth ``hops``."""
        hop_delay_table = self._hop_delay_table
        tx_arrival_table = self._tx_arrival_table
        exchange_table = self._exchange_table
        for depth in range(len(hop_delay_table), hops + 1):
            delay = depth * self.hop_delay_bits * self.bit_period
            one_way = self.frame_duration + delay
            hop_delay_table.append(delay)
            tx_arrival_table.append(one_way)
            exchange_table.append(
                one_way + self.turnaround_duration + one_way + self.gap_duration
            )

    def hop_delay(self, hops: int) -> float:
        if hops >= len(self._hop_delay_table):
            self._grow_tables(hops)
        return self._hop_delay_table[hops]

    # -- cycle durations ------------------------------------------------------

    def tx_arrival_delay(self, hops: int) -> float:
        """Master TX start -> frame fully received at a slave ``hops`` deep."""
        if hops >= len(self._tx_arrival_table):
            self._grow_tables(hops)
        return self._tx_arrival_table[hops]

    def exchange_duration(self, hops: int) -> float:
        """Full communication cycle with the slave at depth ``hops``:
        TX + turnaround + RX + inter-cycle gap."""
        if hops >= len(self._exchange_table):
            self._grow_tables(hops)
        return self._exchange_table[hops]

    def broadcast_duration(self, chain_length: int) -> float:
        """Broadcast cycle: TX to the end of the chain, no RX (Sec. 3.1)."""
        return (
            self.frame_duration
            + self.hop_delay(chain_length)
            + self.gap_duration
        )

    def response_timeout(self, hops: int, margin: float = 2.0) -> float:
        """How long the master waits for an RX before declaring a timeout."""
        expected = (
            self.frame_duration
            + self.hop_delay(hops)
            + self.turnaround_duration
            + self.frame_duration
            + self.hop_delay(hops)
        )
        return expected * margin

    # -- derived metrics ---------------------------------------------------------

    @property
    def peak_exchanges_per_second(self) -> float:
        """Upper bound on cycles/s (zero-hop slave, back-to-back)."""
        return 1.0 / self.exchange_duration(0)

    def scaled(self, **changes) -> "BusTiming":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
